let append_count = Si_obs.Registry.counter "wal.append"
let fsync_count = Si_obs.Registry.counter "wal.fsync"
let compact_count = Si_obs.Registry.counter "wal.compact"
let recover_count = Si_obs.Registry.counter "wal.recover"
let fsync_latency = Si_obs.Registry.histogram "wal.fsync"
let append_latency = Si_obs.Registry.histogram "wal.append"
let compact_latency = Si_obs.Registry.histogram "wal.compact"

type sync_policy = Immediate | Batched of { max_records : int; max_bytes : int }

let default_policy = Batched { max_records = 64; max_bytes = 256 * 1024 }

type error =
  | Io of string
  | Bad_header of { file : string; detail : string }
  | Corrupt_record of { index : int; offset : int; detail : string }
  | Corrupt_snapshot of { file : string; detail : string }

let error_to_string = function
  | Io msg -> Printf.sprintf "wal: i/o error: %s" msg
  | Bad_header { file; detail } ->
      Printf.sprintf "wal: bad header in %s: %s" file detail
  | Corrupt_record { index; offset; detail } ->
      Printf.sprintf "wal: corrupt record %d at offset %d: %s" index offset
        detail
  | Corrupt_snapshot { file; detail } ->
      Printf.sprintf "wal: corrupt snapshot %s: %s" file detail

type recovery = {
  snapshot : string option;
  records : string list;
  truncated_bytes : int;
  reset_log : bool;
}

type t = {
  path : string;
  policy : sync_policy;
  mutable oc : out_channel option;
  mutable generation : int;
  mutable disk_records : int;
  buf : Buffer.t;
  mutable buffered : int;
  mutable tee : (string -> unit) option;
  (* One writer at a time: [append]/[sync]/[cut_snapshot]/[close] from a
     mutating domain can interleave with [sync] from a background
     shipping domain, and the append buffer must never see both. The
     tee fires inside the lock, so teed observers see records in accept
     order. Group commit means the flush happens inside this lock by
     design — the class is declared io_ok in Si_check.Hierarchy. *)
  lock : Si_check.Lock.t;
}

let log_magic = "SIWAL\x00\x00\x01"
let snap_magic = "SISNP\x00\x00\x01"
let magic_size = String.length log_magic
let header_size = magic_size + 4
let snapshot_path path = path ^ ".snap"
let lock_path path = path ^ ".lock"
let temp_path path = path ^ ".si-tmp"

let path t = t.path
let generation t = t.generation
let pending t = t.buffered
let record_count t = t.disk_records
let set_tee t tee = t.tee <- tee

(* --- stdlib-only file helpers ------------------------------------- *)

let protect_io f = try Ok (f ()) with Sys_error msg -> Error (Io msg)

let read_file path =
  protect_io (fun () ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

(* Atomic replacement: write a sibling temp file, then rename over the
   destination. This doubles as portable truncation (rewrite the good
   prefix) so the library needs no [unix] dependency. *)
let write_file_atomic path contents =
  Si_check.blocking ~kind:"file-write" @@ fun () ->
  protect_io (fun () ->
      let tmp = temp_path path in
      let oc = open_out_bin tmp in
      (try
         output_string oc contents;
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp path)

let header gen =
  let buf = Buffer.create header_size in
  Buffer.add_string buf log_magic;
  Record.add_u32 buf gen;
  Buffer.contents buf

(* --- single-writer guard ------------------------------------------- *)

(* Two layers: an in-process registry (two [open_]s on the same path in
   one process are a programming error, caught immediately) and an
   advisory O_EXCL pid file for the cross-process double-open that
   corrupts a log by interleaving appends. A lock file naming a dead
   pid — or our own, left by a crash-simulating test — is stale and
   taken over. *)

let open_in_process : (string, unit) Hashtbl.t = Hashtbl.create 8
let open_in_process_lock = Si_check.Lock.create ~class_:"wal.registry"
let with_registry f = Si_check.Lock.with_lock open_in_process_lock f

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception _ -> true (* EPERM etc.: someone owns it *)

let try_write_lock file =
  match
    open_out_gen [ Open_wronly; Open_creat; Open_excl; Open_binary ] 0o644 file
  with
  | oc ->
      output_string oc (string_of_int (Unix.getpid ()));
      close_out oc;
      true
  | exception Sys_error _ -> false

let acquire_lock path =
  let file = lock_path path in
  let registered =
    with_registry (fun () ->
        if Hashtbl.mem open_in_process path then false
        else begin
          Hashtbl.add open_in_process path ();
          true
        end)
  in
  if not registered then
    Error
      (Io (Printf.sprintf "%s is already open in this process" path))
  else
    let release_registry () =
      with_registry (fun () -> Hashtbl.remove open_in_process path)
    in
    if try_write_lock file then Ok ()
    else
      let holder =
        match read_file file with
        | Ok contents -> int_of_string_opt (String.trim contents)
        | Error _ -> None
      in
      let stale =
        match holder with
        | None -> true (* unreadable or garbage: a torn lock write *)
        | Some pid -> pid = Unix.getpid () || not (pid_alive pid)
      in
      if not stale then begin
        release_registry ();
        Error
          (Io
             (Printf.sprintf "%s is locked by live process %d" path
                (Option.value holder ~default:0)))
      end
      else begin
        (try Sys.remove file with Sys_error _ -> ());
        if try_write_lock file then Ok ()
        else begin
          release_registry ();
          Error (Io (Printf.sprintf "cannot take over stale lock %s" file))
        end
      end

let release_lock path =
  with_registry (fun () -> Hashtbl.remove open_in_process path);
  try Sys.remove (lock_path path) with Sys_error _ -> ()

(* --- parsing ------------------------------------------------------- *)

type parsed_log =
  | Log_bad of string
  | Log_torn_header
  | Log_corrupt of { index : int; offset : int; detail : string }
  | Log_ok of {
      gen : int;
      records : string list;
      good_end : int;  (** Offset where the valid prefix ends. *)
      torn : string option;
    }

let is_prefix ~prefix s =
  String.length s <= String.length prefix
  && String.sub prefix 0 (String.length s) = s

let parse_log contents =
  let total = String.length contents in
  if total < header_size then
    if is_prefix ~prefix:log_magic (String.sub contents 0 (min total magic_size))
    then Log_torn_header
    else Log_bad "file too short and not a torn log header"
  else if String.sub contents 0 magic_size <> log_magic then
    Log_bad "wrong magic (not a Si_wal log)"
  else
    let gen = Record.get_u32 contents magic_size in
    match Record.read_all contents ~pos:header_size with
    | Ok (records, good_end, torn) -> Log_ok { gen; records; good_end; torn }
    | Error detail ->
        (* read_all's error message carries index/offset; recompute the
           structured form by rescanning. *)
        let rec locate index pos =
          match Record.read contents ~pos with
          | Record.Record { next; _ } -> locate (index + 1) next
          | Record.Corrupt d -> (index, pos, d)
          | Record.End | Record.Torn _ -> (index, pos, detail)
        in
        let index, offset, detail = locate 0 header_size in
        Log_corrupt { index; offset; detail }

let parse_snapshot file contents =
  let bad detail = Error (Corrupt_snapshot { file; detail }) in
  let total = String.length contents in
  if total < header_size then bad "file shorter than snapshot header"
  else if String.sub contents 0 magic_size <> snap_magic then
    bad "wrong magic (not a Si_wal snapshot)"
  else
    let gen = Record.get_u32 contents magic_size in
    match Record.read contents ~pos:header_size with
    | Record.Record { payload; next } ->
        if next = total then Ok (gen, payload)
        else bad (Printf.sprintf "%d trailing byte(s) after payload" (total - next))
    | Record.End -> bad "missing payload record"
    | Record.Torn d | Record.Corrupt d -> bad d

let load_snapshot path =
  let file = snapshot_path path in
  if not (Sys.file_exists file) then Ok None
  else
    match read_file file with
    | Error e -> Error e
    | Ok contents -> (
        match parse_snapshot file contents with
        | Ok (gen, payload) -> Ok (Some (gen, payload))
        | Error e -> Error e)

(* --- open / recovery ----------------------------------------------- *)

let open_append path =
  protect_io (fun () ->
      open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path)

let finish_open ~path ~policy ~gen ~disk_records ~recovery =
  match open_append path with
  | Error e -> Error e
  | Ok oc ->
      let t =
        {
          path;
          policy;
          oc = Some oc;
          generation = gen;
          disk_records;
          buf = Buffer.create 4096;
          buffered = 0;
          tee = None;
          lock = Si_check.Lock.create ~class_:"wal.log";
        }
      in
      Ok (t, recovery)

let open_plain ?(policy = default_policy) path =
  match load_snapshot path with
  | Error e -> Error e
  | Ok snap -> (
      let snap_gen = match snap with Some (g, _) -> g | None -> 0 in
      let snap_payload = Option.map snd snap in
      if not (Sys.file_exists path) then
        (* Fresh log (or one deleted out from under its snapshot):
           start at the snapshot's generation. *)
        match write_file_atomic path (header snap_gen) with
        | Error e -> Error e
        | Ok () ->
            finish_open ~path ~policy ~gen:snap_gen ~disk_records:0
              ~recovery:
                {
                  snapshot = snap_payload;
                  records = [];
                  truncated_bytes = 0;
                  reset_log = false;
                }
      else
        match read_file path with
        | Error e -> Error e
        | Ok contents -> (
            let total = String.length contents in
            match parse_log contents with
            | Log_bad detail -> Error (Bad_header { file = path; detail })
            | Log_corrupt { index; offset; detail } ->
                Error (Corrupt_record { index; offset; detail })
            | Log_torn_header -> (
                (* Crash while writing the very first header: nothing
                   after it can exist, reset to the snapshot's view. *)
                match write_file_atomic path (header snap_gen) with
                | Error e -> Error e
                | Ok () ->
                    finish_open ~path ~policy ~gen:snap_gen ~disk_records:0
                      ~recovery:
                        {
                          snapshot = snap_payload;
                          records = [];
                          truncated_bytes = total;
                          reset_log = true;
                        })
            | Log_ok { gen; records; good_end; torn } ->
                if snap_gen > gen then
                  (* Compaction wrote the snapshot but died before
                     truncating the log: the snapshot supersedes it. *)
                  match write_file_atomic path (header snap_gen) with
                  | Error e -> Error e
                  | Ok () ->
                      finish_open ~path ~policy ~gen:snap_gen ~disk_records:0
                        ~recovery:
                          {
                            snapshot = snap_payload;
                            records = [];
                            truncated_bytes = 0;
                            reset_log = true;
                          }
                else if snap <> None && snap_gen < gen then
                  Error
                    (Bad_header
                       {
                         file = path;
                         detail =
                           Printf.sprintf
                             "log generation %d is ahead of snapshot generation %d"
                             gen snap_gen;
                       })
                else
                  let truncated = total - good_end in
                  let finish () =
                    finish_open ~path ~policy ~gen
                      ~disk_records:(List.length records)
                      ~recovery:
                        {
                          snapshot = snap_payload;
                          records;
                          truncated_bytes = truncated;
                          reset_log = false;
                        }
                  in
                  if torn = None then finish ()
                  else
                    (* Drop the torn tail on disk before reopening for
                       append, so the file is a valid prefix again. *)
                    match
                      write_file_atomic path (String.sub contents 0 good_end)
                    with
                    | Error e -> Error e
                    | Ok () -> finish ()))

let open_ ?policy path =
  Si_obs.Counter.incr recover_count;
  match acquire_lock path with
  | Error _ as e -> e
  | Ok () -> (
      let result =
        if Si_obs.Span.on () then
          Si_obs.Span.with_ ~layer:"wal" ~op:"recover" (fun () ->
              open_plain ?policy path)
        else open_plain ?policy path
      in
      match result with
      | Ok _ as ok -> ok
      | Error _ as e ->
          release_lock path;
          e)

(* --- appending ----------------------------------------------------- *)

let channel t =
  match t.oc with Some oc -> Ok oc | None -> Error (Io "log is closed")

let flush_buffered t oc =
  Si_check.blocking ~kind:"fsync" @@ fun () ->
  protect_io (fun () ->
      output_string oc (Buffer.contents t.buf);
      flush oc;
      t.disk_records <- t.disk_records + t.buffered;
      Buffer.clear t.buf;
      t.buffered <- 0)

let locked t f = Si_check.Lock.with_lock t.lock f

(* Assumes [t.lock] is held. *)
let sync_locked t =
  match channel t with
  | Error _ as e -> e
  | Ok oc ->
      if t.buffered = 0 then Ok ()
      else begin
        Si_obs.Counter.incr fsync_count;
        if Si_obs.Span.on () then
          Si_obs.Span.timed fsync_latency ~layer:"wal" ~op:"fsync" (fun () ->
              flush_buffered t oc)
        else flush_buffered t oc
      end

let sync t = locked t (fun () -> sync_locked t)

let append_plain t payload =
  match channel t with
  | Error _ as e -> e
  | Ok _ ->
      (match t.tee with Some f -> f payload | None -> ());
      Record.encode t.buf payload;
      t.buffered <- t.buffered + 1;
      let due =
        match t.policy with
        | Immediate -> true
        | Batched { max_records; max_bytes } ->
            t.buffered >= max_records || Buffer.length t.buf >= max_bytes
      in
      if due then sync_locked t else Ok ()

let append t payload =
  Si_obs.Counter.incr append_count;
  locked t (fun () ->
      if Si_obs.Span.on () then
        Si_obs.Span.timed append_latency ~layer:"wal" ~op:"append" (fun () ->
            append_plain t payload)
      else append_plain t payload)

(* --- compaction ---------------------------------------------------- *)

let cut_snapshot_plain t state =
  match sync_locked t with
  | Error _ as e -> e
  | Ok () -> (
      let gen = t.generation + 1 in
      let snap = Buffer.create (String.length state + 32) in
      Buffer.add_string snap snap_magic;
      Record.add_u32 snap gen;
      Record.encode snap state;
      match write_file_atomic (snapshot_path t.path) (Buffer.contents snap) with
      | Error _ as e -> e
      | Ok () -> (
          (* Between here and the log rewrite the snapshot is one
             generation ahead; open_ resolves that crash window by
             discarding the (now redundant) log. *)
          Option.iter close_out_noerr t.oc;
          t.oc <- None;
          match write_file_atomic t.path (header gen) with
          | Error _ as e -> e
          | Ok () -> (
              match open_append t.path with
              | Error _ as e -> e
              | Ok oc ->
                  t.oc <- Some oc;
                  t.generation <- gen;
                  t.disk_records <- 0;
                  Ok ())))

let cut_snapshot t state =
  Si_obs.Counter.incr compact_count;
  locked t (fun () ->
      if Si_obs.Span.on () then
        Si_obs.Span.timed compact_latency ~layer:"wal" ~op:"compact" (fun () ->
            cut_snapshot_plain t state)
      else cut_snapshot_plain t state)

(* The registry lock is the outer one (taken first on [open_]), so the
   single-writer release must happen after [t.lock] is dropped, not
   inside it. *)
let close t =
  let result =
    locked t (fun () ->
        match t.oc with
        | None -> None
        | Some oc -> (
            match sync_locked t with
            | Error _ as e ->
                close_out_noerr oc;
                t.oc <- None;
                Some e
            | Ok () ->
                t.oc <- None;
                Some (protect_io (fun () -> close_out oc))))
  in
  match result with
  | None -> Ok ()
  | Some r ->
      release_lock t.path;
      r

(* --- inspection ---------------------------------------------------- *)

type info = {
  info_generation : int;
  info_records : int;
  info_log_bytes : int;
  info_torn_bytes : int;
  info_snapshot_bytes : int option;
  info_stale_log : bool;
}

type dump_record = { dump_offset : int; dump_payload : string }

type dump = {
  dump_log_generation : int option;
  dump_snapshot_generation : int option;
  dump_snapshot : string option;
  dump_records : dump_record list;
  dump_torn_bytes : int;
  dump_stale_log : bool;
  dump_corrupt : (int * int * string) option;
  dump_problems : string list;
}

let dump path =
  let snap_file = snapshot_path path in
  let snap, snap_problems =
    if not (Sys.file_exists snap_file) then (None, [])
    else
      match read_file snap_file with
      | Error e -> (None, [ error_to_string e ])
      | Ok contents -> (
          match parse_snapshot snap_file contents with
          | Ok (gen, payload) -> (Some (gen, payload), [])
          | Error e -> (None, [ error_to_string e ]))
  in
  let snap_gen = Option.map fst snap in
  let base ?log_gen ?(records = []) ?(torn = 0) ?(stale = false) ?corrupt
      problems =
    {
      dump_log_generation = log_gen;
      dump_snapshot_generation = snap_gen;
      dump_snapshot = Option.map snd snap;
      dump_records = records;
      dump_torn_bytes = torn;
      dump_stale_log = stale;
      dump_corrupt = corrupt;
      dump_problems = snap_problems @ problems;
    }
  in
  if not (Sys.file_exists path) then
    if snap = None && snap_problems = [] then
      Error (Io (Printf.sprintf "%s: no log or snapshot present" path))
    else Ok (base [])
  else
    match read_file path with
    | Error e -> Error e
    | Ok contents -> (
        let total = String.length contents in
        if total < header_size then
          if
            is_prefix ~prefix:log_magic
              (String.sub contents 0 (min total magic_size))
          then Ok (base ~torn:total [])
          else Ok (base [ "log header: file too short and not a torn header" ])
        else if String.sub contents 0 magic_size <> log_magic then
          Ok (base [ "log header: wrong magic (not a Si_wal log)" ])
        else
          let gen = Record.get_u32 contents magic_size in
          let rec walk index pos acc =
            match Record.read contents ~pos with
            | Record.Record { payload; next } ->
                walk (index + 1) next
                  ({ dump_offset = pos; dump_payload = payload } :: acc)
            | Record.End -> (List.rev acc, 0, None)
            | Record.Torn _ -> (List.rev acc, total - pos, None)
            | Record.Corrupt detail ->
                (List.rev acc, 0, Some (index, pos, detail))
          in
          let records, torn, corrupt = walk 0 header_size [] in
          let stale =
            match snap_gen with Some sg -> sg > gen | None -> false
          in
          let problems =
            match snap_gen with
            | Some sg when sg < gen ->
                [
                  Printf.sprintf
                    "log generation %d is ahead of snapshot generation %d" gen
                    sg;
                ]
            | _ -> []
          in
          Ok (base ~log_gen:gen ~records ~torn ~stale ?corrupt problems))

let inspect path =
  match load_snapshot path with
  | Error e -> Error e
  | Ok snap -> (
      let snap_gen = match snap with Some (g, _) -> g | None -> 0 in
      let snap_bytes = Option.map (fun (_, p) -> String.length p) snap in
      if not (Sys.file_exists path) then
        if snap = None then
          Error (Io (Printf.sprintf "%s: no log or snapshot present" path))
        else
          Ok
            {
              info_generation = snap_gen;
              info_records = 0;
              info_log_bytes = 0;
              info_torn_bytes = 0;
              info_snapshot_bytes = snap_bytes;
              info_stale_log = false;
            }
      else
        match read_file path with
        | Error e -> Error e
        | Ok contents -> (
            let total = String.length contents in
            match parse_log contents with
            | Log_bad detail -> Error (Bad_header { file = path; detail })
            | Log_corrupt { index; offset; detail } ->
                Error (Corrupt_record { index; offset; detail })
            | Log_torn_header ->
                Ok
                  {
                    info_generation = snap_gen;
                    info_records = 0;
                    info_log_bytes = total;
                    info_torn_bytes = total;
                    info_snapshot_bytes = snap_bytes;
                    info_stale_log = true;
                  }
            | Log_ok { gen; records; good_end; torn } ->
                let stale = snap <> None && snap_gen > gen in
                if snap <> None && snap_gen < gen then
                  Error
                    (Bad_header
                       {
                         file = path;
                         detail =
                           Printf.sprintf
                             "log generation %d is ahead of snapshot generation %d"
                             gen snap_gen;
                       })
                else
                  Ok
                    {
                      info_generation = (if stale then snap_gen else gen);
                      info_records = (if stale then 0 else List.length records);
                      info_log_bytes = total;
                      info_torn_bytes =
                        (if torn = None then 0 else total - good_end);
                      info_snapshot_bytes = snap_bytes;
                      info_stale_log = stale;
                    }))
