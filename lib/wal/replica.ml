(* The follower state machine. Pure in-memory protocol state: the
   caller owns durability (applying a record through its own journaled
   store before [apply] returns is what makes an Ack mean something) and
   persistence of [term]/[applied] across restarts.

   Duplicates (seq <= applied) are acknowledged and dropped; frames
   arriving early (a reordered wire) wait in a bounded pending buffer
   and are drained the moment the gap fills; a gap answers Nack with the
   first missing sequence number so the leader rewinds. A frame from a
   term older than ours answers Fenced — the one message a deposed
   leader can still receive. *)

let lag_gauge = Si_obs.Registry.gauge "wal.replica.lag"
let fence_count = Si_obs.Registry.counter "wal.replica.fenced"
let apply_count = Si_obs.Registry.counter "wal.replica.apply"
let dup_count = Si_obs.Registry.counter "wal.replica.duplicate"
let buffered_count = Si_obs.Registry.counter "wal.replica.buffered"

type t = {
  apply : string -> (unit, string) result;
  install : term:int -> seq:int -> string -> (unit, string) result;
  on_term : int -> unit;
  max_pending : int;
  mutable term : int;
  mutable applied : int;
  mutable leader_seq : int;
  mutable divergent : bool;
      (* A newer leader's advertised position is behind our applied
         prefix: our suffix was acknowledged only to a deposed leader
         and must be rolled back by installing the new leader's
         snapshot. Until then we answer [Nack {next = 0}]. *)
  pending : (int, string) Hashtbl.t;
  mutable trouble : string option;
}

let create ?(max_pending = 64) ?(term = 0) ?(applied = 0)
    ?(on_term = fun _ -> ()) ~apply ~install () =
  {
    apply;
    install;
    on_term;
    max_pending;
    term;
    applied;
    leader_seq = applied;
    divergent = false;
    pending = Hashtbl.create 16;
    trouble = None;
  }

let term t = t.term
let applied t = t.applied
let leader_seq t = t.leader_seq
let lag t = max 0 (t.leader_seq - t.applied)
let fresh_enough t ~max_lag = lag t <= max_lag
let trouble t = t.trouble

let promote t =
  t.term <- t.term + 1;
  Hashtbl.reset t.pending;
  t.leader_seq <- t.applied;
  t.divergent <- false;
  t.on_term t.term;
  t.term

(* Adopt a newer term: clear the reorder buffer (it belongs to the old
   leader's stream) and let the caller persist the new term. When the
   new leader's advertised position [tip] is behind our applied prefix,
   the suffix beyond it was replicated only under the deposed leader
   and diverges from the new stream — flag it for rollback via the next
   base snapshot. *)
let adopt t ~term ~tip =
  if term > t.term then begin
    Hashtbl.reset t.pending;
    t.term <- term;
    if tip < t.applied then t.divergent <- true;
    t.on_term term
  end

(* Apply buffered successors while they are contiguous. A failing apply
   puts the record back and stops: the Ack reflects what actually
   landed, and the leader will resend from there. *)
let drain t =
  let rec go () =
    match Hashtbl.find_opt t.pending (t.applied + 1) with
    | None -> ()
    | Some payload -> (
        Hashtbl.remove t.pending (t.applied + 1);
        match t.apply payload with
        | Ok () ->
            Si_obs.Counter.incr apply_count;
            t.applied <- t.applied + 1;
            go ()
        | Error e ->
            Hashtbl.replace t.pending (t.applied + 1) payload;
            if t.trouble = None then t.trouble <- Some e)
  in
  go ()

let note_leader t seq =
  t.leader_seq <- max t.leader_seq seq;
  Si_obs.Gauge.set lag_gauge (lag t)

let respond t = function
  | Frame.Hello { term; seq } ->
      if term < t.term then begin
        Si_obs.Counter.incr fence_count;
        Frame.Fenced { term = t.term }
      end
      else begin
        adopt t ~term ~tip:seq;
        note_leader t seq;
        (* [next = 0] steers a divergent replica's leader below every
           real record, forcing the base-snapshot path that rolls the
           divergent suffix back. *)
        Frame.Welcome
          { term; next = (if t.divergent then 0 else t.applied + 1) }
      end
  | Frame.Snapshot { term; seq; payload } ->
      if term < t.term then begin
        Si_obs.Counter.incr fence_count;
        Frame.Fenced { term = t.term }
      end
      else begin
        adopt t ~term ~tip:seq;
        note_leader t seq;
        if (not t.divergent) && seq <= t.applied then begin
          Si_obs.Counter.incr dup_count;
          Frame.Ack { seq = t.applied }
        end
        else
          match t.install ~term ~seq payload with
          | Ok () ->
              (* For a divergent replica this may move [applied]
                 backwards: the rollback that discards the suffix a
                 deposed leader acknowledged. *)
              if t.divergent then Hashtbl.reset t.pending
              else
                Hashtbl.iter
                  (fun s _ -> if s <= seq then Hashtbl.remove t.pending s)
                  (Hashtbl.copy t.pending);
              t.divergent <- false;
              t.applied <- seq;
              drain t;
              Frame.Ack { seq = t.applied }
          | Error e -> Frame.Bad e
      end
  | Frame.Append { term; seq; payload } ->
      if term < t.term then begin
        Si_obs.Counter.incr fence_count;
        Frame.Fenced { term = t.term }
      end
      else begin
        adopt t ~term ~tip:seq;
        note_leader t seq;
        if t.divergent then Frame.Nack { next = 0 }
        else if seq <= t.applied then begin
          Si_obs.Counter.incr dup_count;
          Frame.Ack { seq = t.applied }
        end
        else if seq = t.applied + 1 then
          match t.apply payload with
          | Ok () ->
              Si_obs.Counter.incr apply_count;
              t.applied <- seq;
              drain t;
              Frame.Ack { seq = t.applied }
          | Error e -> Frame.Bad e
        else begin
          (* Early arrival: hold it (bounded) and ask for the gap. *)
          if Hashtbl.length t.pending < t.max_pending then begin
            Si_obs.Counter.incr buffered_count;
            Hashtbl.replace t.pending seq payload
          end;
          Frame.Nack { next = t.applied + 1 }
        end
      end
  | Frame.Heartbeat { term; seq } ->
      if term < t.term then begin
        Si_obs.Counter.incr fence_count;
        Frame.Fenced { term = t.term }
      end
      else begin
        adopt t ~term ~tip:seq;
        note_leader t seq;
        if t.divergent then Frame.Nack { next = 0 }
        else if t.applied >= seq then Frame.Ack { seq = t.applied }
        else Frame.Nack { next = t.applied + 1 }
      end
  | Frame.Welcome _ | Frame.Fenced _ | Frame.Ack _ | Frame.Nack _
  | Frame.Bad _ ->
      Frame.Bad "response frame sent as a request"

let handle t raw =
  match Frame.decode raw with
  | Error e -> Frame.encode (Frame.Bad e)
  | Ok f -> Frame.encode (respond t f)

let transport t raw = Ok (handle t raw)
