(** Framing for WAL records: length-prefixed, CRC-checksummed payloads.

    A record on disk is [u32-le length][u32-le crc32(payload)][payload].
    Decoding classifies damage precisely so recovery can distinguish the
    one failure the crash model allows — a torn tail, where the process
    died mid-append and the file simply ends early — from corruption in
    the middle of the log, which is never survivable and must surface as
    a hard error rather than a silent partial replay.

    Also exports a generic field-list codec ([encode_fields] /
    [decode_fields]) used as the common payload encoding by the TRIM
    durable facade, the mark stream, and the Dmi journal. *)

val header_size : int
(** Bytes of framing before each payload (8: length + checksum). *)

val add_u32 : Buffer.t -> int -> unit
(** Append a 32-bit little-endian unsigned value (the WAL's native
    integer encoding, also used by file headers). *)

val get_u32 : string -> int -> int
(** Read a 32-bit little-endian unsigned value at the given offset. *)

val encode : Buffer.t -> string -> unit
(** [encode buf payload] appends the framed record to [buf]. *)

type read =
  | Record of { payload : string; next : int }
      (** A valid record; [next] is the offset just past it. *)
  | End  (** Clean end of input: the offset is exactly the length. *)
  | Torn of string
      (** The data ends mid-record (incomplete header, a length that
          points past end-of-input, or a checksum mismatch on the final
          record). Consistent with a crash during append: everything
          before this offset is intact, the tail is garbage. The string
          says what was missing. *)
  | Corrupt of string
      (** A checksum mismatch with further data after the record — not
          explicable by a torn append. The log is damaged and replay
          must stop with an error. *)

val read : string -> pos:int -> read
(** [read s ~pos] decodes the record starting at [pos].
    @raise Invalid_argument when [pos] is outside [\[0, length s\]]. *)

val read_all : string -> pos:int -> (string list * int * string option, string) result
(** [read_all s ~pos] decodes records until end-of-input. [Ok (payloads,
    stop, torn)] gives the valid prefix in order, the offset where it
    ends, and [Some reason] when a torn tail follows (bytes in
    [\[stop, length s)] should be truncated). [Error _] on mid-log
    corruption. *)

val encode_fields : string list -> string
(** [encode_fields fs] packs a list of arbitrary strings into one
    payload: [u32-le count] then, per field, [u32-le length] + bytes. *)

val decode_fields : string -> (string list, string) result
(** Inverse of [encode_fields]; [Error _] describes the malformation. *)
