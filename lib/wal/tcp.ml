(* Socket transport for WAL shipping: stdlib Unix sockets, frames
   length-prefixed and CRC-checked with the WAL's own record framing —
   [u32-le length][u32-le crc][payload] — so a damaged read is detected
   here and never reaches the protocol layer.

   The server accepts one connection at a time in a dedicated domain
   and services frames sequentially; the (single) leader holds one
   persistent connection per follower. *)

let frame_limit = 1 lsl 26 (* 64 MiB: no legitimate frame is bigger *)

(* Socket reads/writes are classified blocking operations: performing
   one while holding a non-io_ok lock is a sanitizer violation. *)
let really_read fd n =
  Si_check.blocking ~kind:"socket" @@ fun () ->
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Ok (Bytes.to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Error "connection closed"
      | k -> go (off + k)
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let really_write fd s =
  Si_check.blocking ~kind:"socket" @@ fun () ->
  let buf = Bytes.of_string s in
  let n = Bytes.length buf in
  let rec go off =
    if off = n then Ok ()
    else
      match Unix.write fd buf off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

(* A frame on the socket is already Record-framed by the protocol layer
   (Frame.encode): read the 8-byte header to learn the length, then the
   payload, and let Record.read validate the checksum. *)
let recv_frame fd =
  match really_read fd Record.header_size with
  | Error _ as e -> e
  | Ok header -> (
      let len = Record.get_u32 header 0 in
      if len > frame_limit then
        Error (Printf.sprintf "frame of %d bytes exceeds the limit" len)
      else
        match really_read fd len with
        | Error _ as e -> e
        | Ok payload -> (
            let raw = header ^ payload in
            match Record.read raw ~pos:0 with
            | Record.Record _ -> Ok raw
            | Record.End -> Error "empty frame"
            | Record.Torn e | Record.Corrupt e ->
                Error (Printf.sprintf "damaged frame: %s" e)))

let send_frame fd raw = really_write fd raw

(* --- server --------------------------------------------------------- *)

type server = {
  listen_fd : Unix.file_descr;
  s_port : int;
  stopping : bool Atomic.t;
  s_domain : unit Domain.t;
}

let port s = s.s_port

let serve ?(addr = "127.0.0.1") ~port handler =
  match
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
       Unix.listen fd 8;
       let bound =
         match Unix.getsockname fd with
         | Unix.ADDR_INET (_, p) -> p
         | Unix.ADDR_UNIX _ -> port
       in
       Ok (fd, bound)
     with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  with
  | Error _ as e -> e
  | Ok (listen_fd, bound) ->
      let stopping = Atomic.make false in
      let serve_conn fd =
        let rec go () =
          match recv_frame fd with
          | Error _ -> ()
          | Ok raw -> (
              match send_frame fd (handler raw) with
              | Error _ -> ()
              | Ok () -> go ())
        in
        go ();
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      let rec accept_loop () =
        if not (Atomic.get stopping) then begin
          (match Unix.accept listen_fd with
          | conn, _ -> serve_conn conn
          | exception Unix.Unix_error _ -> Atomic.set stopping true);
          accept_loop ()
        end
      in
      let s_domain = Domain.spawn accept_loop in
      Ok { listen_fd; s_port = bound; stopping; s_domain }

let shutdown s =
  if not (Atomic.exchange s.stopping true) then begin
    (* [Unix.shutdown] (not a bare close) is what kicks a domain blocked
       in accept out of its wait on Linux. *)
    (try Unix.shutdown s.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close s.listen_fd with Unix.Unix_error _ -> ());
    Domain.join s.s_domain
  end

(* --- client --------------------------------------------------------- *)

type client = { fd : Unix.file_descr; mutable live : bool }

let connect ?(addr = "127.0.0.1") ~port () =
  Si_check.blocking ~kind:"socket" @@ fun () ->
  try
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
    Ok { fd; live = true }
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let transport c raw =
  if not c.live then Error "connection closed"
  else
    match send_frame c.fd raw with
    | Error _ as e ->
        c.live <- false;
        e
    | Ok () -> (
        match recv_frame c.fd with
        | Error _ as e ->
            c.live <- false;
            e
        | Ok _ as reply -> reply)

let close c =
  if c.live then begin
    c.live <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end
