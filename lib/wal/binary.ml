(* Length-prefixed binary section container: the on-disk shape shared by
   binary WAL snapshots. A container is a magic/version header followed by
   named sections, each CRC-framed like {!Record} so a flipped bit is
   pinned to the section it hit instead of poisoning the whole payload. *)

let magic = "SIBF\x00\x00\x00\x01"
let magic_len = String.length magic

let is_binary s =
  String.length s >= magic_len && String.equal (String.sub s 0 magic_len) magic

let encode sections =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Record.add_u32 buf (List.length sections);
  List.iter
    (fun (name, payload) ->
      Record.add_u32 buf (String.length name);
      Buffer.add_string buf name;
      Record.add_u32 buf (String.length payload);
      Record.add_u32 buf (Crc32.digest payload);
      Buffer.add_string buf payload)
    sections;
  Buffer.contents buf

let decode s =
  let total = String.length s in
  if not (is_binary s) then
    if total >= magic_len && String.sub s 0 4 = String.sub magic 0 4 then
      Error
        (Printf.sprintf "unsupported binary container version %d"
           (Char.code s.[magic_len - 1]))
    else Error "not a binary container (bad magic)"
  else if total < magic_len + 4 then Error "truncated section count"
  else begin
    let count = Record.get_u32 s magic_len in
    let rec go acc pos remaining =
      if remaining = 0 then
        if pos = total then Ok (List.rev acc)
        else
          Error
            (Printf.sprintf "%d trailing byte(s) after last section"
               (total - pos))
      else if pos + 4 > total then Error "truncated section name length"
      else begin
        let name_len = Record.get_u32 s pos in
        let pos = pos + 4 in
        if pos + name_len + 8 > total then
          Error "truncated section header"
        else begin
          let name = String.sub s pos name_len in
          let pos = pos + name_len in
          let len = Record.get_u32 s pos in
          let crc = Record.get_u32 s (pos + 4) in
          let start = pos + 8 in
          if start + len > total then
            Error
              (Printf.sprintf
                 "section %S length %d overruns container (%d byte(s) left)"
                 name len (total - start))
          else begin
            let actual = Crc32.digest ~pos:start ~len s in
            if actual <> crc then
              Error
                (Printf.sprintf
                   "section %S checksum mismatch (stored %08x, computed %08x)"
                   name crc actual)
            else
              go
                ((name, String.sub s start len) :: acc)
                (start + len) (remaining - 1)
          end
        end
      end
    in
    go [] (magic_len + 4) count
  end

let section name sections = List.assoc_opt name sections
