(** In-process follower transport over a dedicated domain.

    {!serve} spawns a domain that runs the handler (typically
    {!Replica.handle}) for one frame at a time, fed through a
    single-slot mailbox — the synchronous RPC shape {!Ship.transport}
    expects, with the follower genuinely applying records on another
    core. All replica state stays confined to the server domain. *)

type server

val serve : (string -> string) -> server
(** Spawn the serving domain around the handler. *)

val transport : server -> string -> (string, string) result
(** The {!Ship.transport} for this server. Blocks until the handler
    answers; [Error] only after {!shutdown}. *)

val shutdown : server -> unit
(** Stop the serving domain and join it. In-flight callers get
    [Error]; later sends fail immediately. Idempotent. *)
