(* In-process follower transport: the handler runs in its own domain,
   serviced through a single-slot mailbox (mutex + condition). One
   request is in flight at a time — exactly the synchronous RPC shape
   the shipper expects — and shutdown wakes both sides. *)

type server = {
  mu : Si_check.Lock.t;
  cond : Condition.t;
  mutable req : string option;
  mutable resp : string option;
  mutable stop : bool;
  mutable domain : unit Domain.t option;
}

let serve handler =
  let s =
    {
      mu = Si_check.Lock.create ~class_:"wal.transport.local";
      cond = Condition.create ();
      req = None;
      resp = None;
      stop = false;
      domain = None;
    }
  in
  let rec loop () =
    Si_check.Lock.lock s.mu;
    while s.req = None && not s.stop do
      Si_check.Lock.wait s.cond s.mu
    done;
    if s.stop then Si_check.Lock.unlock s.mu
    else begin
      let frame = Option.get s.req in
      s.req <- None;
      Si_check.Lock.unlock s.mu;
      (* The handler runs outside the lock: replica state is only ever
         touched from this domain. *)
      let reply = handler frame in
      Si_check.Lock.lock s.mu;
      s.resp <- Some reply;
      Condition.broadcast s.cond;
      Si_check.Lock.unlock s.mu;
      loop ()
    end
  in
  s.domain <- Some (Domain.spawn loop);
  s

let send s frame =
  Si_check.Lock.lock s.mu;
  let finish r =
    Si_check.Lock.unlock s.mu;
    r
  in
  if s.stop then finish (Error "local transport: server stopped")
  else begin
    while (s.req <> None || s.resp <> None) && not s.stop do
      Si_check.Lock.wait s.cond s.mu
    done;
    if s.stop then finish (Error "local transport: server stopped")
    else begin
      s.req <- Some frame;
      Condition.broadcast s.cond;
      while s.resp = None && not s.stop do
        Si_check.Lock.wait s.cond s.mu
      done;
      match s.resp with
      | Some reply ->
          s.resp <- None;
          Condition.broadcast s.cond;
          finish (Ok reply)
      | None -> finish (Error "local transport: server stopped")
    end
  end

let transport s frame = send s frame

let shutdown s =
  Si_check.Lock.lock s.mu;
  s.stop <- true;
  Condition.broadcast s.cond;
  Si_check.Lock.unlock s.mu;
  match s.domain with
  | None -> ()
  | Some d ->
      s.domain <- None;
      Domain.join d
