(** The replication wire protocol: synchronous request/response frames.

    A transport carries one encoded request frame and returns one
    encoded response frame. Every frame is CRC-framed exactly like a
    WAL record ([u32-le length][u32-le crc][payload], the payload being
    the shared field-list codec), so a flipped byte anywhere on the
    wire fails the checksum instead of confusing a parser.

    Leader-to-follower requests: {!constructor:Hello} (handshake,
    carrying the leader's term and highest sequence number),
    {!constructor:Snapshot} (install a base snapshot and jump to its
    sequence number), {!constructor:Append} (one record),
    {!constructor:Heartbeat}. Follower responses:
    {!constructor:Welcome} (handshake accepted; [next] is the first
    sequence number it needs), {!constructor:Ack} (applied prefix now
    ends at [seq]), {!constructor:Nack} (a gap: resend from [next]),
    {!constructor:Fenced} (the sender's term is stale — a newer leader
    exists), {!constructor:Bad} (undecodable or inapplicable frame). *)

type t =
  | Hello of { term : int; seq : int }
  | Welcome of { term : int; next : int }
  | Fenced of { term : int }
  | Snapshot of { term : int; seq : int; payload : string }
  | Append of { term : int; seq : int; payload : string }
  | Heartbeat of { term : int; seq : int }
  | Ack of { seq : int }
  | Nack of { next : int }
  | Bad of string

val encode : t -> string
val decode : string -> (t, string) result
