(* The leader end of WAL shipping.

   A shipper taps its log's append stream (Log.set_tee), numbers every
   accepted payload with a sequence number, and pushes records to
   attached followers over synchronous transports. Records accumulate
   in an open buffer until [segment_records] of them are sealed into an
   archive segment (Segment.seal); the archive — sealed segments plus
   base snapshots — is both the catch-up source for followers that fall
   behind the buffer and the point-in-time recovery store.

   Push is one frame per step with a bounded retry budget per follower
   per [ship] call: a Nack rewinds the cursor, a transport error or Bad
   response retries the same frame, a Fenced response permanently
   fences this shipper (a newer term exists; it must never ship again).
   The budget keeps scripted fault schedules deterministic — a follower
   that cannot be reached just stays behind until the next call. *)

type transport = string -> (string, string) result

let append_count = Si_obs.Registry.counter "wal.ship.append"
let snapshot_count = Si_obs.Registry.counter "wal.ship.snapshot"
let retry_count = Si_obs.Registry.counter "wal.ship.retry"
let fenced_count = Si_obs.Registry.counter "wal.ship.fenced"
let seal_count = Si_obs.Registry.counter "wal.ship.seal"
let lag_gauge = Si_obs.Registry.gauge "wal.ship.lag"

type follower = {
  f_name : string;
  f_send : transport;
  mutable f_acked : int;  (* follower's contiguous applied prefix *)
  mutable f_healthy : bool;  (* last push round completed *)
}

type t = {
  archive : string;
  log : Log.t;
  segment_records : int;
  mutable term : int;
  mutable seq : int;  (* last assigned sequence number *)
  mutable sealed_seq : int;  (* last sequence number in the archive *)
  mutable buffer_rev : (int * string) list;  (* open segment, newest first *)
  mutable followers : follower list;
  mutable fenced : bool;
  mutable trouble : string option;
  mutable cache : (string * string list) option;  (* last segment read *)
  mutable notify : (unit -> unit) option;  (* called after each teed record *)
  (* Guards seq/buffer_rev/sealed_seq/followers: the tee fires on the
     appending domain while a background shipping domain drains the
     same state. Push network I/O happens outside the lock, so an
     in-flight ship round never stalls an append; sealing a full
     buffer writes the segment inside it by design (the class is
     io_ok in Si_check.Hierarchy). *)
  lock : Si_check.Lock.t;
}

let with_lock t f = Si_check.Lock.with_lock t.lock f

let term t = t.term
let seq t = t.seq
let archive t = t.archive
let is_fenced t = t.fenced
let set_notify t f = t.notify <- f

let trouble t =
  let r = t.trouble in
  t.trouble <- None;
  r

let followers t =
  with_lock t (fun () -> List.map (fun f -> (f.f_name, f.f_acked)) t.followers)

let lag t =
  with_lock t (fun () ->
      List.fold_left (fun m f -> max m (t.seq - f.f_acked)) 0 t.followers)

(* Assumes [t.lock] is held. *)
let seal_buffer t =
  match t.buffer_rev with
  | [] -> Ok ()
  | buffered -> (
      let payloads = List.rev_map snd buffered in
      match
        Si_check.blocking ~kind:"file-write" (fun () ->
            Segment.seal ~dir:t.archive ~term:t.term ~first:(t.sealed_seq + 1)
              payloads)
      with
      | Error e ->
          if t.trouble = None then t.trouble <- Some e;
          Error e
      | Ok _ ->
          Si_obs.Counter.incr seal_count;
          t.sealed_seq <- t.seq;
          t.buffer_rev <- [];
          Ok ())

let on_append t payload =
  with_lock t (fun () ->
      t.seq <- t.seq + 1;
      t.buffer_rev <- (t.seq, payload) :: t.buffer_rev;
      if List.length t.buffer_rev >= t.segment_records then
        ignore (seal_buffer t));
  match t.notify with Some f -> f () | None -> ()

let create ?(segment_records = 256) ?term:want_term ?seq:want_seq ~archive log
    =
  if segment_records < 1 then Error "segment_records must be at least 1"
  else
    match Segment.ensure_dir archive with
    | Error _ as e -> e
    | Ok () -> (
        match Segment.index archive with
        | Error _ as e -> e
        | Ok idx ->
            let archive_term = Segment.max_term idx in
            let resolved =
              match want_term with
              | None -> Ok archive_term
              | Some w ->
                  if w < archive_term then
                    Error
                      (Printf.sprintf
                         "term %d is behind the archive's term %d" w
                         archive_term)
                  else Ok w
            in
            Result.map
              (fun term ->
                (* A resuming leader may know (from persisted replication
                   metadata) that it assigned sequence numbers past what
                   the archive retains — never renumber those. *)
                let seq =
                  max (Segment.max_seq idx)
                    (Option.value want_seq ~default:0)
                in
                let t =
                  {
                    archive;
                    log;
                    segment_records;
                    term;
                    seq;
                    sealed_seq = seq;
                    buffer_rev = [];
                    followers = [];
                    fenced = false;
                    trouble = None;
                    cache = None;
                    notify = None;
                    lock = Si_check.Lock.create ~class_:"wal.ship";
                  }
                in
                Log.set_tee log (Some (on_append t));
                t)
              resolved)

let close t =
  Log.set_tee t.log None;
  t.notify <- None;
  with_lock t (fun () -> t.followers <- [])

let write_base t payload =
  Result.map
    (fun (_ : Segment.base) -> ())
    (Segment.write_base ~dir:t.archive ~term:t.term ~seq:t.seq payload)

let checkpoint t = with_lock t (fun () -> seal_buffer t)

(* --- record lookup for catch-up ------------------------------------ *)

type lookup = Found of string | Need_base | Shipped_all

let segment_payloads t entry =
  match t.cache with
  | Some (file, payloads) when file = entry.Segment.seg_file -> Ok payloads
  | _ ->
      Result.map
        (fun payloads ->
          t.cache <- Some (entry.Segment.seg_file, payloads);
          payloads)
        (Segment.read ~dir:t.archive entry)

let record_at t s =
  (* Snapshot the volatile span under the lock; the archive lookup below
     reads only sealed (immutable) files. *)
  let in_buffer =
    with_lock t (fun () ->
        if s > t.seq then `Shipped_all
        else if s > t.sealed_seq then `Buffered (List.assoc_opt s t.buffer_rev)
        else `Sealed)
  in
  match in_buffer with
  | `Shipped_all -> Shipped_all
  | `Buffered (Some payload) -> Found payload
  | `Buffered None -> Need_base (* unreachable: the buffer covers this span *)
  | `Sealed -> (
    match Segment.index t.archive with
    | Error _ -> Need_base
    | Ok idx -> (
        match
          List.find_opt
            (fun e -> e.Segment.seg_first <= s && s <= e.Segment.seg_last)
            idx.Segment.segments
        with
        | None -> Need_base
        | Some entry -> (
            match segment_payloads t entry with
            | Error e ->
                if t.trouble = None then t.trouble <- Some e;
                Need_base
            | Ok payloads -> (
                match List.nth_opt payloads (s - entry.Segment.seg_first) with
                | Some payload -> Found payload
                | None -> Need_base))))

let newest_base t =
  match Segment.index t.archive with
  | Error _ -> None
  | Ok idx -> (
      match List.rev idx.Segment.bases with b :: _ -> Some b | [] -> None)

(* --- pushing -------------------------------------------------------- *)

let fence t =
  Si_obs.Counter.incr fenced_count;
  t.fenced <- true

(* One round-trip; interpret the response against the follower cursor.
   [`Progress] made headway, [`Retry] should resend, [`Stop] ends this
   follower's round. *)
let exchange t f frame ~on_ack =
  match f.f_send (Frame.encode frame) with
  | Error _ -> `Retry
  | Ok raw -> (
      match Frame.decode raw with
      | Error _ -> `Retry
      | Ok (Frame.Ack { seq }) ->
          on_ack seq;
          `Progress
      | Ok (Frame.Nack { next }) ->
          f.f_acked <- next - 1;
          `Progress
      | Ok (Frame.Fenced _) ->
          fence t;
          `Stop
      | Ok (Frame.Bad _) -> `Retry
      | Ok _ -> `Retry)

let push_follower t f =
  let budget = ref (((t.seq - f.f_acked) * 4) + 16) in
  let rec go () =
    if t.fenced then ()
    else if f.f_acked >= t.seq then f.f_healthy <- true
    else if !budget <= 0 then f.f_healthy <- false
    else begin
      decr budget;
      let next = f.f_acked + 1 in
      let step =
        match record_at t next with
        | Shipped_all ->
            f.f_healthy <- true;
            `Stop
        | Found payload ->
            Si_obs.Counter.incr append_count;
            exchange t f
              (Frame.Append { term = t.term; seq = next; payload })
              ~on_ack:(fun a -> f.f_acked <- max f.f_acked a)
        | Need_base -> (
            (* The record predates the archive's sealed span: jump the
               follower to the newest base snapshot instead. *)
            match newest_base t with
            | None ->
                if t.trouble = None then
                  t.trouble <-
                    Some
                      (Printf.sprintf
                         "no archive source for record %d and no base \
                          snapshot to jump past it"
                         next);
                f.f_healthy <- false;
                `Stop
            | Some b -> (
                match Segment.read_base ~dir:t.archive b with
                | Error e ->
                    if t.trouble = None then t.trouble <- Some e;
                    f.f_healthy <- false;
                    `Stop
                | Ok payload ->
                    Si_obs.Counter.incr snapshot_count;
                    exchange t f
                      (Frame.Snapshot
                         { term = t.term; seq = b.Segment.base_seq; payload })
                      ~on_ack:(fun a -> f.f_acked <- max f.f_acked a)))
      in
      match step with
      | `Stop -> ()
      | `Progress -> go ()
      | `Retry ->
          Si_obs.Counter.incr retry_count;
          go ()
    end
  in
  go ()

let ship t =
  if t.fenced then Error "shipper is fenced: a newer leader exists"
  else begin
    let fs = with_lock t (fun () -> t.followers) in
    List.iter (fun f -> push_follower t f) fs;
    Si_obs.Gauge.set lag_gauge (lag t);
    if t.fenced then Error "shipper is fenced: a newer leader exists"
    else Ok ()
  end

let heartbeat t =
  if t.fenced then Error "shipper is fenced: a newer leader exists"
  else begin
    let fs = with_lock t (fun () -> t.followers) in
    List.iter
      (fun f ->
        ignore
          (exchange t f
             (Frame.Heartbeat { term = t.term; seq = t.seq })
             ~on_ack:(fun a -> f.f_acked <- max f.f_acked a)))
      fs;
    Si_obs.Gauge.set lag_gauge (lag t);
    if t.fenced then Error "shipper is fenced: a newer leader exists"
    else Ok ()
  end

let attach t ~name send =
  if t.fenced then Error "shipper is fenced: a newer leader exists"
  else
    match send (Frame.encode (Frame.Hello { term = t.term; seq = t.seq })) with
    | Error e -> Error (Printf.sprintf "handshake with %s failed: %s" name e)
    | Ok raw -> (
        match Frame.decode raw with
        | Error e ->
            Error (Printf.sprintf "handshake with %s failed: %s" name e)
        | Ok (Frame.Welcome { term; next }) ->
            if term <> t.term then
              Error
                (Printf.sprintf "handshake with %s: term mismatch %d" name
                   term)
            else begin
              let f =
                {
                  f_name = name;
                  f_send = send;
                  f_acked = next - 1;
                  f_healthy = true;
                }
              in
              with_lock t (fun () ->
                  t.followers <-
                    f :: List.filter (fun g -> g.f_name <> name) t.followers);
              Ok ()
            end
        | Ok (Frame.Fenced { term }) ->
            fence t;
            Error
              (Printf.sprintf
                 "fenced: %s already follows a leader of term %d" name term)
        | Ok (Frame.Bad e) ->
            Error (Printf.sprintf "handshake with %s rejected: %s" name e)
        | Ok _ -> Error (Printf.sprintf "handshake with %s: unexpected reply" name))

let detach t name =
  with_lock t (fun () ->
      t.followers <- List.filter (fun f -> f.f_name <> name) t.followers)
