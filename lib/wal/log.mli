(** Append-only write-ahead log with group commit, snapshots, and
    crash recovery.

    A log lives in two files. [path] holds a 12-byte header (8-byte
    magic + u32-le generation) followed by framed records
    ({!Record.encode}). [path ^ ".snap"], when present, holds a
    snapshot: 8-byte magic, u32-le generation, and a single framed
    payload representing the full state at the moment the snapshot was
    cut. Current state is always [snapshot + every record in a log of
    the same generation], in order.

    Compaction ({!cut_snapshot}) bumps the generation, writes the new
    snapshot atomically (temp file + rename), then replaces the log
    with an empty one of the matching generation. A crash between the
    two steps leaves a snapshot one generation ahead of the log; {!open_}
    recognises this, discards the stale log, and reports it in the
    {!recovery} — the snapshot already contains everything the old log
    said. A log generation *ahead* of the snapshot can never be produced
    by this protocol and is a hard error.

    Durability model: {!sync} pushes buffered records through the
    [out_channel] to the operating system ([flush], not [fsync]) — the
    unit of "acknowledged" is surviving a process crash, not a kernel
    panic. Recovery truncates torn tails (partial appends) and treats a
    checksum mismatch anywhere before the tail as {!Corrupt_record}:
    replay refuses to continue past damage it cannot explain.

    Single-writer guard: {!open_} takes an advisory lock — an O_EXCL
    pid file at [path ^ ".lock"] plus an in-process registry — so two
    writers can never interleave appends into the same log (the
    double-open corruption path). A lock naming a dead process, or our
    own pid (a crash left it behind), is stale and taken over.
    Read-only access ({!inspect}, {!dump}) never locks. *)

type t

type sync_policy =
  | Immediate  (** Every append is flushed before it returns. *)
  | Batched of { max_records : int; max_bytes : int }
      (** Appends buffer in memory; an automatic flush happens once
          [max_records] records or [max_bytes] encoded bytes are
          pending. Explicit {!sync} flushes early. *)

val default_policy : sync_policy
(** [Batched { max_records = 64; max_bytes = 262144 }]. *)

type error =
  | Io of string  (** Underlying [Sys_error]. *)
  | Bad_header of { file : string; detail : string }
      (** Wrong magic, or a log generation ahead of its snapshot. *)
  | Corrupt_record of { index : int; offset : int; detail : string }
      (** Mid-log checksum failure: record [index] at byte [offset]. *)
  | Corrupt_snapshot of { file : string; detail : string }

val error_to_string : error -> string

type recovery = {
  snapshot : string option;  (** Snapshot payload to restore first. *)
  records : string list;  (** Tail records to replay, in append order. *)
  truncated_bytes : int;
      (** Torn-tail bytes dropped from the end of the log (0 when the
          log was clean). *)
  reset_log : bool;
      (** The log predated the snapshot (crash mid-compaction) or had a
          torn header, and was replaced by an empty one. *)
}

val snapshot_path : string -> string
(** [snapshot_path path] is [path ^ ".snap"]. *)

val lock_path : string -> string
(** [lock_path path] is [path ^ ".lock"] — the advisory single-writer
    pid file {!open_} holds while the log is open. *)

val open_ : ?policy:sync_policy -> string -> (t * recovery, error) result
(** [open_ path] opens (creating if absent) the log at [path],
    performing recovery: torn tails are truncated on disk, a stale log
    left by an interrupted compaction is discarded. The caller must
    restore [recovery.snapshot] (if any) then replay [recovery.records]
    before appending. Fails with [Io] when another live process (or
    this one) already holds the log open — see the single-writer guard
    above. *)

val append : t -> string -> (unit, error) result
(** Append one record. Under [Immediate] it is flushed (durable against
    process crash) on return; under [Batched _] it may sit in the
    buffer until a threshold or {!sync}. *)

val sync : t -> (unit, error) result
(** Flush all buffered records to the OS. *)

val pending : t -> int
(** Records appended but not yet flushed. *)

val cut_snapshot : t -> string -> (unit, error) result
(** [cut_snapshot t state] compacts the log: flushes, writes [state] as
    a snapshot of generation [generation t + 1], then truncates the log
    to an empty one of that generation. *)

val generation : t -> int
val path : t -> string

val set_tee : t -> (string -> unit) option -> unit
(** Install (or clear) an observer called with every payload accepted
    by {!append}, before it is buffered. The replication shipper taps
    the record stream here; the hook must not mutate the log. *)

val record_count : t -> int
(** Records in the log on disk (replayed at open + flushed since),
    excluding buffered ones. *)

val close : t -> (unit, error) result
(** Flush and close. Further operations return [Io]. *)

type info = {
  info_generation : int;
  info_records : int;  (** Intact records in the log. *)
  info_log_bytes : int;  (** Log file size on disk. *)
  info_torn_bytes : int;  (** Trailing bytes a recovery would truncate. *)
  info_snapshot_bytes : int option;
      (** Snapshot payload size, when a snapshot exists. *)
  info_stale_log : bool;
      (** The snapshot is one generation ahead (interrupted compaction);
          recovery would discard the log's records. *)
}

val inspect : string -> (info, error) result
(** Read-only examination of the pair of files at [path]; never
    modifies anything, so it reports torn tails rather than truncating
    them. Errors if neither file exists. *)

type dump_record = { dump_offset : int; dump_payload : string }
(** A decoded record and the byte offset its frame starts at. *)

type dump = {
  dump_log_generation : int option;
      (** [None] when the header is torn or unreadable. *)
  dump_snapshot_generation : int option;
  dump_snapshot : string option;  (** Snapshot payload, when intact. *)
  dump_records : dump_record list;
      (** The valid record prefix, in append order, with offsets. *)
  dump_torn_bytes : int;
  dump_stale_log : bool;
      (** Snapshot generation ahead of the log: records are superseded. *)
  dump_corrupt : (int * int * string) option;
      (** Mid-log damage as [(record index, byte offset, detail)]. *)
  dump_problems : string list;
      (** Header- or snapshot-level defects, human-readable. *)
}

val dump : string -> (dump, error) result
(** Like {!inspect} but returns the decoded payloads themselves, with
    provenance, and degrades instead of erroring: damage (bad headers,
    corrupt snapshots, mid-log corruption) is reported inside the
    {!dump} so an offline analyzer can diagnose a broken log it could
    never replay. Only I/O failure — or neither file existing — is an
    [Error]. Never modifies the files. *)
