(** Socket transport for WAL shipping (stdlib [Unix] only).

    Frames cross the wire exactly as {!Frame.encode} produced them —
    [u32-le length][u32-le crc][payload] — so both ends length-prefix
    reads and verify the checksum before anything reaches the protocol
    layer. The server runs its accept loop in a dedicated domain,
    services one connection at a time, and hands each frame to the
    handler (typically {!Replica.handle}); the leader keeps one
    persistent {!client} per follower. *)

(** {1 Frame I/O}

    The building blocks, exposed for other frame-based servers (the pad
    server pairs them with its own accept loop and worker pool). *)

val recv_frame : Unix.file_descr -> (string, string) result
(** Read one frame: 8-byte record header, then the payload, checksum
    verified. [Error] on close, short read, oversized length, or CRC
    mismatch — damage is caught here, before any protocol parsing. *)

val send_frame : Unix.file_descr -> string -> (unit, string) result
(** Write one already-encoded frame, handling short writes. *)

(** {1 Replication server} *)

type server

val serve :
  ?addr:string -> port:int -> (string -> string) -> (server, string) result
(** Listen on [addr] (default localhost) and [port] — 0 picks an
    ephemeral port, read it back with {!port}. *)

val port : server -> int

val shutdown : server -> unit
(** Close the listening socket and join the serving domain.
    Idempotent. *)

type client

val connect : ?addr:string -> port:int -> unit -> (client, string) result

val transport : client -> string -> (string, string) result
(** The {!Ship.transport} over this connection. Any socket failure
    marks the client dead; reconnect with {!connect}. *)

val close : client -> unit
