(** Socket transport for WAL shipping (stdlib [Unix] only).

    Frames cross the wire exactly as {!Frame.encode} produced them —
    [u32-le length][u32-le crc][payload] — so both ends length-prefix
    reads and verify the checksum before anything reaches the protocol
    layer. The server runs its accept loop in a dedicated domain,
    services one connection at a time, and hands each frame to the
    handler (typically {!Replica.handle}); the leader keeps one
    persistent {!client} per follower. *)

type server

val serve :
  ?addr:string -> port:int -> (string -> string) -> (server, string) result
(** Listen on [addr] (default localhost) and [port] — 0 picks an
    ephemeral port, read it back with {!port}. *)

val port : server -> int

val shutdown : server -> unit
(** Close the listening socket and join the serving domain.
    Idempotent. *)

type client

val connect : ?addr:string -> port:int -> unit -> (client, string) result

val transport : client -> string -> (string, string) result
(** The {!Ship.transport} over this connection. Any socket failure
    marks the client dead; reconnect with {!connect}. *)

val close : client -> unit
