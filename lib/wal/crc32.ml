(* Standard reflected CRC-32: polynomial 0xEDB88320, init/xorout
   0xFFFFFFFF. The table is built once, lazily. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 1 to 8 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let digest ?(crc = 0) ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.digest";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get t ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF
