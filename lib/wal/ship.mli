(** The leader end of WAL shipping: segmented archive + follower push.

    A shipper taps a log's accepted-append stream ({!Log.set_tee}),
    assigns each payload a sequence number (1-based, monotonic across
    leader restarts — resumed from the archive), and pushes records to
    attached followers over synchronous request/response transports
    ({!Frame}). Records accumulate in an open in-memory buffer;
    every [segment_records] of them are sealed into an archive segment
    ({!Segment}). The archive doubles as the follower catch-up source
    and the point-in-time recovery store.

    Durability note: like unflushed group-commit batches, the open
    buffer is volatile — the archive is complete up to the last seal or
    {!checkpoint}. A restarting leader resumes numbering after the
    archive's highest sequence number and should cut a fresh base
    ({!write_base}) so later restores cover current state.

    Fencing: any follower response carrying a higher term permanently
    fences this shipper — {!ship}, {!heartbeat}, and {!attach} fail
    from then on. A fenced old leader can never overwrite a promoted
    follower. *)

type transport = string -> (string, string) result
(** One encoded request frame in, one encoded response frame out.
    [Error] means the frame may or may not have arrived (timeout,
    dropped wire) — the shipper retries idempotently. *)

type t

val create :
  ?segment_records:int ->
  ?term:int ->
  ?seq:int ->
  archive:string ->
  Log.t ->
  (t, string) result
(** Install the tee on the log and resume [seq]/[term] from the
    archive directory (created when missing). [segment_records]
    (default 256) is the seal threshold; 1 makes every record
    individually restorable. [term] overrides the archive's term —
    a promoted follower passes its bumped term; values behind the
    archive are refused. [seq] raises the resume point past the
    archive's highest sequence number — a restarting leader passes
    what its persisted replication metadata proves it already
    assigned, so acknowledged numbering is never reused. *)

val close : t -> unit
(** Remove the tee and drop followers. The archive stays. *)

val term : t -> int
val seq : t -> int
(** Last assigned sequence number. *)

val archive : t -> string
val is_fenced : t -> bool

val write_base : t -> string -> (unit, string) result
(** Write [payload] as a base snapshot of the current state (sequence
    number [seq t]) into the archive. *)

val checkpoint : t -> (unit, string) result
(** Seal the open buffer into a segment now (no-op when empty). *)

val attach : t -> name:string -> transport -> (unit, string) result
(** Handshake ([Hello]/[Welcome]) and register the follower; its
    cursor starts at the [next] the follower asked for. Re-attaching
    an existing name replaces its transport. A [Fenced] reply fences
    this shipper. *)

val detach : t -> string -> unit

val ship : t -> (unit, string) result
(** Push records to every follower until each is caught up, its retry
    budget for this call is spent, or a fence is discovered. Follower
    snapshots ([Snapshot] of the newest base) cover cursors that fell
    behind the archive. [Error] only when fenced — laggards just stay
    behind until the next call (see {!lag}). *)

val heartbeat : t -> (unit, string) result
(** One [Heartbeat] per follower: refreshes their staleness bound and
    discovers fencing without shipping records. *)

val followers : t -> (string * int) list
(** Attached followers and their acked sequence numbers. *)

val lag : t -> int
(** Records the most-behind follower still needs (0 when all caught
    up). Published to the ["wal.ship.lag"] gauge on every {!ship}. *)

val trouble : t -> string option
(** First archive I/O failure recorded by the background seal path,
    cleared on read. *)

val set_notify : t -> (unit -> unit) option -> unit
(** Hook called (outside the shipper's lock) after each teed record is
    numbered and buffered. An async shipping domain registers a wake-up
    here so it can run a {!ship} round without the writer blocking on
    network pushes. The callback must not append to the shipped log. *)
