(* Sealed archive pieces for WAL shipping and point-in-time recovery.

   A segment file is [seg_magic][u32 term][u32 first][u32 count] then
   [count] framed records (Record.encode) — the shipped records with
   sequence numbers [first .. first+count-1]. A base file is
   [base_magic][u32 term][u32 seq] and one framed record: the full
   snapshot of the state after applying records [1..seq]. Both are
   written to a temp file and renamed, so a file that exists is sealed:
   any decode failure inside it is damage, never a torn append. *)

type entry = {
  seg_term : int;
  seg_first : int;
  seg_last : int;
  seg_file : string;
}

type base = { base_term : int; base_seq : int; base_file : string }

let seg_magic = "SISEG\x00\x00\x01"
let base_magic = "SISBA\x00\x00\x01"
let magic_size = String.length seg_magic

let seg_name ~term ~first ~last =
  Printf.sprintf "seg-%08d-%08d-%08d.seg" term first last

let base_name ~term ~seq = Printf.sprintf "base-%08d-%08d.base" term seq

(* --- file name parsing --------------------------------------------- *)

type named = Named_segment of entry | Named_base of base | Named_other

let chop ~prefix ~suffix s =
  let pl = String.length prefix and sl = String.length suffix in
  if
    String.length s > pl + sl
    && String.sub s 0 pl = prefix
    && Filename.check_suffix s suffix
  then Some (String.sub s pl (String.length s - pl - sl))
  else None

let dashed_ints body =
  let parts = String.split_on_char '-' body in
  let ints = List.filter_map int_of_string_opt parts in
  if List.length ints = List.length parts then Some ints else None

let parse_name file =
  match chop ~prefix:"seg-" ~suffix:".seg" file with
  | Some body -> (
      match dashed_ints body with
      | Some [ term; first; last ] ->
          Named_segment
            { seg_term = term; seg_first = first; seg_last = last;
              seg_file = file }
      | _ -> Named_other)
  | None -> (
      match chop ~prefix:"base-" ~suffix:".base" file with
      | Some body -> (
          match dashed_ints body with
          | Some [ term; seq ] ->
              Named_base { base_term = term; base_seq = seq; base_file = file }
          | _ -> Named_other)
      | None -> Named_other)

(* --- I/O helpers --------------------------------------------------- *)

let protect_io f = try Ok (f ()) with Sys_error msg -> Error msg

let read_file path =
  protect_io (fun () ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

let write_atomic dir file contents =
  let final = Filename.concat dir file in
  let temp = final ^ ".si-tmp" in
  protect_io (fun () ->
      let oc = open_out_bin temp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc contents);
      Sys.rename temp final)

let ensure_dir dir =
  protect_io (fun () ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        raise (Sys_error (dir ^ ": not a directory")))

(* --- writing ------------------------------------------------------- *)

let seal ~dir ~term ~first payloads =
  match payloads with
  | [] -> Error "cannot seal an empty segment"
  | _ -> (
      let last = first + List.length payloads - 1 in
      let buf = Buffer.create 4096 in
      Buffer.add_string buf seg_magic;
      Record.add_u32 buf term;
      Record.add_u32 buf first;
      Record.add_u32 buf (List.length payloads);
      List.iter (Record.encode buf) payloads;
      let file = seg_name ~term ~first ~last in
      match write_atomic dir file (Buffer.contents buf) with
      | Error _ as e -> e
      | Ok () ->
          Ok
            { seg_term = term; seg_first = first; seg_last = last;
              seg_file = file })

let write_base ~dir ~term ~seq payload =
  let buf = Buffer.create (String.length payload + 32) in
  Buffer.add_string buf base_magic;
  Record.add_u32 buf term;
  Record.add_u32 buf seq;
  Record.encode buf payload;
  let file = base_name ~term ~seq in
  match write_atomic dir file (Buffer.contents buf) with
  | Error _ as e -> e
  | Ok () -> Ok { base_term = term; base_seq = seq; base_file = file }

let import_base ~dir ~term ~seq payload =
  Result.bind (ensure_dir dir) (fun () -> write_base ~dir ~term ~seq payload)

(* --- reading ------------------------------------------------------- *)

let header_err file detail = Error (Printf.sprintf "%s: %s" file detail)

let read ~dir entry =
  match read_file (Filename.concat dir entry.seg_file) with
  | Error _ as e -> e
  | Ok contents ->
      let file = entry.seg_file in
      if String.length contents < magic_size + 12 then
        header_err file "truncated header"
      else if String.sub contents 0 magic_size <> seg_magic then
        header_err file "bad magic"
      else begin
        let term = Record.get_u32 contents magic_size in
        let first = Record.get_u32 contents (magic_size + 4) in
        let count = Record.get_u32 contents (magic_size + 8) in
        if term <> entry.seg_term || first <> entry.seg_first then
          header_err file "header disagrees with file name"
        else if count <> entry.seg_last - entry.seg_first + 1 then
          header_err file "record count disagrees with file name"
        else
          match Record.read_all contents ~pos:(magic_size + 12) with
          | Error e -> header_err file e
          | Ok (_, _, Some torn) ->
              (* Sealed at creation: a short read is damage, not a crash. *)
              header_err file (Printf.sprintf "damaged: %s" torn)
          | Ok (payloads, _, None) ->
              if List.length payloads <> count then
                header_err file "wrong number of records"
              else Ok payloads
      end

let read_base ~dir b =
  match read_file (Filename.concat dir b.base_file) with
  | Error _ as e -> e
  | Ok contents ->
      let file = b.base_file in
      if String.length contents < magic_size + 8 then
        header_err file "truncated header"
      else if String.sub contents 0 magic_size <> base_magic then
        header_err file "bad magic"
      else begin
        let term = Record.get_u32 contents magic_size in
        let seq = Record.get_u32 contents (magic_size + 4) in
        if term <> b.base_term || seq <> b.base_seq then
          header_err file "header disagrees with file name"
        else
          match Record.read contents ~pos:(magic_size + 8) with
          | Record.Record { payload; next } ->
              if next <> String.length contents then
                header_err file "trailing bytes after the snapshot record"
              else Ok payload
          | Record.End -> header_err file "missing snapshot record"
          | Record.Torn e | Record.Corrupt e ->
              header_err file (Printf.sprintf "damaged: %s" e)
      end

(* --- the archive index --------------------------------------------- *)

type index = { segments : entry list; bases : base list }

let empty_index = { segments = []; bases = [] }

let index dir =
  if not (Sys.file_exists dir) then Ok empty_index
  else
    match protect_io (fun () -> Sys.readdir dir) with
    | Error _ as e -> e
    | Ok files ->
        let segments = ref [] and bases = ref [] in
        Array.iter
          (fun file ->
            match parse_name file with
            | Named_segment e -> segments := e :: !segments
            | Named_base b -> bases := b :: !bases
            | Named_other -> ())
          files;
        Ok
          {
            segments =
              List.sort
                (fun a b -> compare a.seg_first b.seg_first)
                !segments;
            bases =
              List.sort (fun a b -> compare a.base_seq b.base_seq) !bases;
          }

let max_seq idx =
  let seg = List.fold_left (fun m e -> max m e.seg_last) 0 idx.segments in
  List.fold_left (fun m b -> max m b.base_seq) seg idx.bases

let max_term idx =
  let seg = List.fold_left (fun m e -> max m e.seg_term) 0 idx.segments in
  List.fold_left (fun m b -> max m b.base_term) seg idx.bases

(* --- verification (drives lint rule SL306) ------------------------- *)

type problem = { problem_file : string; problem_detail : string }

let verify dir =
  match index dir with
  | Error _ as e -> e
  | Ok idx ->
      let problems = ref [] in
      let report file detail =
        problems := { problem_file = file; problem_detail = detail } :: !problems
      in
      let strip_file msg file =
        (* read/read_base prefix errors with the file name; drop it. *)
        let prefix = file ^ ": " in
        let pl = String.length prefix in
        if String.length msg > pl && String.sub msg 0 pl = prefix then
          String.sub msg pl (String.length msg - pl)
        else msg
      in
      List.iter
        (fun e ->
          match read ~dir e with
          | Ok _ -> ()
          | Error msg -> report e.seg_file (strip_file msg e.seg_file))
        idx.segments;
      List.iter
        (fun b ->
          match read_base ~dir b with
          | Ok _ -> ()
          | Error msg -> report b.base_file (strip_file msg b.base_file))
        idx.bases;
      (* Sequence continuity: a hole between consecutive segments is only
         restorable when a base covers everything before the later one. *)
      let bridged upto =
        List.exists (fun b -> b.base_seq >= upto) idx.bases
      in
      (* A retention-pruned archive drops its oldest segments, so the
         earliest surviving one may start past 1 — legitimate exactly
         when a retained base covers the missing prefix. An uncovered
         leading hole means files were lost, not pruned. *)
      (match idx.segments with
      | first :: _ when first.seg_first > 1 && not (bridged (first.seg_first - 1))
        ->
          report first.seg_file
            (Printf.sprintf
               "leading gap: records 1..%d are in no segment and no base \
                covers them"
               (first.seg_first - 1))
      | _ -> ());
      let rec continuity = function
        | a :: (b :: _ as rest) ->
            if b.seg_first > a.seg_last + 1 && not (bridged (b.seg_first - 1))
            then
              report b.seg_file
                (Printf.sprintf
                   "sequence gap: records %d..%d are in no segment and no \
                    base covers them"
                   (a.seg_last + 1) (b.seg_first - 1));
            if b.seg_term < a.seg_term then
              report b.seg_file
                (Printf.sprintf "generation regression: term %d after term %d"
                   b.seg_term a.seg_term);
            continuity rest
        | _ -> ()
      in
      continuity idx.segments;
      Ok (List.rev !problems)

(* --- retention ------------------------------------------------------ *)

type prune_report = {
  prune_cutoff : int;
  pruned_segments : string list;
  pruned_bases : string list;
}

let prune ~dir ~keep =
  if keep < 0 then Error "keep-window must be non-negative"
  else
    match index dir with
    | Error _ as e -> e
    | Ok idx -> (
        match List.rev idx.bases with
        | [] ->
            (* Nothing proves any prefix restorable without a base, so
               nothing may go. *)
            Ok { prune_cutoff = 0; pruned_segments = []; pruned_bases = [] }
        | newest :: _ ->
            let cutoff = max 0 (newest.base_seq - keep) in
            (* A segment goes when every record in it is at or below the
               cutoff (the retained base covers all of them); a base goes
               when it is below the cutoff and not the newest one. *)
            let dead_segments =
              List.filter (fun e -> e.seg_last <= cutoff) idx.segments
            in
            let dead_bases =
              List.filter
                (fun b ->
                  b.base_seq < cutoff && b.base_file <> newest.base_file)
                idx.bases
            in
            let files =
              List.map (fun e -> e.seg_file) dead_segments
              @ List.map (fun b -> b.base_file) dead_bases
            in
            protect_io (fun () ->
                List.iter
                  (fun file -> Sys.remove (Filename.concat dir file))
                  files;
                {
                  prune_cutoff = cutoff;
                  pruned_segments = List.map (fun e -> e.seg_file) dead_segments;
                  pruned_bases = List.map (fun b -> b.base_file) dead_bases;
                }))

(* --- point-in-time restore planning -------------------------------- *)

let restore_plan idx ~at =
  if at < 0 then Error "restore point must be non-negative"
  else
    (* Newest base at or before the cut, then contiguous segment
       coverage of (base_seq, at]. *)
    match
      List.fold_left
        (fun best b -> if b.base_seq <= at then Some b else best)
        None idx.bases
    with
    | None -> Error (Printf.sprintf "no base snapshot at or before seq %d" at)
    | Some b ->
        let needed_from = b.base_seq + 1 in
        if at < needed_from then Ok (b, [])
        else begin
          let covering =
            List.filter
              (fun e -> e.seg_last >= needed_from && e.seg_first <= at)
              idx.segments
          in
          let rec check next = function
            | [] ->
                if next > at then Ok (b, covering)
                else
                  Error
                    (Printf.sprintf
                       "archive is missing records %d..%d for a restore at %d"
                       next at at)
            | e :: rest ->
                if e.seg_first > next then
                  Error
                    (Printf.sprintf
                       "archive is missing records %d..%d for a restore at %d"
                       next (e.seg_first - 1) at)
                else check (max next (e.seg_last + 1)) rest
          in
          check needed_from covering
        end
