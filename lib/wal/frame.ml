(* The replication wire protocol: one request frame out, one response
   frame back, every frame CRC-framed like a WAL record so a mangled
   byte anywhere is caught by the checksum, not by a parser guessing. *)

type t =
  | Hello of { term : int; seq : int }
  | Welcome of { term : int; next : int }
  | Fenced of { term : int }
  | Snapshot of { term : int; seq : int; payload : string }
  | Append of { term : int; seq : int; payload : string }
  | Heartbeat of { term : int; seq : int }
  | Ack of { seq : int }
  | Nack of { next : int }
  | Bad of string

let fields = function
  | Hello { term; seq } -> [ "hello"; string_of_int term; string_of_int seq ]
  | Welcome { term; next } ->
      [ "welcome"; string_of_int term; string_of_int next ]
  | Fenced { term } -> [ "fenced"; string_of_int term ]
  | Snapshot { term; seq; payload } ->
      [ "snap"; string_of_int term; string_of_int seq; payload ]
  | Append { term; seq; payload } ->
      [ "app"; string_of_int term; string_of_int seq; payload ]
  | Heartbeat { term; seq } -> [ "hb"; string_of_int term; string_of_int seq ]
  | Ack { seq } -> [ "ack"; string_of_int seq ]
  | Nack { next } -> [ "nack"; string_of_int next ]
  | Bad reason -> [ "bad"; reason ]

let encode f =
  let buf = Buffer.create 64 in
  Record.encode buf (Record.encode_fields (fields f));
  Buffer.contents buf

let of_fields = function
  | [ "hello"; term; seq ] -> (
      match (int_of_string_opt term, int_of_string_opt seq) with
      | Some term, Some seq -> Ok (Hello { term; seq })
      | _ -> Error "hello: bad integers")
  | [ "welcome"; term; next ] -> (
      match (int_of_string_opt term, int_of_string_opt next) with
      | Some term, Some next -> Ok (Welcome { term; next })
      | _ -> Error "welcome: bad integers")
  | [ "fenced"; term ] -> (
      match int_of_string_opt term with
      | Some term -> Ok (Fenced { term })
      | None -> Error "fenced: bad term")
  | [ "snap"; term; seq; payload ] -> (
      match (int_of_string_opt term, int_of_string_opt seq) with
      | Some term, Some seq -> Ok (Snapshot { term; seq; payload })
      | _ -> Error "snap: bad integers")
  | [ "app"; term; seq; payload ] -> (
      match (int_of_string_opt term, int_of_string_opt seq) with
      | Some term, Some seq -> Ok (Append { term; seq; payload })
      | _ -> Error "app: bad integers")
  | [ "hb"; term; seq ] -> (
      match (int_of_string_opt term, int_of_string_opt seq) with
      | Some term, Some seq -> Ok (Heartbeat { term; seq })
      | _ -> Error "hb: bad integers")
  | [ "ack"; seq ] -> (
      match int_of_string_opt seq with
      | Some seq -> Ok (Ack { seq })
      | None -> Error "ack: bad seq")
  | [ "nack"; next ] -> (
      match int_of_string_opt next with
      | Some next -> Ok (Nack { next })
      | None -> Error "nack: bad seq")
  | [ "bad"; reason ] -> Ok (Bad reason)
  | tag :: _ -> Error (Printf.sprintf "unknown frame tag %S" tag)
  | [] -> Error "empty frame"

let decode raw =
  match Record.read raw ~pos:0 with
  | Record.Record { payload; next } ->
      if next <> String.length raw then Error "trailing bytes after frame"
      else Result.bind (Record.decode_fields payload) of_fields
  | Record.End -> Error "empty frame"
  | Record.Torn e | Record.Corrupt e ->
      Error (Printf.sprintf "damaged frame: %s" e)
