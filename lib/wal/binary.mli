(** Length-prefixed binary section container.

    The on-disk shape of binary WAL snapshots: a fixed 8-byte
    magic/version header, a section count, then named sections, each
    CRC-32-framed like {!Record} so corruption is pinned to the section
    it hit. XML stays the export/interop format; this container is the
    compact representation the hot persistence path reads and writes.

    Layout (all integers little-endian u32):
    {v
    offset  size  field
    0       8     magic "SIBF\x00\x00\x00\x01" (name + version 1)
    8       4     section count
    --- per section ---
    +0      4     name length n
    +4      n     name bytes
    +4+n    4     payload length p
    +8+n    4     CRC-32 of payload
    +12+n   p     payload bytes
    v} *)

val magic : string
(** ["SIBF\x00\x00\x00\x01"] — 8 bytes, last byte is the format
    version. *)

val is_binary : string -> bool
(** Format sniffer: does the payload start with {!magic}? Old XML
    snapshots (which start with ['<']) answer [false] and keep loading
    through the XML path unchanged. *)

val encode : (string * string) list -> string
(** [encode sections] frames the (name, payload) list. Section order is
    preserved; names need not be distinct (decoders use the first
    match). *)

val decode : string -> ((string * string) list, string) result
(** Inverse of {!encode}. Errors out — never returns a partial list —
    on bad magic, an unsupported version, a truncated header, a section
    overrunning the container, trailing bytes, or a CRC mismatch. *)

val section : string -> (string * string) list -> string option
(** First section with the given name, if any. *)
