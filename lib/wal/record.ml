let header_size = 8

let add_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let encode buf payload =
  add_u32 buf (String.length payload);
  add_u32 buf (Crc32.digest payload);
  Buffer.add_string buf payload

type read =
  | Record of { payload : string; next : int }
  | End
  | Torn of string
  | Corrupt of string

let read s ~pos =
  let total = String.length s in
  if pos < 0 || pos > total then invalid_arg "Record.read";
  if pos = total then End
  else if pos + header_size > total then
    Torn
      (Printf.sprintf "incomplete record header (%d of %d bytes)"
         (total - pos) header_size)
  else
    let len = get_u32 s pos in
    let crc = get_u32 s (pos + 4) in
    let start = pos + header_size in
    if start + len > total then
      Torn
        (Printf.sprintf "record length %d extends past end of log (%d byte(s) present)"
           len (total - start))
    else
      let actual = Crc32.digest ~pos:start ~len s in
      if actual <> crc then
        let detail =
          Printf.sprintf "checksum mismatch (stored %08x, computed %08x)" crc
            actual
        in
        (* A bad checksum on the very last record is what a crash
           mid-append looks like; anywhere else it cannot be torn
           writes and means real damage. *)
        if start + len = total then Torn detail else Corrupt detail
      else Record { payload = String.sub s start len; next = start + len }

let read_all s ~pos =
  let rec go acc pos =
    match read s ~pos with
    | Record { payload; next } -> go (payload :: acc) next
    | End -> Ok (List.rev acc, pos, None)
    | Torn reason -> Ok (List.rev acc, pos, Some reason)
    | Corrupt reason ->
        Error
          (Printf.sprintf "corrupt record %d at offset %d: %s"
             (List.length acc) pos reason)
  in
  go [] pos

let encode_fields fields =
  let buf = Buffer.create 64 in
  add_u32 buf (List.length fields);
  List.iter
    (fun f ->
      add_u32 buf (String.length f);
      Buffer.add_string buf f)
    fields;
  Buffer.contents buf

let decode_fields s =
  let total = String.length s in
  if total < 4 then Error "field list shorter than its count header"
  else
    let count = get_u32 s 0 in
    let rec go acc pos remaining =
      if remaining = 0 then
        if pos = total then Ok (List.rev acc)
        else Error (Printf.sprintf "%d trailing byte(s) after last field" (total - pos))
      else if pos + 4 > total then
        Error "truncated field length"
      else
        let len = get_u32 s pos in
        if pos + 4 + len > total then
          Error (Printf.sprintf "field length %d overruns payload" len)
        else
          go (String.sub s (pos + 4) len :: acc) (pos + 4 + len) (remaining - 1)
    in
    go [] 4 count
