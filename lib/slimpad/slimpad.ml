module Dmi = Si_slim.Dmi
module Mark = Si_mark.Mark
module Manager = Si_mark.Manager
module Desktop = Si_mark.Desktop
module Resilient = Si_mark.Resilient
module Xml = Si_xmlk
module Durable = Si_triple.Durable
module Log = Si_wal.Log
module Record = Si_wal.Record

let recovery_warning_count = Si_obs.Registry.counter "slimpad.recovery_warning"
let wal_replayed_count = Si_obs.Registry.counter "slimpad.wal_replayed"
let snapshot_binary_count = Si_obs.Registry.counter "wal.snapshot.binary"
let snapshot_binary_latency = Si_obs.Registry.histogram "wal.snapshot.binary"

type wal_state = {
  log : Log.t;
  mutable trouble : string option;
  mutable suppress : bool;
      (* Replica mode: hook-driven appends are disabled — the replica
         itself appends each shipped payload verbatim, keeping the local
         log a 1:1 mirror of the leader's record stream. *)
}

(* Background shipping: the writer's tee only bumps a coalescing
   wake-up counter; a dedicated domain runs the sync-then-push rounds.
   The counter is the bounded channel — ticks, not payloads, queue in
   it, so a slow domain never blocks an append and never loses work
   (every round drains the whole log tail). *)
type async_ship = {
  a_mutex : Si_check.Lock.t;
      (* guards [a_pending]/[a_stop] with [a_cond] *)
  a_cond : Condition.t;
  mutable a_pending : int;
  mutable a_stop : bool;
  a_round : Si_check.Lock.t;
      (* one ship round at a time: domain vs. [ship]; rounds push over
         the network inside it by design (io_ok in the hierarchy) *)
  mutable a_domain : unit Domain.t option;
}

type t = {
  mutable dmi : Dmi.t;  (* mutable so a replica can install a base *)
  mutable marks : Manager.t;
  desktop : Desktop.t;
  resilient : Resilient.t;
  mutable wal : wal_state option;
  mutable shipper : Si_wal.Ship.t option;
  mutable ship_async : async_ship option;
  mutable replica : Si_wal.Replica.t option;
  mutable rep_recovered : (int * int) option;
      (* (term, stream seq) recovered from the snapshot's replication
         section — the numbering basis when shipping resumes. *)
}

type persistence = Whole_file | Journaled

let make_resilient = function
  | Some r -> r
  | None -> Resilient.create ()

let create ?store ?resilient ?wrap desktop =
  let marks = Manager.create () in
  Desktop.install_modules ?wrap desktop marks;
  { dmi = Dmi.create ?store (); marks; desktop;
    resilient = make_resilient resilient; wal = None; shipper = None;
    ship_async = None; replica = None; rep_recovered = None }

let dmi t = t.dmi
let marks t = t.marks
let desktop t = t.desktop
let resilient t = t.resilient
let health t = Resilient.health t.resilient
let new_pad t name = Dmi.create_slimpad t.dmi ~pad_name:name

let add_bundle t ~parent ~name ?pos () =
  Dmi.create_bundle t.dmi ~name ?pos ~parent ()

let add_scrap t ~parent ~name ~mark_type ~fields ?pos () =
  match Manager.create_mark t.marks ~mark_type ~fields () with
  | Error _ as e -> e
  | Ok mark ->
      let label = if name = "" then mark.Mark.excerpt else name in
      Ok
        (Dmi.create_scrap t.dmi ~name:label ?pos
           ~mark_id:mark.Mark.mark_id ~parent ())

let scrap_mark t scrap =
  Manager.mark t.marks (Dmi.scrap_mark_id t.dmi scrap)

let string_error r = Result.map_error Manager.resolve_error_to_string r

let double_click t scrap =
  string_error (Manager.resolve t.marks (Dmi.scrap_mark_id t.dmi scrap))

let scrap_content t scrap =
  string_error
    (Manager.resolve_with t.marks
       (Dmi.scrap_mark_id t.dmi scrap)
       Mark.Extract_content)

let scrap_in_place t scrap =
  string_error
    (Manager.resolve_with t.marks
       (Dmi.scrap_mark_id t.dmi scrap)
       Mark.Display_in_place)

(* The managed path: breaker-guarded, retried, degrading to the cached
   excerpt instead of erroring when the base source is away. *)
let resolve_scrap t scrap =
  Resilient.resolve t.resilient t.marks (Dmi.scrap_mark_id t.dmi scrap)

(* All scraps in a pad's bundle tree. *)
let rec bundle_scraps_rec t bundle =
  Dmi.scraps t.dmi bundle
  @ List.concat_map (bundle_scraps_rec t) (Dmi.nested_bundles t.dmi bundle)

let pad_scraps t pad = bundle_scraps_rec t (Dmi.root_bundle t.dmi pad)

let drift_report t pad =
  List.filter_map
    (fun scrap ->
      match
        Resilient.check_drift t.resilient t.marks
          (Dmi.scrap_mark_id t.dmi scrap)
      with
      | Ok Manager.Unchanged -> None
      | Ok drift -> Some (scrap, drift)
      | Error e -> Some (scrap, Manager.Unresolvable e))
    (pad_scraps t pad)

let refresh_pad t pad =
  List.fold_left
    (fun stale (scrap, drift) ->
      match drift with
      | Manager.Changed _ -> (
          match
            Manager.refresh_excerpt t.marks (Dmi.scrap_mark_id t.dmi scrap)
          with
          | Ok _ -> stale + 1
          | Error _ -> stale)
      (* Degraded and quarantined scraps keep their cached excerpt — never
         overwrite good data with a failure. *)
      | Manager.Unchanged | Manager.Unresolvable _ | Manager.Quarantined _ ->
          stale)
    0 (drift_report t pad)

type pad_health = {
  fresh : int;  (** resolved against the live base source *)
  degraded : int;  (** served from the cached excerpt *)
  quarantined : int;  (** unresolvable across a whole probe window *)
  dangling : int;  (** scrap points at no stored mark *)
}

let pad_health t pad =
  List.fold_left
    (fun h scrap ->
      match
        Resilient.check_drift t.resilient t.marks
          (Dmi.scrap_mark_id t.dmi scrap)
      with
      | Ok (Manager.Unchanged | Manager.Changed _) ->
          { h with fresh = h.fresh + 1 }
      | Ok (Manager.Quarantined _) ->
          { h with quarantined = h.quarantined + 1 }
      | Ok (Manager.Unresolvable _) -> { h with degraded = h.degraded + 1 }
      | Error _ -> { h with dangling = h.dangling + 1 })
    { fresh = 0; degraded = 0; quarantined = 0; dangling = 0 }
    (pad_scraps t pad)

let contains_sub ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  nl = 0
  || (nl <= hl
     &&
     let rec scan i =
       i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
     in
     scan 0)

let find_scraps t pad needle =
  List.filter
    (fun s -> contains_sub ~needle (Dmi.scrap_name t.dmi s))
    (pad_scraps t pad)

let query t text =
  match Si_query.Query.parse text with
  | Error _ as e -> e
  | Ok q ->
      Ok
        (List.map Si_query.Query.binding_to_string
           (Si_query.Query.run (Dmi.trim t.dmi) q))

(* ------------------------------------------------------------ rendering *)

let mark_source t scrap =
  let mark_id = Dmi.scrap_mark_id t.dmi scrap in
  match Resilient.resolve t.resilient t.marks mark_id with
  | Ok (Resilient.Fresh res) -> res.Mark.res_source
  | Ok (Resilient.Degraded { excerpt; fault }) ->
      (* Degraded scraps render distinctly: the cached excerpt is served,
         flagged with the fault that kept the base source away. *)
      Printf.sprintf "DEGRADED cached %S (%s)" excerpt
        (Resilient.fault_to_string fault)
  | Error (Manager.Unknown_mark _) -> "dangling mark " ^ mark_id
  | Error _ -> (
      match Manager.mark t.marks mark_id with
      | Some m ->
          Printf.sprintf "%s (unresolvable: %s)" m.Mark.mark_type
            (Option.value (Mark.field m "fileName") ~default:"?")
      | None -> "dangling mark " ^ mark_id)

let pos_string = function
  | Some { Dmi.x; y } -> Printf.sprintf " @(%d,%d)" x y
  | None -> ""

let render_scrap_line t scrap =
  Printf.sprintf "Scrap %S%s -> %s"
    (Dmi.scrap_name t.dmi scrap)
    (pos_string (Dmi.scrap_pos t.dmi scrap))
    (mark_source t scrap)

let render_pad t pad =
  let buf = Buffer.create 512 in
  let line indent s =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  let rec bundle indent b =
    let size =
      match Dmi.bundle_size t.dmi b with
      | Some (w, h) -> Printf.sprintf " %dx%d" w h
      | None -> ""
    in
    let template = if Dmi.is_template t.dmi b then " [template]" else "" in
    line indent
      (Printf.sprintf "Bundle %S%s%s%s"
         (Dmi.bundle_name t.dmi b)
         (pos_string (Dmi.bundle_pos t.dmi b))
         size template);
    List.iter
      (fun s ->
        line (indent + 1) (render_scrap_line t s);
        List.iter
          (fun a -> line (indent + 2) (Printf.sprintf "note: %s" a))
          (Dmi.annotations t.dmi s))
      (Dmi.scraps t.dmi b);
    List.iter
      (fun d ->
        line (indent + 1)
          (Printf.sprintf "[%s]%s"
             (Dmi.decoration_kind t.dmi d)
             (pos_string (Dmi.decoration_pos t.dmi d))))
      (Dmi.decorations t.dmi b);
    List.iter (bundle (indent + 1)) (Dmi.nested_bundles t.dmi b)
  in
  line 0 (Printf.sprintf "SLIMPad %S" (Dmi.pad_name t.dmi pad));
  bundle 1 (Dmi.root_bundle t.dmi pad);
  (* Links whose both ends live in this pad. *)
  let scraps = pad_scraps t pad in
  let local s = List.mem s scraps in
  let links =
    List.filter
      (fun l ->
        match Dmi.link_ends t.dmi l with
        | Some (a, b) -> local a && local b
        | None -> false)
      (Dmi.links t.dmi)
  in
  if links <> [] then begin
    line 0 "Links:";
    List.iter
      (fun l ->
        match Dmi.link_ends t.dmi l with
        | Some (a, b) ->
            let label =
              match Dmi.link_label t.dmi l with
              | Some lb -> Printf.sprintf " --%s--> " lb
              | None -> " --> "
            in
            line 1
              (Printf.sprintf "%S%s%S"
                 (Dmi.scrap_name t.dmi a)
                 label
                 (Dmi.scrap_name t.dmi b))
        | None -> ())
      links
  end;
  Buffer.contents buf

let render_pad_html t pad =
  let esc = Xml.Print.escape in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
     <title>SLIMPad: %s</title>\n<style>\n\
     body { font: 13px sans-serif; background: #f4f1e8; }\n\
     .bundle { position: absolute; border: 1px solid #8a7; background: \
     #fffef5; border-radius: 6px; padding: 4px; box-shadow: 2px 2px 4px \
     #0002; }\n\
     .bundle > h3 { margin: 0 0 4px 0; font-size: 12px; color: #575; }\n\
     .scrap { position: absolute; background: #ffd; border: 1px solid \
     #cc9; padding: 2px 6px; border-radius: 3px; white-space: pre; }\n\
     .scrap.degraded { background: #fde8e8; border: 1px dashed #c66; \
     color: #733; }\n\
     .scrap .note { display: block; font-size: 10px; color: #a66; }\n\
     .decoration { position: absolute; color: #aaa; font-size: 10px; }\n\
     .flow { position: relative; margin: 4px; }\n\
     .links { margin-top: 20px; color: #666; }\n\
     </style></head>\n<body>\n<h1>SLIMPad &quot;%s&quot;</h1>\n"
    (esc (Dmi.pad_name t.dmi pad))
    (esc (Dmi.pad_name t.dmi pad));
  (* Positioned children render absolutely; unpositioned ones flow. *)
  let style_of pos (w, h) =
    match pos with
    | Some { Dmi.x; y } ->
        Printf.sprintf "style=\"left:%dpx; top:%dpx;%s\"" x y
          (match (w, h) with
          | Some w, Some h ->
              Printf.sprintf " width:%dpx; min-height:%dpx;" w h
          | _ -> "")
    | None ->
        "style=\"position: static; display: inline-block; margin: 4px;\""
  in
  let rec bundle b =
    let w, h =
      match Dmi.bundle_size t.dmi b with
      | Some (w, h) -> (Some w, Some h)
      | None -> (None, None)
    in
    add "<div class=\"bundle\" %s>\n<h3>%s</h3>\n"
      (style_of (Dmi.bundle_pos t.dmi b) (w, h))
      (esc (Dmi.bundle_name t.dmi b));
    add "<div class=\"flow\">\n";
    List.iter
      (fun s ->
        let css, source =
          match Resilient.resolve t.resilient t.marks
                  (Dmi.scrap_mark_id t.dmi s)
          with
          | Ok (Resilient.Fresh res) ->
              ( "scrap",
                Printf.sprintf "%s — %s" res.Mark.res_source
                  res.Mark.res_excerpt )
          | Ok (Resilient.Degraded { excerpt; fault }) ->
              ( "scrap degraded",
                Printf.sprintf "degraded — cached: %s — %s" excerpt
                  (Resilient.fault_to_string fault) )
          | Error e ->
              ( "scrap degraded",
                "unresolvable: " ^ Manager.resolve_error_to_string e )
        in
        add "<span class=\"%s\" %s title=\"%s\">%s" css
          (style_of (Dmi.scrap_pos t.dmi s) (None, None))
          (esc source)
          (esc (Dmi.scrap_name t.dmi s));
        List.iter
          (fun a -> add "<span class=\"note\">%s</span>" (esc a))
          (Dmi.annotations t.dmi s);
        add "</span>\n")
      (Dmi.scraps t.dmi b);
    List.iter
      (fun d ->
        add "<span class=\"decoration\" %s>[%s]</span>\n"
          (style_of (Dmi.decoration_pos t.dmi d) (None, None))
          (esc (Dmi.decoration_kind t.dmi d)))
      (Dmi.decorations t.dmi b);
    List.iter bundle (Dmi.nested_bundles t.dmi b);
    add "</div></div>\n"
  in
  add "<div class=\"flow\">\n";
  bundle (Dmi.root_bundle t.dmi pad);
  add "</div>\n";
  let scraps = pad_scraps t pad in
  let links =
    List.filter
      (fun l ->
        match Dmi.link_ends t.dmi l with
        | Some (a, b) -> List.mem a scraps && List.mem b scraps
        | None -> false)
      (Dmi.links t.dmi)
  in
  if links <> [] then begin
    add "<div class=\"links\"><h2>Links</h2><ul>\n";
    List.iter
      (fun l ->
        match Dmi.link_ends t.dmi l with
        | Some (a, b) ->
            add "<li>%s &rarr; %s%s</li>\n"
              (esc (Dmi.scrap_name t.dmi a))
              (esc (Dmi.scrap_name t.dmi b))
              (match Dmi.link_label t.dmi l with
              | Some lb -> Printf.sprintf " <em>(%s)</em>" (esc lb)
              | None -> "")
        | None -> ())
      links;
    add "</ul></div>\n"
  end;
  add "</body></html>\n";
  Buffer.contents buf

(* ---------------------------------------------------------- persistence *)

let store_xml t =
  Xml.Node.element "slimpad-store"
    [
      Si_triple.Trim.to_xml (Dmi.trim t.dmi);
      Manager.to_xml t.marks;
      Dmi.journal_to_xml t.dmi;
    ]

let save t path = Xml.Print.to_file_atomic path (store_xml t)

let of_store_root ?store ?resilient ?wrap desktop root =
  match root with
  | Xml.Node.Element { name = "slimpad-store"; _ } -> (
      match
        ( Xml.Node.find_child "triples" root,
          Xml.Node.find_child "marks" root )
      with
      | Some triples, Some marks_xml -> (
          match Dmi.of_xml ?store triples with
          | Error _ as e -> e
          | Ok dmi -> (
              let marks = Manager.create () in
              Desktop.install_modules ?wrap desktop marks;
              match Manager.of_xml marks marks_xml with
              | Error _ as e -> e
              | Ok () ->
                  (* Older store files have no journal section. *)
                  (match Xml.Node.find_child "journal" root with
                  | Some j -> (
                      match Dmi.load_journal dmi j with
                      | Ok () -> ()
                      | Error _ -> ())
                  | None -> ());
                  Ok
                    { dmi; marks; desktop;
                      resilient = make_resilient resilient; wal = None;
                      shipper = None; ship_async = None; replica = None;
                      rep_recovered = None }))
      | _ -> Error "missing <triples> or <marks> section")
  | _ -> Error "expected a <slimpad-store> root element"

let load ?store ?resilient ?wrap desktop path =
  match Xml.Parse.file path with
  | Error e -> Error (Xml.Parse.error_to_string e)
  | Ok root ->
      of_store_root ?store ?resilient ?wrap desktop
        (Xml.Node.strip_whitespace root)

(* ------------------------------------------------------ journaled mode *)

(* One WAL carries three interleaved record streams, all in the shared
   field-list encoding and distinguished by their first field: triple
   ops ("+" / "-" / "x", the Durable codec), marks ("m+" / "m-"), and
   journal events ("j" / "jx" / "jt"). Snapshots are cut in the binary
   container form (see below); recovery sniffs the payload, so a log
   whose last snapshot is an old <slimpad-store> document replays
   unchanged. *)

module Wbin = Si_wal.Binary

(* Binary snapshot layout: the [atoms] + [triples] sections of the
   compact Trim codec — triples dominate snapshot size and recovery
   time — plus [marks] and [journal] sections whose payloads are the
   same XML subtrees the whole-file path writes, since those streams
   are small and keep their XML codecs. *)
let marks_section = "marks"
let journal_section = "journal"

(* Replication metadata rides inside the WAL snapshot as one more
   section — (term, stream sequence number) at the moment the snapshot
   was cut — so it is exactly as durable and as atomic as compaction
   itself. The current stream position is always [meta seq + records
   appended since the snapshot]. *)
let replication_section = "replication"

let binary_sections t =
  Si_triple.Trim.binary_sections (Dmi.trim t.dmi)
  @ [
      (marks_section, Xml.Print.to_string (Manager.to_xml t.marks));
      (journal_section, Xml.Print.to_string (Dmi.journal_to_xml t.dmi));
    ]

let binary_snapshot t = Wbin.encode (binary_sections t)

let snapshot_with_meta t = function
  | None -> binary_snapshot t
  | Some (term, seq) ->
      Wbin.encode
        (binary_sections t
        @ [
            ( replication_section,
              Record.encode_fields [ string_of_int term; string_of_int seq ]
            );
          ])

let rep_meta_of_payload payload =
  if not (Wbin.is_binary payload) then None
  else
    match Wbin.decode payload with
    | Error _ -> None
    | Ok sections -> (
        match Wbin.section replication_section sections with
        | None -> None
        | Some raw -> (
            match Record.decode_fields raw with
            | Ok [ term; seq ] -> (
                match (int_of_string_opt term, int_of_string_opt seq) with
                | Some term, Some seq -> Some (term, seq)
                | _ -> None)
            | Ok _ | Error _ -> None))

let of_binary_snapshot ?store ?resilient ?wrap desktop payload =
  match Wbin.decode payload with
  | Error e -> Error ("binary snapshot: " ^ e)
  | Ok sections -> (
      match Si_triple.Trim.triples_of_binary_sections sections with
      | Error e -> Error ("binary snapshot: " ^ e)
      | Ok triples -> (
          let trim = Si_triple.Trim.create ?store () in
          Si_triple.Trim.add_all trim triples;
          let dmi = Dmi.of_trim trim in
          let marks = Manager.create () in
          Desktop.install_modules ?wrap desktop marks;
          let marks_result =
            match Wbin.section marks_section sections with
            | None -> Ok ()
            | Some xml -> (
                match Xml.Parse.node xml with
                | Error e -> Error (Xml.Parse.error_to_string e)
                | Ok root ->
                    Manager.of_xml marks (Xml.Node.strip_whitespace root))
          in
          match marks_result with
          | Error _ as e -> e
          | Ok () ->
              (* Like [of_store_root]: a journal that fails to parse is
                 dropped, not fatal. *)
              (match Wbin.section journal_section sections with
              | None -> ()
              | Some xml -> (
                  match Xml.Parse.node xml with
                  | Error _ -> ()
                  | Ok root -> (
                      match
                        Dmi.load_journal dmi (Xml.Node.strip_whitespace root)
                      with
                      | Ok () | Error _ -> ())));
              Ok
                {
                  dmi; marks; desktop;
                  resilient = make_resilient resilient;
                  wal = None; shipper = None; ship_async = None;
                  replica = None; rep_recovered = None;
                }))

(* Format sniffer: every snapshot payload, wherever it came from, goes
   through here, so pads snapshotted before the binary codec load
   byte-for-byte unchanged through the XML path. *)
let app_of_snapshot ?store ?resilient ?wrap desktop payload =
  if Wbin.is_binary payload then
    of_binary_snapshot ?store ?resilient ?wrap desktop payload
  else
    match Xml.Parse.node payload with
    | Error e ->
        Error
          (Printf.sprintf "wal: bad snapshot payload: %s"
             (Xml.Parse.error_to_string e))
    | Ok root ->
        of_store_root ?store ?resilient ?wrap desktop
          (Xml.Node.strip_whitespace root)

let persistence t = match t.wal with None -> Whole_file | Some _ -> Journaled
let wal t = Option.map (fun st -> st.log) t.wal

let wal_append st payload =
  if not st.suppress then
    match Log.append st.log payload with
    | Ok () -> ()
    | Error e ->
        if st.trouble = None then st.trouble <- Some (Log.error_to_string e)

let install_hooks t st =
  Si_triple.Trim.on_mutate (Dmi.trim t.dmi) (fun op ->
      wal_append st (Durable.encode_op op));
  Manager.on_change t.marks (function
    | Manager.Mark_put m -> wal_append st (Mark.to_record m)
    | Manager.Mark_removed id ->
        wal_append st (Record.encode_fields [ "m-"; id ]));
  Dmi.on_journal t.dmi (function
    | Dmi.Journal_logged e -> wal_append st (Dmi.journal_entry_to_record e)
    | Dmi.Journal_cleared -> wal_append st (Record.encode_fields [ "jx" ])
    | Dmi.Journal_truncated_to n ->
        wal_append st (Record.encode_fields [ "jt"; string_of_int n ]));
  t.wal <- Some st

let apply_record t payload =
  match Record.decode_fields payload with
  | Error e -> Error (Printf.sprintf "undecodable record: %s" e)
  | Ok (("+" | "-" | "x") :: _) ->
      Result.map
        (Durable.apply_op (Dmi.trim t.dmi))
        (Durable.decode_op payload)
  | Ok (tag :: _) when tag = Mark.record_tag ->
      Result.map (Manager.put_mark t.marks) (Mark.of_record payload)
  | Ok [ "m-"; id ] ->
      ignore (Manager.remove_mark t.marks id);
      Ok ()
  | Ok (tag :: _) when tag = Dmi.journal_record_tag ->
      Result.map
        (Dmi.append_journal_entry t.dmi)
        (Dmi.journal_entry_of_record payload)
  | Ok [ "jx" ] ->
      Dmi.clear_journal t.dmi;
      Ok ()
  | Ok [ "jt"; n ] -> (
      match int_of_string_opt n with
      | Some n ->
          Dmi.truncate_journal_to t.dmi n;
          Ok ()
      | None -> Error (Printf.sprintf "bad journal truncation seq %S" n))
  | Ok (tag :: _) -> Error (Printf.sprintf "unknown record tag %S" tag)
  | Ok [] -> Error "empty record"

type wal_recovery = {
  replayed : int;
  truncated_bytes : int;
  reset_log : bool;
  from_snapshot : bool;
}

type offline_restore = { restored : int; skipped : int }

(* Rebuild an application from a WAL dump without opening the log:
   no truncation, no generation reset, no hooks — the returned app is
   Whole_file and the files on disk are untouched. Records that fail
   to apply are skipped rather than fatal (Si_lint reports them as
   stream inconsistencies); a stale log's records are all skipped,
   mirroring what recovery would discard. *)
let restore_offline ?store ?resilient ?wrap desktop (d : Log.dump) =
  let app_result =
    match d.Log.dump_snapshot with
    | None -> Ok (create ?store ?resilient ?wrap desktop)
    | Some payload -> app_of_snapshot ?store ?resilient ?wrap desktop payload
  in
  match app_result with
  | Error _ as e -> e
  | Ok app ->
      let stats =
        if d.Log.dump_stale_log then
          { restored = 0; skipped = List.length d.Log.dump_records }
        else
          List.fold_left
            (fun stats (r : Log.dump_record) ->
              match apply_record app r.Log.dump_payload with
              | Ok () -> { stats with restored = stats.restored + 1 }
              | Error _ -> { stats with skipped = stats.skipped + 1 })
            { restored = 0; skipped = 0 }
            d.Log.dump_records
      in
      Ok (app, stats)

let open_wal ?store ?resilient ?wrap ?policy ?on_warning desktop path =
  match Log.open_ ?policy path with
  | Error e -> Error (Log.error_to_string e)
  | Ok (log, recovery) -> (
      let closing e =
        ignore (Log.close log);
        Error e
      in
      let app_result =
        match recovery.Log.snapshot with
        | None -> Ok (create ?store ?resilient ?wrap desktop)
        | Some payload ->
            app_of_snapshot ?store ?resilient ?wrap desktop payload
      in
      match app_result with
      | Error e -> closing e
      | Ok app -> (
          (* Replay the tail before installing hooks: recovered records
             must not be re-appended. *)
          let rec replay i = function
            | [] -> Ok i
            | payload :: rest -> (
                match apply_record app payload with
                | Ok () -> replay (i + 1) rest
                | Error e -> Error (Printf.sprintf "wal: record %d: %s" i e))
          in
          match replay 0 recovery.Log.records with
          | Error e -> closing e
          | Ok replayed ->
              app.rep_recovered <-
                Option.bind recovery.Log.snapshot rep_meta_of_payload;
              install_hooks app { log; trouble = None; suppress = false };
              Si_obs.Counter.add wal_replayed_count replayed;
              (* Recovery anomalies are counted always and reported only
                 through the caller's channel — the library itself never
                 writes to stderr. *)
              let warn msg =
                Si_obs.Counter.incr recovery_warning_count;
                match on_warning with Some f -> f msg | None -> ()
              in
              if recovery.Log.truncated_bytes > 0 then
                warn
                  (Printf.sprintf
                     "wal: dropped a torn tail of %d byte(s); store \
                      recovered to the last complete record"
                     recovery.Log.truncated_bytes);
              if recovery.Log.reset_log then
                warn
                  "wal: discarded a log superseded by its snapshot \
                   (interrupted compaction)";
              Ok
                ( app,
                  {
                    replayed;
                    truncated_bytes = recovery.Log.truncated_bytes;
                    reset_log = recovery.Log.reset_log;
                    from_snapshot = recovery.Log.snapshot <> None;
                  } )))

(* The replication stream position to persist right now: a live shipper
   or replica knows it exactly; otherwise it is the recovered basis plus
   every record appended since that snapshot (each consumed one stream
   slot while shipping was active — and reserving slots for records
   appended while it was not keeps resumed numbering strictly ahead of
   anything ever acknowledged). *)
let rep_meta t =
  match t.shipper with
  | Some sh -> Some (Si_wal.Ship.term sh, Si_wal.Ship.seq sh)
  | None -> (
      match t.replica with
      | Some r -> Some (Si_wal.Replica.term r, Si_wal.Replica.applied r)
      | None -> (
          match (t.rep_recovered, t.wal) with
          | Some (term, seq), Some st ->
              Some (term, seq + Log.record_count st.log)
          | (Some _ | None), _ -> t.rep_recovered))

let snapshot_payload ?meta t =
  let meta = match meta with Some _ as m -> m | None -> rep_meta t in
  Si_obs.Counter.incr snapshot_binary_count;
  if Si_obs.Span.on () then
    Si_obs.Span.timed snapshot_binary_latency ~layer:"wal"
      ~op:"snapshot.binary" (fun () -> snapshot_with_meta t meta)
  else snapshot_with_meta t meta

let enable_wal ?policy t path =
  match t.wal with
  | Some _ -> Error "pad is already in journaled mode"
  | None ->
      if Sys.file_exists path || Sys.file_exists (Log.snapshot_path path) then
        Error (Printf.sprintf "a write-ahead log already exists at %s" path)
      else (
        match Log.open_ ?policy path with
        | Error e -> Error (Log.error_to_string e)
        | Ok (log, _) -> (
            match Log.cut_snapshot log (snapshot_payload t) with
            | Error e ->
                ignore (Log.close log);
                Error (Log.error_to_string e)
            | Ok () ->
                install_hooks t { log; trouble = None; suppress = false };
                Ok ()))

let wal_state_result t =
  match t.wal with
  | None -> Error "pad is not in journaled mode"
  | Some st -> (
      match st.trouble with
      | Some e ->
          st.trouble <- None;
          Error e
      | None -> Ok st)

let lift = Result.map_error Log.error_to_string

let wal_sync t =
  Result.bind (wal_state_result t) (fun st -> lift (Log.sync st.log))

let wal_compact t =
  Result.bind (wal_state_result t) (fun st ->
      (* Compute the stream position before the cut: compaction resets
         [record_count], which [rep_meta] folds into its answer. *)
      let meta = rep_meta t in
      Result.map
        (fun () -> if meta <> None then t.rep_recovered <- meta)
        (lift (Log.cut_snapshot st.log (snapshot_payload ?meta t))))

let async_wakeup_capacity = 1024

let async_notify a () =
  Si_check.Lock.lock a.a_mutex;
  if a.a_pending < async_wakeup_capacity then begin
    a.a_pending <- a.a_pending + 1;
    Condition.signal a.a_cond
  end;
  Si_check.Lock.unlock a.a_mutex

let ship_round t sh =
  (* Sync first: a record is pushed only once it would survive our own
     crash, so an acknowledged write can never exist solely on a
     follower that learned it from a leader who forgot it. *)
  Result.bind (wal_sync t) (fun () -> Si_wal.Ship.ship sh)

let locked_round a f = Si_check.Lock.with_lock a.a_round f

let async_loop t a sh =
  let rec go () =
    Si_check.Lock.lock a.a_mutex;
    while a.a_pending = 0 && not a.a_stop do
      Si_check.Lock.wait a.a_cond a.a_mutex
    done;
    let stop = a.a_stop in
    a.a_pending <- 0;
    Si_check.Lock.unlock a.a_mutex;
    (* On stop this is the final drain: records teed before the flag
       was raised still ship before the domain exits. Errors surface
       through [wal_state] trouble, like hook-driven append failures. *)
    (match (locked_round a (fun () -> ship_round t sh), t.wal) with
    | Error e, Some st -> if st.trouble = None then st.trouble <- Some e
    | _ -> ());
    if not stop then go ()
  in
  go ()

let stop_async_shipping t sh =
  match t.ship_async with
  | None -> ()
  | Some a ->
      Si_wal.Ship.set_notify sh None;
      Si_check.Lock.lock a.a_mutex;
      a.a_stop <- true;
      Condition.signal a.a_cond;
      Si_check.Lock.unlock a.a_mutex;
      (match a.a_domain with Some d -> Domain.join d | None -> ());
      t.ship_async <- None

let stop_shipping t =
  match t.shipper with
  | None -> Error "pad is not shipping"
  | Some sh ->
      stop_async_shipping t sh;
      let sealed = Si_wal.Ship.checkpoint sh in
      t.rep_recovered <- Some (Si_wal.Ship.term sh, Si_wal.Ship.seq sh);
      Si_wal.Ship.close sh;
      t.shipper <- None;
      sealed

let wal_close t =
  if t.shipper <> None then ignore (stop_shipping t);
  t.replica <- None;
  match wal_state_result t with
  | Error _ as e ->
      (match t.wal with
      | Some st ->
          ignore (Log.close st.log);
          t.wal <- None
      | None -> ());
      e
  | Ok st ->
      t.wal <- None;
      lift (Log.close st.log)

(* ---------------------------------------------------------- replication *)

let shipper t = t.shipper
let replica t = t.replica
let snapshot_bytes t = binary_snapshot t
let of_snapshot_bytes = app_of_snapshot
let snapshot_meta = rep_meta_of_payload

let start_shipping ?segment_records ?term ?(async = false) t ~archive =
  match wal_state_result t with
  | Error _ as e -> e
  | Ok st -> (
      if t.shipper <> None then Error "pad is already shipping"
      else
        let rollback sh e =
          Si_wal.Ship.close sh;
          t.shipper <- None;
          Error e
        in
        (* Followers only ever see what is locally durable. *)
        match lift (Log.sync st.log) with
        | Error _ as e -> e
        | Ok () -> (
            let meta = rep_meta t in
            let term =
              match (term, meta) with
              | Some _, _ -> term
              | None, Some (tm, _) -> Some tm
              | None, None -> None
            in
            (* Resume numbering past everything this pad ever assigned;
               a first-time leader starts its base at 1 so followers
               (whose empty state is sequence 0) always install it. *)
            let seq = match meta with Some (_, s) -> max 1 s | None -> 1 in
            match
              Si_wal.Ship.create ?segment_records ?term ~seq ~archive st.log
            with
            | Error _ as e -> e
            | Ok sh -> (
                t.shipper <- Some sh;
                (* Persist the adopted (term, seq) atomically with the
                   state, then cut the archive base that catch-up and
                   point-in-time restores start from. *)
                match wal_compact t with
                | Error e -> rollback sh e
                | Ok () -> (
                    match Si_wal.Ship.write_base sh (binary_snapshot t) with
                    | Error e -> rollback sh e
                    | Ok () ->
                        if async then begin
                          let a =
                            {
                              a_mutex =
                                Si_check.Lock.create
                                  ~class_:"slimpad.ship.wake";
                              a_cond = Condition.create ();
                              a_pending = 0;
                              a_stop = false;
                              a_round =
                                Si_check.Lock.create
                                  ~class_:"slimpad.ship.round";
                              a_domain = None;
                            }
                          in
                          t.ship_async <- Some a;
                          Si_wal.Ship.set_notify sh (Some (async_notify a));
                          a.a_domain <-
                            Some (Domain.spawn (fun () -> async_loop t a sh))
                        end;
                        Ok ()))))

let with_shipper t f =
  match t.shipper with
  | None -> Error "pad is not shipping"
  | Some sh -> f sh

let ship t =
  with_shipper t (fun sh ->
      match t.ship_async with
      | None -> ship_round t sh
      | Some a ->
          (* Explicit rounds still work in async mode — e.g. "ship now,
             then read the lag" — serialized against the domain's. *)
          locked_round a (fun () -> ship_round t sh))

let shipping_async t = t.ship_async <> None

let ship_heartbeat t = with_shipper t Si_wal.Ship.heartbeat

let ship_checkpoint t =
  (* Seal, then cut a fresh base: a checkpoint is a complete restore
     point, and the new base also lets follower catch-up jump over any
     older archive file that has since been damaged. *)
  with_shipper t (fun sh ->
      Result.bind (Si_wal.Ship.checkpoint sh) (fun () ->
          Si_wal.Ship.write_base sh (binary_snapshot t)))

let attach_follower t ~name send =
  with_shipper t (fun sh -> Si_wal.Ship.attach sh ~name send)

let detach_follower t name =
  match t.shipper with None -> () | Some sh -> Si_wal.Ship.detach sh name

let open_replica ?store ?resilient ?wrap ?max_pending ?on_warning ?bootstrap
    desktop path =
  (* Immediate sync: the replica acknowledges a record only after its
     local log flushed it, so an Ack means "durable here". *)
  match
    open_wal ?store ?resilient ?wrap ~policy:Log.Immediate ?on_warning
      desktop path
  with
  | Error _ as e -> e
  | Ok (app, recovery) -> (
      let st =
        match app.wal with Some st -> st | None -> assert false
      in
      let has_history =
        recovery.from_snapshot || recovery.replayed > 0
      in
      match app.rep_recovered with
      | None when has_history ->
          ignore (wal_close app);
          Error
            (Printf.sprintf
               "wal at %s carries no replication metadata: it belongs to \
                a standalone journaled pad, not a replica"
               path)
      | _ -> (
          st.suppress <- true;
          (* Bundle bootstrap: seed a {e fresh} replica from a snapshot
             payload (a capture bundle is one — the container format is
             shared), installing its state and stream watermark exactly
             as a leader-pushed base would. The leader then ships only
             records past the bundle's [(term, seq)], so a follower can
             come up from a shipped file instead of a full catch-up. A
             replica that already has history keeps it: bootstrapping
             over an existing prefix would silently fork the stream. *)
          let boot =
            match bootstrap with
            | None -> Ok ()
            | Some _ when has_history ->
                Error
                  (Printf.sprintf
                     "replica at %s already has history; refusing to \
                      bootstrap over it"
                     path)
            | Some payload -> (
                match
                  app_of_snapshot ?store ?resilient ?wrap desktop payload
                with
                | Error e -> Error ("bootstrap: " ^ e)
                | Ok fresh ->
                    app.dmi <- fresh.dmi;
                    app.marks <- fresh.marks;
                    install_hooks app st;
                    let term, seq =
                      Option.value
                        (rep_meta_of_payload payload)
                        ~default:(0, 0)
                    in
                    Result.map
                      (fun () -> app.rep_recovered <- Some (term, seq))
                      (lift
                         (Log.cut_snapshot st.log
                            (snapshot_with_meta app (Some (term, seq))))))
          in
          match boot with
          | Error e ->
              ignore (wal_close app);
              Error e
          | Ok () ->
          let term, applied =
            match app.rep_recovered with
            | Some (tm, s) -> (tm, s + Log.record_count st.log)
            | None -> (0, 0)
          in
          let apply payload =
            (* Hook appends are suppressed: the shipped payload itself
               is appended verbatim, keeping the local log a 1:1 mirror
               of the leader's stream (which is what makes
               [meta seq + record_count] the exact resume point). *)
            match apply_record app payload with
            | Error _ as e -> e
            | Ok () -> lift (Log.append st.log payload)
          in
          let install ~term ~seq payload =
            match app_of_snapshot ?store ?resilient ?wrap desktop payload with
            | Error _ as e -> e
            | Ok fresh ->
                app.dmi <- fresh.dmi;
                app.marks <- fresh.marks;
                (* Rewire the hooks onto the installed state (still
                   suppressed) and persist it with the base's exact
                   stream position. *)
                install_hooks app st;
                lift
                  (Log.cut_snapshot st.log
                     (snapshot_with_meta app (Some (term, seq))))
          in
          let on_term _ = ignore (wal_compact app) in
          let r =
            Si_wal.Replica.create ?max_pending ~term ~applied ~on_term
              ~apply ~install ()
          in
          app.replica <- Some r;
          Ok (app, recovery)))

let promote_replica ?segment_records t ~archive =
  match (t.replica, wal_state_result t) with
  | None, _ -> Error "pad is not a replica"
  | Some _, Error e -> Error e
  | Some r, Ok st ->
      (* Bump past every leader this replica has seen ([on_term]
         persists the new term), then lead: local mutations journal
         again and the shipper starts at our applied prefix. *)
      let term = Si_wal.Replica.promote r in
      st.suppress <- false;
      Result.map
        (fun () -> term)
        (start_shipping ?segment_records ~term t ~archive)

let restore_at ?store ?resilient ?wrap desktop ~archive ~at =
  match Si_wal.Segment.index archive with
  | Error _ as e -> e
  | Ok idx -> (
      match Si_wal.Segment.restore_plan idx ~at with
      | Error _ as e -> e
      | Ok (base, entries) -> (
          match Si_wal.Segment.read_base ~dir:archive base with
          | Error _ as e -> e
          | Ok payload -> (
              match app_of_snapshot ?store ?resilient ?wrap desktop payload with
              | Error _ as e -> e
              | Ok app ->
                  let restored = ref base.Si_wal.Segment.base_seq in
                  let err = ref None in
                  List.iter
                    (fun entry ->
                      if !err = None && !restored < at then
                        match Si_wal.Segment.read ~dir:archive entry with
                        | Error e -> err := Some e
                        | Ok payloads ->
                            List.iteri
                              (fun i p ->
                                let s = entry.Si_wal.Segment.seg_first + i in
                                if !err = None && s > !restored && s <= at
                                then
                                  match apply_record app p with
                                  | Ok () -> restored := s
                                  | Error e ->
                                      err :=
                                        Some
                                          (Printf.sprintf
                                             "archive record %d: %s" s e))
                              payloads)
                    entries;
                  match !err with
                  | Some e -> Error e
                  | None -> Ok (app, !restored))))

let import_pad t ~from_file ?pad_name ?rename () =
  (* Load the foreign store with a desktop-less manager: imported marks
     are copied by value, never resolved here. *)
  match load (Desktop.create ()) from_file with
  | Error msg -> Error msg
  | Ok other -> (
      let src = other.dmi in
      let pad =
        match pad_name with
        | Some name -> Dmi.find_pad src name
        | None -> (
            match Dmi.pads src with p :: _ -> Some p | [] -> None)
      in
      match pad with
      | None ->
          Error
            (match pad_name with
            | Some n -> Printf.sprintf "no pad named %S in %s" n from_file
            | None -> Printf.sprintf "no pads in %s" from_file)
      | Some src_pad ->
          (* Copy a mark into this manager under a fresh id; remember the
             mapping so scraps repoint correctly. *)
          let mark_map = Hashtbl.create 16 in
          let import_mark old_id =
            match Hashtbl.find_opt mark_map old_id with
            | Some fresh -> fresh
            | None -> (
                match Manager.mark other.marks old_id with
                | None ->
                    (* Dangling in the source; keep the dangling id. *)
                    old_id
                | Some m ->
                    let fresh =
                      match
                        Manager.create_mark t.marks
                          ~mark_type:m.Mark.mark_type ~fields:m.Mark.fields
                          ~excerpt:m.Mark.excerpt ()
                      with
                      | Ok created -> created.Mark.mark_id
                      | Error _ ->
                          (* Type unsupported here or fields now invalid:
                             keep the mark verbatim under a fresh id. *)
                          let rec fresh_id n =
                            let candidate =
                              Printf.sprintf "imported-%s-%d" old_id n
                            in
                            if Manager.mark t.marks candidate = None then
                              candidate
                            else fresh_id (n + 1)
                          in
                          let id = fresh_id 0 in
                          (match
                             Manager.add_mark t.marks { m with Mark.mark_id = id }
                           with
                          | Ok () -> ()
                          | Error _ -> ());
                          id
                    in
                    Hashtbl.add mark_map old_id fresh;
                    fresh)
          in
          (* Recursive structural copy; scrap_map feeds link rewiring. *)
          let scrap_map = Hashtbl.create 32 in
          let rec copy_bundle src_bundle ~parent =
            let copy =
              Dmi.create_bundle t.dmi
                ~name:(Dmi.bundle_name src src_bundle)
                ?pos:(Dmi.bundle_pos src src_bundle)
                ?width:(Option.map fst (Dmi.bundle_size src src_bundle))
                ?height:(Option.map snd (Dmi.bundle_size src src_bundle))
                ~parent ()
            in
            if Dmi.is_template src src_bundle then
              Dmi.set_template t.dmi copy true;
            List.iter
              (fun s ->
                let copied =
                  Dmi.create_scrap t.dmi ~name:(Dmi.scrap_name src s)
                    ?pos:(Dmi.scrap_pos src s)
                    ~mark_id:(import_mark (Dmi.scrap_mark_id src s))
                    ~parent:copy ()
                in
                Hashtbl.add scrap_map (Dmi.scrap_id s) copied;
                List.iter
                  (Dmi.annotate_scrap t.dmi copied)
                  (Dmi.annotations src s))
              (Dmi.scraps src src_bundle);
            List.iter
              (fun d ->
                ignore
                  (Dmi.add_decoration t.dmi copy
                     ~kind:(Dmi.decoration_kind src d)
                     ?pos:(Dmi.decoration_pos src d) ()))
              (Dmi.decorations src src_bundle);
            List.iter
              (fun nested -> ignore (copy_bundle nested ~parent:copy))
              (Dmi.nested_bundles src src_bundle);
            copy
          in
          let new_name =
            match rename with
            | Some n -> n
            | None -> Dmi.pad_name src src_pad ^ " (imported)"
          in
          let new_pad = Dmi.create_slimpad t.dmi ~pad_name:new_name in
          let new_root = Dmi.root_bundle t.dmi new_pad in
          let src_root = Dmi.root_bundle src src_pad in
          List.iter
            (fun s ->
              let copied =
                Dmi.create_scrap t.dmi ~name:(Dmi.scrap_name src s)
                  ?pos:(Dmi.scrap_pos src s)
                  ~mark_id:(import_mark (Dmi.scrap_mark_id src s))
                  ~parent:new_root ()
              in
              Hashtbl.add scrap_map (Dmi.scrap_id s) copied;
              List.iter (Dmi.annotate_scrap t.dmi copied)
                (Dmi.annotations src s))
            (Dmi.scraps src src_root);
          List.iter
            (fun d ->
              ignore
                (Dmi.add_decoration t.dmi new_root
                   ~kind:(Dmi.decoration_kind src d)
                   ?pos:(Dmi.decoration_pos src d) ()))
            (Dmi.decorations src src_root);
          List.iter
            (fun nested -> ignore (copy_bundle nested ~parent:new_root))
            (Dmi.nested_bundles src src_root);
          (* Links whose both ends were imported come along. *)
          List.iter
            (fun l ->
              match Dmi.link_ends src l with
              | Some (a, b) -> (
                  match
                    ( Hashtbl.find_opt scrap_map (Dmi.scrap_id a),
                      Hashtbl.find_opt scrap_map (Dmi.scrap_id b) )
                  with
                  | Some a', Some b' ->
                      ignore
                        (Dmi.link_scraps t.dmi
                           ?label:(Dmi.link_label src l)
                           ~from_:a' ~to_:b' ())
                  | _ -> ())
              | None -> ())
            (Dmi.links src);
          Ok new_pad)

(* -------------------------------------------------------- observability *)

let stats () = Si_obs.Registry.snapshot ()
let stats_text () = Si_obs.Report.to_text (stats ())

let stats_json () =
  Si_obs.Json.to_string ~pretty:true (Si_obs.Report.to_json (stats ()))

let reset_stats () = Si_obs.Registry.reset ()

let with_tracing f =
  Si_obs.Span.enable ();
  match f () with
  | v ->
      Si_obs.Span.disable ();
      (v, Si_obs.Span.drain ())
  | exception e ->
      Si_obs.Span.disable ();
      ignore (Si_obs.Span.drain ());
      raise e
