(** The SLIMPad application (paper §3, Fig 4).

    Binds the three architecture components together: the SLIM store
    (through the Bundle-Scrap {!Si_slim.Dmi}), the {!Si_mark.Manager}, and
    the {!Si_mark.Desktop} of base applications. Operations correspond to
    user gestures: create a pad, drop a selection onto it as a scrap
    ("creating a digital sticky-note, which comes with a digital wire"),
    double-click a scrap to re-establish its context, annotate, link,
    rearrange.

    The pad renders as text — this build's stand-in for the Fig 4 window;
    layout positions are preserved and shown, but not rasterized. *)

type t

val create :
  ?store:(module Si_triple.Store.S) ->
  ?resilient:Si_mark.Resilient.t ->
  ?wrap:Si_mark.Desktop.opener_wrap ->
  Si_mark.Desktop.t -> t
(** A fresh application over the given desktop: new SLIM store, new mark
    manager with the desktop's seven mark modules installed. [resilient]
    supplies the breaker/retry policy guarding base-source access
    (default {!Si_mark.Resilient.create}[ ()]); [wrap] interposes on
    every document opener — fault injection plugs in here. *)

val dmi : t -> Si_slim.Dmi.t
val marks : t -> Si_mark.Manager.t
val desktop : t -> Si_mark.Desktop.t
val resilient : t -> Si_mark.Resilient.t

(** {1 Pads, bundles, scraps} *)

val new_pad : t -> string -> Si_slim.Dmi.pad

val add_bundle :
  t -> parent:Si_slim.Dmi.bundle -> name:string ->
  ?pos:Si_slim.Dmi.coordinate -> unit -> Si_slim.Dmi.bundle

val add_scrap :
  t -> parent:Si_slim.Dmi.bundle -> name:string -> mark_type:string ->
  fields:(string * string) list -> ?pos:Si_slim.Dmi.coordinate -> unit ->
  (Si_slim.Dmi.scrap, string) result
(** Creates the mark with the Mark Manager (validating the address and
    caching the excerpt), then the scrap holding its MarkHandle. The
    scrap's label defaults to the mark's excerpt when [name] is [""] —
    "a scrap's label and its mark's content may differ" but start equal. *)

val scrap_mark : t -> Si_slim.Dmi.scrap -> Si_mark.Mark.t option

(** {1 Resolution gestures (Fig 4, Fig 6)} *)

val double_click : t -> Si_slim.Dmi.scrap -> (Si_mark.Mark.resolution, string) result
(** "By clicking on the scrap, the mark is de-referenced and the original
    information source … is displayed with the appropriate
    [element] highlighted." *)

val scrap_content : t -> Si_slim.Dmi.scrap -> (string, string) result
(** The §6 "extract content" behaviour. *)

val scrap_in_place : t -> Si_slim.Dmi.scrap -> (string, string) result
(** The §6 "display in place" behaviour (independent viewing). *)

val resolve_scrap :
  t -> Si_slim.Dmi.scrap ->
  (Si_mark.Resilient.outcome, Si_mark.Manager.resolve_error) result
(** The managed resolution path: breaker-guarded and retried, degrading
    to the mark's cached excerpt ({!Si_mark.Resilient.Degraded}) when the
    base source stays away. [Error] is reserved for marks that cannot be
    attempted at all (unknown id, no module for the type). *)

(** {1 Consistency with the base layer} *)

val drift_report :
  t -> Si_slim.Dmi.pad -> (Si_slim.Dmi.scrap * Si_mark.Manager.drift) list
(** Every scrap of the pad whose base element changed or vanished
    (unchanged scraps are omitted). *)

val refresh_pad : t -> Si_slim.Dmi.pad -> int
(** Re-caches excerpts for all resolvable marks of the pad; returns how
    many were stale. Degraded and quarantined scraps keep their cached
    excerpt — a base-source outage never erases good data. *)

type pad_health = {
  fresh : int;  (** resolved against the live base source *)
  degraded : int;  (** served from the cached excerpt *)
  quarantined : int;  (** unresolvable across a whole probe window *)
  dangling : int;  (** scrap points at no stored mark *)
}

val pad_health : t -> Si_slim.Dmi.pad -> pad_health
(** One resolution sweep over the pad, bucketed by outcome. *)

val health : t -> Si_mark.Resilient.breaker_info list
(** Per-base-source circuit-breaker state, sorted by source. *)

(** {1 Search & query} *)

val find_scraps : t -> Si_slim.Dmi.pad -> string -> Si_slim.Dmi.scrap list
(** Scraps of the pad whose label contains the needle. *)

val query : t -> string -> (string list, string) result
(** Run a {!Si_query.Query} text query against the SLIM store; returns
    rendered bindings. *)

(** {1 Rendering} *)

val render_pad : t -> Si_slim.Dmi.pad -> string
(** Tree rendering: bundles and scraps with positions, mark sources,
    annotations, then the pad's links. *)

val render_scrap_line : t -> Si_slim.Dmi.scrap -> string

val render_pad_html : t -> Si_slim.Dmi.pad -> string
(** A self-contained HTML page of the pad with bundles and scraps
    absolutely positioned at their stored 2-D coordinates — the closest
    this build gets to the Fig 4 window. Scraps carry their mark source
    and current excerpt as hover titles; annotations render as side
    notes. *)

(** {1 Persistence}

    One XML file holds both the superimposed information (triples) and the
    marks, so a pad reloads whole. *)

val save : t -> string -> (unit, string) result
(** Crash-safe: written via a temp file renamed into place
    ({!Si_xmlk.Print.to_file_atomic}); a crash mid-write never leaves a
    torn store file behind. *)

val load :
  ?store:(module Si_triple.Store.S) ->
  ?resilient:Si_mark.Resilient.t ->
  ?wrap:Si_mark.Desktop.opener_wrap ->
  Si_mark.Desktop.t -> string -> (t, string) result

(** {1 Sharing}

    §2: "sharing bundles to establish collectively maintained, situated
    awareness". Importing copies a pad from another store file into this
    application: bundles, scraps, annotations, links, decorations, and the
    marks they reference all get fresh ids here, so repeated imports and
    id collisions are impossible. The source file is not modified. *)

val import_pad :
  t -> from_file:string -> ?pad_name:string -> ?rename:string -> unit ->
  (Si_slim.Dmi.pad, string) result
(** [pad_name] selects which pad of the file to import (default: its
    first); [rename] names the copy (default: "<original> (imported)").
    Marks whose types this desktop does not support still import (they
    fail only on resolution, like any unsupported mark). *)

(** {1 Journaled persistence (write-ahead log)}

    The incremental alternative to {!save}: every mutation — triple
    operations, mark changes, journal events — is appended to a
    {!Si_wal.Log} as it happens, so persisting is O(changes), not
    O(pad size). One log interleaves the three record streams in the
    shared {!Si_wal.Record.encode_fields} codec (triple ops use the
    {!Si_triple.Durable} tags, marks {!Si_mark.Mark.record_tag}, journal
    events {!Si_slim.Dmi.journal_record_tag}); the snapshot payload is
    the same [<slimpad-store>] document {!save} writes, so the two
    persistence formats share both codecs end to end. *)

type persistence = Whole_file | Journaled

val persistence : t -> persistence
(** Which path {e this} application persists through. [create] and
    [load] give [Whole_file]; [open_wal] and [enable_wal] switch to
    [Journaled]. *)

type wal_recovery = {
  replayed : int;  (** Tail records applied on top of the snapshot. *)
  truncated_bytes : int;  (** Torn-tail bytes dropped during recovery. *)
  reset_log : bool;
      (** A log made stale by an interrupted compaction was discarded. *)
  from_snapshot : bool;
}

val open_wal :
  ?store:(module Si_triple.Store.S) ->
  ?resilient:Si_mark.Resilient.t ->
  ?wrap:Si_mark.Desktop.opener_wrap ->
  ?policy:Si_wal.Log.sync_policy ->
  ?on_warning:(string -> unit) ->
  Si_mark.Desktop.t -> string -> (t * wal_recovery, string) result
(** Open (creating if absent) a journaled pad at the given WAL path:
    recover [snapshot + tail], then journal every further mutation.
    Mid-log corruption or an undecodable record is a hard error — never
    a silent partial replay.

    Recovery anomalies that are survivable (a torn tail dropped, a log
    superseded by its snapshot) are reported through [on_warning] — the
    library never writes to stderr itself — and always counted in the
    ["slimpad.recovery_warning"] {!Si_obs} counter, so they stay visible
    even when no callback is installed. *)

type offline_restore = {
  restored : int;  (** Dump records applied on top of the snapshot. *)
  skipped : int;
      (** Records that failed to apply, or — for a stale log — every
          record, since recovery would discard them all. *)
}

val restore_offline :
  ?store:(module Si_triple.Store.S) ->
  ?resilient:Si_mark.Resilient.t ->
  ?wrap:Si_mark.Desktop.opener_wrap ->
  Si_mark.Desktop.t ->
  Si_wal.Log.dump -> (t * offline_restore, string) result
(** Rebuild an application from {!Si_wal.Log.dump} without opening the
    log: the files on disk are untouched (no torn-tail truncation, no
    generation reset), no hooks are installed, and the result persists
    as [Whole_file]. Unlike {!open_wal}, a record that fails to apply
    is skipped, not fatal — static analysis ({!Si_lint}) wants the best
    reconstructable state plus the damage reported separately. Fails
    only when the snapshot payload itself cannot be parsed. *)

val enable_wal : ?policy:Si_wal.Log.sync_policy -> t -> string -> (unit, string) result
(** Convert a whole-file application to journaled persistence: cut a
    snapshot of the current state at the given WAL path and start
    journaling. Fails if a log already exists there. *)

val wal_sync : t -> (unit, string) result
(** Flush batched records; on success everything acknowledged so far
    survives a process crash. Also surfaces any append error since the
    last call (appends happen inside observer hooks and cannot return
    one directly). *)

val wal_compact : t -> (unit, string) result
(** Cut a fresh snapshot and truncate the log. Idempotent with respect
    to the recovered state. *)

val wal_close : t -> (unit, string) result
(** Flush and close the log; the application reverts to [Whole_file]. *)

val wal : t -> Si_wal.Log.t option

(** {1 Replication}

    WAL shipping: a journaled pad can lead ({!start_shipping}) —
    numbering every accepted record into a replication stream, sealing
    them into an archive of segments ({!Si_wal.Segment}), and pushing
    them to attached followers — or follow ({!open_replica}), applying
    the leader's records through the same journaled facade, one local
    record per shipped record, so an Ack always means "durable on this
    replica".

    The stream position [(term, seq)] is persisted as one more section
    inside the WAL's binary snapshot, exactly as atomic as compaction:
    after a restart the pad resumes numbering at [seq + records since
    the snapshot] and never reuses a sequence number it ever assigned.
    Failover is {!promote_replica}: bump the term past every leader
    this replica has seen and start shipping from its applied prefix —
    the deposed leader is answered [Fenced] from then on. Retained
    archive files enable point-in-time recovery ({!restore_at}). *)

val start_shipping :
  ?segment_records:int ->
  ?term:int ->
  ?async:bool ->
  t -> archive:string -> (unit, string) result
(** Start leading: sync the local log, resume the stream position from
    persisted metadata (falling back to the archive), persist it, and
    cut a base snapshot into [archive] for follower catch-up and
    restores. [segment_records] is the archive seal threshold
    ({!Si_wal.Ship.create}). Requires journaled mode.

    [async] (default [false]) moves pushing off the writer: each teed
    record bumps a bounded wake-up counter and a dedicated background
    domain runs the sync-then-push rounds, so appends never wait on
    follower I/O. Ack semantics are unchanged — a round still syncs
    the local log before pushing — and the ["wal.ship.lag"] gauge is
    still refreshed every round. Round errors surface as WAL trouble
    on the next journaled operation. {!stop_shipping} drains and joins
    the domain. *)

val ship : t -> (unit, string) result
(** Sync the local log, then push records until every follower is
    caught up or its retry budget is spent. [Error] when fenced by a
    newer leader (or not shipping). In async mode this forces an
    immediate round, serialized with the background domain's. *)

val shipping_async : t -> bool
(** Whether a background shipping domain is running. *)

val ship_heartbeat : t -> (unit, string) result
(** Refresh follower staleness bounds and discover fencing without
    shipping records. *)

val ship_checkpoint : t -> (unit, string) result
(** Seal the open segment buffer and cut a fresh base snapshot — a
    complete archive restore point; follower catch-up can jump to it
    past any older archive file that has since been damaged. *)

val attach_follower :
  t -> name:string -> Si_wal.Ship.transport -> (unit, string) result

val detach_follower : t -> string -> unit

val stop_shipping : t -> (unit, string) result
(** Seal the open buffer, record the final stream position, and remove
    the log tee. The archive stays. *)

val shipper : t -> Si_wal.Ship.t option

val open_replica :
  ?store:(module Si_triple.Store.S) ->
  ?resilient:Si_mark.Resilient.t ->
  ?wrap:Si_mark.Desktop.opener_wrap ->
  ?max_pending:int ->
  ?on_warning:(string -> unit) ->
  ?bootstrap:string ->
  Si_mark.Desktop.t -> string -> (t * wal_recovery, string) result
(** Open (creating or resuming) a follower pad journaled at the given
    WAL path — always [Immediate] sync, so acknowledging a record means
    it is durable here. Serve its {!Si_wal.Replica} (see {!replica})
    through any transport; reads go through the ordinary accessors,
    gated by {!Si_wal.Replica.fresh_enough} for bounded staleness. The
    pad must not be mutated directly while following (hook-driven
    journaling is suspended); an existing WAL without replication
    metadata is refused.

    [bootstrap] seeds a {e fresh} replica from a snapshot payload — any
    {!Si_wal.Binary} snapshot container, which a capture bundle
    ([Si_bundle]) is — installing its state and its replication
    [(term, seq)] watermark exactly as a leader-pushed base snapshot
    would, so a follower comes up from a shipped file and the leader's
    catch-up starts past the bundle's watermark. A payload without a
    replication section bootstraps at [(0, 0)]. Refused when the
    replica already has history: bootstrapping over an existing prefix
    would fork the stream. *)

val replica : t -> Si_wal.Replica.t option

val promote_replica :
  ?segment_records:int -> t -> archive:string -> (int, string) result
(** Failover: bump the term past every leader this replica has seen,
    persist it, re-enable local journaling, and {!start_shipping} into
    [archive] from the applied prefix. Returns the new term; the old
    leader's next frame is answered [Fenced]. *)

val restore_at :
  ?store:(module Si_triple.Store.S) ->
  ?resilient:Si_mark.Resilient.t ->
  ?wrap:Si_mark.Desktop.opener_wrap ->
  Si_mark.Desktop.t ->
  archive:string -> at:int -> (t * int, string) result
(** Point-in-time recovery from a shipping archive: replay the newest
    base at or before [at] plus the sealed segments up to it. Returns
    the rebuilt application ([Whole_file], files untouched) and the
    sequence number actually reached. Errors when the archive cannot
    cover [at] ({!Si_wal.Segment.restore_plan}) or a record fails to
    apply. *)

val snapshot_bytes : t -> string
(** The binary snapshot of the current state ({!Si_wal.Binary}
    container, no replication section) — what {!restore_at} should
    reproduce byte-for-byte at the corresponding cut point. *)

val of_snapshot_bytes :
  ?store:(module Si_triple.Store.S) ->
  ?resilient:Si_mark.Resilient.t ->
  ?wrap:Si_mark.Desktop.opener_wrap ->
  Si_mark.Desktop.t -> string -> (t, string) result
(** Rebuild an application from a snapshot payload — the exact decoder
    recovery and replica installation use, so any {!Si_wal.Binary}
    snapshot container (a WAL snapshot, an archive base, a capture
    bundle) loads; unknown sections are ignored and a pre-binary XML
    [<slimpad-store>] payload still parses. The result is [Whole_file]
    with no hooks installed. *)

val rep_meta : t -> (int * int) option
(** The replication stream position [(term, seq)] to persist right
    now: exact from a live shipper or replica, otherwise the recovered
    basis advanced past every record appended since its snapshot.
    [None] for a pad that never replicated. *)

val snapshot_meta : string -> (int * int) option
(** The replication [(term, seq)] watermark carried by a snapshot
    payload's replication section, if any. *)

(** {1 Observability}

    The whole stack (triple store, query executor, mark manager,
    resilient layer, WAL) is instrumented through {!Si_obs}: counters
    run unconditionally, latency histograms and spans only while
    tracing is enabled. These are thin conveniences over the
    {!Si_obs.Registry} for hosts (the CLI, the TUI) that want the
    numbers without depending on the registry directly. *)

val stats : unit -> Si_obs.Registry.snapshot
(** Current counters and latency histograms across every layer. *)

val stats_text : unit -> string
(** {!stats} rendered as aligned text tables. *)

val stats_json : unit -> string
(** {!stats} rendered as pretty-printed JSON; round-trips through
    {!Si_obs.Report.of_json}. *)

val reset_stats : unit -> unit

val with_tracing : (unit -> 'a) -> 'a * Si_obs.Span.finished list
(** Run the thunk with span tracing enabled, then return its result
    together with the spans it produced (tracing is switched back off
    and the span buffer drained, even on exceptions). *)
