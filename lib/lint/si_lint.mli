(** Si_lint: rule-based static analysis for superimposed stores.

    The paper's schema-later stance (§3, §5) means a SLIM store never
    refuses data: dangling mark handles, orphan scraps, containment
    cycles, and instances that drifted from the models they claim to
    conform to all accumulate silently. This engine audits a store —
    triples, metamodel, bundle-scrap structure, marks, and write-ahead
    log — without loading it through the GUI path, and without opening
    any base document: every rule is static.

    Each rule carries a stable code ([SL001]…); diagnostics point back
    at the offending triple, resource, mark, or WAL byte offset. A few
    defects are mechanically safe to repair ({!fix}): repairs go through
    {!Si_triple.Trim.transaction} so a journaled pad's WAL records them
    like any other mutation.

    {2 Rule catalog}

    Triple / metamodel layer:
    - [SL001] [duplicate-triple] (warning, fixable) — the persisted
      store file carries byte-identical [<t>] elements. In-memory
      stores are sets, so duplicates only arise in files (hand edits,
      bad merges); re-saving drops them.
    - [SL002] [dangling-connector] (error) — a resource typed
      [mm:Connector] whose domain or range does not resolve to a
      construct. {!Si_metamodel.Model.connectors} silently drops such
      connectors, so validation never sees properties under them.
    - [SL003] [generalization-cycle] (error) — a cycle in
      [rdfs:subClassOf] among constructs. Traversals are cycle-safe but
      the hierarchy is meaningless; one diagnostic per cycle.
    - [SL004] [conformance-violation] (warning) — batch
      {!Si_metamodel.Validate.check} over {e every} model in the store;
      one diagnostic per violation.

    Slimpad layer (bundle-scrap structure):
    - [SL101] [dangling-mark-handle] (error) — a MarkHandle whose
      [markId] names no mark in the Manager.
    - [SL102] [unreachable-bundle] (warning) — a bundle no pad's root
      reaches through [nestedBundle].
    - [SL103] [orphan-scrap] (warning) — a scrap no [bundleContent]
      triple references.
    - [SL104] [containment-cycle] (error) — a [nestedBundle] cycle;
      one diagnostic per cycle.
    - [SL105] [orphan-layout-triple] (warning, fixable) — a triple
      under a purely presentational predicate
      ({!Si_slim.Bundle_model.layout_predicates}) whose subject is not
      a typed instance; {!fix} garbage-collects them.

    Mark layer:
    - [SL201] [mark-address-malformed] (error) — a stored mark whose
      address fields fail its module's registered
      {!Si_mark.Manager.address_linter} (parse failure, duplicate or
      unknown fields).
    - [SL202] [mark-type-unsupported] (info) — a mark of a type no
      registered module handles; kept, but unresolvable here.
    - [SL203] [mark-quarantined] (warning) — a mark whose base source
      the {!Si_mark.Resilient} layer currently quarantines.

    WAL layer (offline, never replayed into a live store):
    - [SL301] [wal-corrupt] (error) — CRC failure mid-log, a bad file
      header, a corrupt snapshot, or a log generation ahead of its
      snapshot.
    - [SL302] [wal-torn-tail] (warning) — trailing bytes recovery
      would truncate (a crash mid-append).
    - [SL303] [wal-stale-log] (warning) — snapshot generation ahead of
      the log (interrupted compaction); the log's records are
      superseded.
    - [SL304] [wal-stream-inconsistency] (error) — a record that
      decodes under none of the three stream codecs (triple ops, marks,
      journal events), a journal sequence that is not monotone, or a
      snapshot whose contents do not decode (an XML payload that is not
      a [<slimpad-store>] document; a binary container whose triple
      sections are malformed).
    - [SL305] [wal-binary-snapshot] (error) — binary snapshot container
      damage verified offline from the header in: bad magic or
      unsupported version, truncated section framing, a section CRC
      mismatch, or a container without its atoms/triples sections.
    - [SL306] [wal-archive] (error) — shipping archive damage verified
      offline ({!Si_wal.Segment.verify}): per-file header or CRC
      failures, sequence gaps between segments no base snapshot
      bridges, and replication term regressions.

    Filesystem hygiene:
    - [SL307] [orphan-temp-file] (warning, fixable) — a [".si-tmp"]
      file left by an atomic save interrupted between write and
      rename. Loaders ignore the suffix, so the orphan is harmless but
      permanent; {!fix} deletes it.

    Capture bundles (offline, from the artifact's bytes alone):
    - [SL308] [bundle-malformed] (error) — capture-bundle damage
      verified by [Si_bundle.verify]: container magic/framing/section
      CRCs, a schema version outside the supported range, undecodable
      triple/mark/excerpt/report/base sections, an unsafe base file
      name, or a cached excerpt referring to a mark the bundle does
      not carry. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
(** ["error"] / ["warning"] / ["info"]. *)

type provenance =
  | In_triple of Si_triple.Triple.t  (** The offending triple itself. *)
  | In_resource of string  (** A resource id (instance, construct…). *)
  | In_mark of string  (** A mark id. *)
  | In_wal of { file : string; offset : int option }
      (** The WAL (or its snapshot); [offset] is the byte offset of the
          offending record's frame when known. *)
  | In_file of string  (** A persisted store file. *)

val provenance_to_string : provenance -> string

type diagnostic = {
  code : string;  (** Stable rule code, e.g. ["SL101"]. *)
  rule : string;  (** Rule name, e.g. ["dangling-mark-handle"]. *)
  severity : severity;
  message : string;
  provenance : provenance option;
  fixable : bool;  (** {!fix} can repair this mechanically. *)
}

(** {1 The analysis context}

    Every component is optional: rules that lack their inputs simply
    report nothing, so the same engine lints a live application, a bare
    store file, or an unopenable WAL. *)

type context

val context :
  ?dmi:Si_slim.Dmi.t ->
  ?marks:Si_mark.Manager.t ->
  ?resilient:Si_mark.Resilient.t ->
  ?raw_triples:Si_triple.Triple.t list ->
  ?store_file:string ->
  ?wal_path:string ->
  ?archive:string ->
  ?workspace:string ->
  ?bundle:string ->
  unit ->
  context
(** [dmi] supplies the live store (triple, metamodel, and slimpad
    rules); [marks] the mark manager (mark rules; [resilient] adds the
    quarantine rule); [raw_triples] the persisted file's triple list
    {e with duplicates preserved} ({!Si_triple.Trim.triples_of_xml}) for
    [SL001], with [store_file] naming it for provenance; [wal_path] the
    write-ahead log to verify offline; [archive] the shipping archive
    directory for [SL306]; [workspace] the workspace directory [SL307]
    scans for orphaned temp files (without it, the scan falls back to
    the would-be temps of [store_file] and [wal_path]); [bundle] a
    capture-bundle file [SL308] verifies offline. *)

(** {1 Rules}

    A rule is a named, coded check over the context. The registry comes
    preloaded with the built-in catalog; registering a custom rule makes
    every later {!run} include it. *)

type rule = {
  code : string;  (** Stable, unique, [SL]-prefixed by convention. *)
  rule_name : string;
  rule_severity : severity;  (** Severity its diagnostics carry. *)
  synopsis : string;  (** One line for catalogs and [--help]. *)
  check : context -> diagnostic list;
}

val builtin_rules : rule list
(** The catalog above, in code order. *)

val rules : unit -> rule list
(** The current registry, in code order. *)

val register_rule : rule -> (unit, string) result
(** Add a custom rule; fails on a duplicate code. *)

val find_rule : string -> rule option
(** Look up a registered rule by code. *)

val run : ?rules:rule list -> context -> diagnostic list
(** Run every rule (default: the registry) and return all diagnostics,
    sorted by code then provenance — a stable order for reporters and
    tests. *)

(** {1 Fixing}

    Only mechanically safe repairs: dropping exact duplicates a re-save
    eliminates anyway ([SL001]) and garbage-collecting orphaned layout
    triples ([SL105]). Everything else needs a human. *)

type fix_report = {
  removed_layout_triples : int;
      (** [SL105] triples removed from the live store, inside one
          {!Si_triple.Trim.transaction} — so a journaled pad's WAL
          records the removals. *)
  duplicate_triples : int;
      (** [SL001] duplicates observed in the persisted file. The
          in-memory store never held them; the caller persists the
          dedup by re-saving (whole-file) or compacting (journaled). *)
  removed_temp_files : int;
      (** [SL307] orphaned temp files deleted from disk. *)
}

val fix : context -> diagnostic list -> (fix_report, string) result
(** Apply the safe repairs for the fixable diagnostics in the list.
    Requires [dmi] in the context when [SL105] diagnostics are present;
    non-fixable diagnostics are ignored. *)

(** {1 Reporters} *)

val to_text : diagnostic list -> string
(** One line per diagnostic — [CODE severity rule-name: message
    (provenance)] — then a summary line. Stable across runs. *)

val to_json : diagnostic list -> string
(** A flat JSON array of flat objects (the bench convention): one
    [{"code", "rule", "severity", "message", "provenance", "fixable"}]
    object per diagnostic. *)

val summary : diagnostic list -> string
(** ["N error(s), N warning(s), N info"] — or ["no diagnostics"]. *)

val count : severity -> diagnostic list -> int

val max_severity : diagnostic list -> severity option
(** [None] on an empty list; otherwise the worst severity present. *)
