module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module Durable = Si_triple.Durable
module Model = Si_metamodel.Model
module Validate = Si_metamodel.Validate
module Vocab = Si_metamodel.Vocab
module Mark = Si_mark.Mark
module Manager = Si_mark.Manager
module Resilient = Si_mark.Resilient
module Dmi = Si_slim.Dmi
module Bundle_model = Si_slim.Bundle_model
module Log = Si_wal.Log
module Record = Si_wal.Record
module Xml = Si_xmlk

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type provenance =
  | In_triple of Triple.t
  | In_resource of string
  | In_mark of string
  | In_wal of { file : string; offset : int option }
  | In_file of string

let provenance_to_string = function
  | In_triple tr -> "triple " ^ Triple.to_string tr
  | In_resource r -> Printf.sprintf "resource <%s>" r
  | In_mark id -> "mark " ^ id
  | In_wal { file; offset } -> (
      match offset with
      | Some o -> Printf.sprintf "%s@%d" file o
      | None -> file)
  | In_file f -> "file " ^ f

type diagnostic = {
  code : string;
  rule : string;
  severity : severity;
  message : string;
  provenance : provenance option;
  fixable : bool;
}

type context = {
  dmi : Dmi.t option;
  marks : Manager.t option;
  resilient : Resilient.t option;
  raw_triples : Triple.t list option;
  store_file : string option;
  wal_path : string option;
  archive : string option;
  workspace : string option;
  bundle : string option;
}

let context ?dmi ?marks ?resilient ?raw_triples ?store_file ?wal_path
    ?archive ?workspace ?bundle () =
  {
    dmi;
    marks;
    resilient;
    raw_triples;
    store_file;
    wal_path;
    archive;
    workspace;
    bundle;
  }

type rule = {
  code : string;
  rule_name : string;
  rule_severity : severity;
  synopsis : string;
  check : context -> diagnostic list;
}

let diag rule ?provenance ?(fixable = false) message =
  {
    code = rule.code;
    rule = rule.rule_name;
    severity = rule.rule_severity;
    message;
    provenance;
    fixable;
  }

let with_trim ctx f =
  match ctx.dmi with None -> [] | Some dmi -> f (Dmi.trim dmi)

(* ------------------------------------------------ triple / metamodel *)

(* SL001: byte-identical triples in the persisted file. In-memory stores
   are sets, so duplicates only exist on disk. *)
let rec check_duplicates rule = function
  | [] -> []
  | tr :: rest ->
      let same, others = List.partition (Triple.equal tr) rest in
      let tail = check_duplicates rule others in
      if same = [] then tail
      else
        diag rule ~provenance:(In_triple tr) ~fixable:true
          (Printf.sprintf "triple appears %d times in the store file"
             (List.length same + 1))
        :: tail

let rule_duplicate_triple =
  let rec rule =
    {
      code = "SL001";
      rule_name = "duplicate-triple";
      rule_severity = Warning;
      synopsis = "the persisted store file carries byte-identical triples";
      check =
        (fun ctx ->
          match ctx.raw_triples with
          | None -> []
          | Some raw ->
              check_duplicates rule (List.sort Triple.compare raw));
    }
  in
  rule

(* A resource is a construct iff typed by one of the three construct
   classes. *)
let is_construct trim id =
  match Trim.resource_of trim ~subject:id ~predicate:Vocab.rdf_type with
  | Some c ->
      c = Vocab.construct || c = Vocab.literal_construct
      || c = Vocab.mark_construct
  | None -> false

let rule_dangling_connector =
  let rec rule =
    {
      code = "SL002";
      rule_name = "dangling-connector";
      rule_severity = Error;
      synopsis = "a connector whose domain or range is not a construct";
      check =
        (fun ctx ->
          with_trim ctx (fun trim ->
              Trim.select ~predicate:Vocab.rdf_type
                ~object_:(Triple.resource Vocab.connector) trim
              |> List.filter_map (fun (tr : Triple.t) ->
                     let c = tr.subject in
                     let endpoint what pred =
                       match Trim.resource_of trim ~subject:c ~predicate:pred
                       with
                       | None -> [ Printf.sprintf "no %s" what ]
                       | Some id ->
                           if is_construct trim id then []
                           else
                             [
                               Printf.sprintf "%s <%s> is not a construct"
                                 what id;
                             ]
                     in
                     let problems =
                       (match
                          Trim.literal_of trim ~subject:c
                            ~predicate:Vocab.predicate
                        with
                       | None -> [ "no predicate name" ]
                       | Some _ -> [])
                       @ endpoint "domain" Vocab.domain
                       @ endpoint "range" Vocab.range
                     in
                     if problems = [] then None
                     else
                       Some
                         (diag rule ~provenance:(In_resource c)
                            (String.concat "; " problems)))));
    }
  in
  rule

(* Cycle detection shared by SL003 and SL104: given directed edges,
   return one canonical member (minimum id) per cycle. *)
let cycle_representatives edges =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace adj a (b :: Option.value (Hashtbl.find_opt adj a) ~default:[]))
    edges;
  let reachable from_ =
    let seen = Hashtbl.create 16 in
    let rec walk = function
      | [] -> ()
      | x :: rest ->
          let next =
            Option.value (Hashtbl.find_opt adj x) ~default:[]
            |> List.filter (fun y -> not (Hashtbl.mem seen y))
          in
          List.iter (fun y -> Hashtbl.add seen y ()) next;
          walk (next @ rest)
    in
    walk [ from_ ];
    seen
  in
  let nodes =
    List.concat_map (fun (a, b) -> [ a; b ]) edges
    |> List.sort_uniq String.compare
  in
  let on_cycle =
    List.filter (fun n -> Hashtbl.mem (reachable n) n) nodes
  in
  (* Two cycle nodes share a cycle iff mutually reachable; keep the
     minimum of each equivalence class. *)
  List.filter
    (fun n ->
      let r = reachable n in
      not
        (List.exists
           (fun m ->
             String.compare m n < 0
             && Hashtbl.mem r m
             && Hashtbl.mem (reachable m) n)
           on_cycle))
    on_cycle

let rule_generalization_cycle =
  let rec rule =
    {
      code = "SL003";
      rule_name = "generalization-cycle";
      rule_severity = Error;
      synopsis = "a cycle in rdfs:subClassOf among constructs";
      check =
        (fun ctx ->
          with_trim ctx (fun trim ->
              let edges =
                Trim.select ~predicate:Vocab.rdfs_subclass_of trim
                |> List.filter_map (fun (tr : Triple.t) ->
                       match tr.object_ with
                       | Triple.Resource r -> Some (tr.subject, r)
                       | Triple.Literal _ -> None)
              in
              cycle_representatives edges
              |> List.map (fun n ->
                     diag rule ~provenance:(In_resource n)
                       (Printf.sprintf
                          "generalization cycle through <%s>: the hierarchy \
                           above it is meaningless"
                          n))));
    }
  in
  rule

let rule_conformance =
  let rec rule =
    {
      code = "SL004";
      rule_name = "conformance-violation";
      rule_severity = Warning;
      synopsis = "an instance violating the model it is typed by";
      check =
        (fun ctx ->
          with_trim ctx (fun trim ->
              Model.all trim
              |> List.concat_map (fun m ->
                     (Validate.check m).Validate.violations
                     |> List.map (fun v ->
                            diag rule
                              ~provenance:(In_resource v.Validate.resource)
                              (Format.asprintf "model %s: %a" (Model.name m)
                                 Validate.pp_violation v)))));
    }
  in
  rule

(* ------------------------------------------------------- slimpad layer *)

(* The bundle-scrap constructs, when the model is installed. *)
let bundle_scrap trim =
  match Model.find trim ~name:"bundle-scrap" with
  | None -> None
  | Some m -> (
      match
        ( Model.find_construct m "Bundle",
          Model.find_construct m "Scrap",
          Model.find_construct m "MarkHandle" )
      with
      | Some bundle, Some scrap, Some handle -> Some (m, bundle, scrap, handle)
      | _ -> None)

let with_bundle_scrap ctx f =
  with_trim ctx (fun trim ->
      match bundle_scrap trim with
      | None -> []
      | Some (m, bundle, scrap, handle) -> f trim m bundle scrap handle)

let rule_dangling_mark_handle =
  let rec rule =
    {
      code = "SL101";
      rule_name = "dangling-mark-handle";
      rule_severity = Error;
      synopsis = "a MarkHandle whose markId names no mark in the manager";
      check =
        (fun ctx ->
          match ctx.marks with
          | None -> []
          | Some mgr ->
              with_bundle_scrap ctx (fun trim _ _ _ handle ->
                  Trim.select ~predicate:Bundle_model.mark_id trim
                  |> List.filter_map (fun (tr : Triple.t) ->
                         match
                           ( Model.instance_type trim tr.subject,
                             tr.object_ )
                         with
                         | Some ty, Triple.Literal id
                           when ty = handle.Model.construct_id
                                && Manager.mark mgr id = None ->
                             Some
                               (diag rule ~provenance:(In_resource tr.subject)
                                  (Printf.sprintf
                                     "MarkHandle <%s> refers to missing mark \
                                      %S"
                                     tr.subject id))
                         | _ -> None)));
    }
  in
  rule

let rule_unreachable_bundle =
  let rec rule =
    {
      code = "SL102";
      rule_name = "unreachable-bundle";
      rule_severity = Warning;
      synopsis = "a bundle no pad's root reaches through nestedBundle";
      check =
        (fun ctx ->
          with_bundle_scrap ctx (fun trim m bundle _ _ ->
              let reachable = Hashtbl.create 32 in
              let nested id =
                Trim.select ~subject:id
                  ~predicate:Bundle_model.nested_bundle trim
                |> List.filter_map (fun (tr : Triple.t) ->
                       match tr.object_ with
                       | Triple.Resource r -> Some r
                       | Triple.Literal _ -> None)
              in
              let rec walk = function
                | [] -> ()
                | id :: rest ->
                    if Hashtbl.mem reachable id then walk rest
                    else begin
                      Hashtbl.add reachable id ();
                      walk (nested id @ rest)
                    end
              in
              Trim.select ~predicate:Bundle_model.root_bundle trim
              |> List.iter (fun (tr : Triple.t) ->
                     match tr.object_ with
                     | Triple.Resource r -> walk [ r ]
                     | Triple.Literal _ -> ());
              Model.instances_of m bundle
              |> List.filter_map (fun id ->
                     if Hashtbl.mem reachable id then None
                     else
                       Some
                         (diag rule ~provenance:(In_resource id)
                            (Printf.sprintf
                               "bundle <%s> is unreachable from every pad's \
                                root"
                               id)))));
    }
  in
  rule

let rule_orphan_scrap =
  let rec rule =
    {
      code = "SL103";
      rule_name = "orphan-scrap";
      rule_severity = Warning;
      synopsis = "a scrap no bundleContent triple references";
      check =
        (fun ctx ->
          with_bundle_scrap ctx (fun trim m _ scrap _ ->
              let contained = Hashtbl.create 32 in
              Trim.select ~predicate:Bundle_model.bundle_content trim
              |> List.iter (fun (tr : Triple.t) ->
                     match tr.object_ with
                     | Triple.Resource r -> Hashtbl.replace contained r ()
                     | Triple.Literal _ -> ());
              Model.instances_of m scrap
              |> List.filter_map (fun id ->
                     if Hashtbl.mem contained id then None
                     else
                       Some
                         (diag rule ~provenance:(In_resource id)
                            (Printf.sprintf
                               "scrap <%s> is contained in no bundle" id)))));
    }
  in
  rule

let rule_containment_cycle =
  let rec rule =
    {
      code = "SL104";
      rule_name = "containment-cycle";
      rule_severity = Error;
      synopsis = "a nestedBundle cycle";
      check =
        (fun ctx ->
          with_trim ctx (fun trim ->
              let edges =
                Trim.select ~predicate:Bundle_model.nested_bundle trim
                |> List.filter_map (fun (tr : Triple.t) ->
                       match tr.object_ with
                       | Triple.Resource r -> Some (tr.subject, r)
                       | Triple.Literal _ -> None)
              in
              cycle_representatives edges
              |> List.map (fun n ->
                     diag rule ~provenance:(In_resource n)
                       (Printf.sprintf
                          "bundle containment cycle through <%s>" n))));
    }
  in
  rule

let rule_orphan_layout =
  let rec rule =
    {
      code = "SL105";
      rule_name = "orphan-layout-triple";
      rule_severity = Warning;
      synopsis = "a layout triple whose subject is not a typed instance";
      check =
        (fun ctx ->
          with_trim ctx (fun trim ->
              Bundle_model.layout_predicates
              |> List.concat_map (fun p -> Trim.select ~predicate:p trim)
              |> List.filter_map (fun (tr : Triple.t) ->
                     match Model.instance_type trim tr.subject with
                     | Some _ -> None
                     | None ->
                         Some
                           (diag rule ~provenance:(In_triple tr) ~fixable:true
                              (Printf.sprintf
                                 "%s on <%s>, which is not a typed instance"
                                 tr.predicate tr.subject)))));
    }
  in
  rule

(* ---------------------------------------------------------- mark layer *)

let with_marks ctx f = match ctx.marks with None -> [] | Some mgr -> f mgr

let rule_mark_address =
  let rec rule =
    {
      code = "SL201";
      rule_name = "mark-address-malformed";
      rule_severity = Error;
      synopsis = "a mark whose address fields fail its module's linter";
      check =
        (fun ctx ->
          with_marks ctx (fun mgr ->
              Manager.marks mgr
              |> List.filter_map (fun (m : Mark.t) ->
                     match Manager.address_linter mgr m.Mark.mark_type with
                     | None -> None
                     | Some lint -> (
                         match lint m.Mark.fields with
                         | [] -> None
                         | problems ->
                             Some
                               (diag rule ~provenance:(In_mark m.Mark.mark_id)
                                  (Printf.sprintf "%s address: %s"
                                     m.Mark.mark_type
                                     (String.concat "; " problems)))))));
    }
  in
  rule

let rule_mark_unsupported =
  let rec rule =
    {
      code = "SL202";
      rule_name = "mark-type-unsupported";
      rule_severity = Info;
      synopsis = "a mark of a type no registered module handles";
      check =
        (fun ctx ->
          with_marks ctx (fun mgr ->
              Manager.marks mgr
              |> List.filter_map (fun (m : Mark.t) ->
                     if Manager.modules_for_type mgr m.Mark.mark_type = []
                     then
                       Some
                         (diag rule ~provenance:(In_mark m.Mark.mark_id)
                            (Printf.sprintf
                               "no mark module handles type %S; the mark is \
                                kept but cannot resolve here"
                               m.Mark.mark_type))
                     else None)));
    }
  in
  rule

let rule_mark_quarantined =
  let rec rule =
    {
      code = "SL203";
      rule_name = "mark-quarantined";
      rule_severity = Warning;
      synopsis = "a mark whose base source is quarantined by drift";
      check =
        (fun ctx ->
          match ctx.resilient with
          | None -> []
          | Some r ->
              with_marks ctx (fun mgr ->
                  Manager.marks mgr
                  |> List.filter_map (fun (m : Mark.t) ->
                         let source = Mark.source m in
                         if Resilient.quarantined r source then
                           Some
                             (diag rule ~provenance:(In_mark m.Mark.mark_id)
                                (Printf.sprintf
                                   "base source %s is quarantined; the mark \
                                    serves only its cached excerpt"
                                   source))
                         else None)));
    }
  in
  rule

(* ----------------------------------------------------------- wal layer *)

(* Offline classification of one record payload against the three
   stream codecs slimpad interleaves (triple ops, marks, journal). *)
let classify_record payload =
  match Record.decode_fields payload with
  | Error e -> Some ("undecodable record: " ^ e)
  | Ok fields -> (
      match fields with
      | ("+" | "-" | "x") :: _ -> (
          match Durable.decode_op payload with
          | Ok _ -> None
          | Error e -> Some ("bad triple record: " ^ e))
      | tag :: _ when tag = Mark.record_tag -> (
          match Mark.of_record payload with
          | Ok _ -> None
          | Error e -> Some ("bad mark record: " ^ e))
      | [ "m-"; _ ] -> None
      | "m-" :: _ -> Some "bad mark-removal record: expected one mark id"
      | tag :: _ when tag = Dmi.journal_record_tag -> (
          match Dmi.journal_entry_of_record payload with
          | Ok _ -> None
          | Error e -> Some ("bad journal record: " ^ e))
      | [ "jx" ] -> None
      | "jx" :: _ -> Some "bad journal-clear record: expected no arguments"
      | [ "jt"; n ] ->
          if int_of_string_opt n = None then
            Some (Printf.sprintf "bad journal truncation seq %S" n)
          else None
      | "jt" :: _ -> Some "bad journal-truncation record: expected one seq"
      | tag :: _ -> Some (Printf.sprintf "unknown record tag %S" tag)
      | [] -> Some "empty record")

(* Journal seq of a record, for the monotonicity check: [`Entry seq],
   [`Reset_to seq], or [`Other]. *)
let journal_effect payload =
  match Record.decode_fields payload with
  | Error _ -> `Other
  | Ok fields -> (
      match fields with
      | tag :: _ when tag = Dmi.journal_record_tag -> (
          match Dmi.journal_entry_of_record payload with
          | Ok e -> `Entry e.Dmi.seq
          | Error _ -> `Other)
      | [ "jx" ] -> `Reset_to 0
      | [ "jt"; n ] -> (
          match int_of_string_opt n with
          | Some n -> `Reset_to n
          | None -> `Other)
      | _ -> `Other)

let with_dump ctx f =
  match ctx.wal_path with
  | None -> []
  | Some path -> (
      if
        (not (Sys.file_exists path))
        && not (Sys.file_exists (Log.snapshot_path path))
      then []
      else
        match Log.dump path with
        | Error e -> f path (Either.Left (Log.error_to_string e))
        | Ok d -> f path (Either.Right d))

let rule_wal_corrupt =
  let rec rule =
    {
      code = "SL301";
      rule_name = "wal-corrupt";
      rule_severity = Error;
      synopsis = "CRC failure, bad header, corrupt snapshot, or generation skew";
      check =
        (fun ctx ->
          with_dump ctx (fun path -> function
            | Either.Left io ->
                [ diag rule ~provenance:(In_wal { file = path; offset = None }) io ]
            | Either.Right d ->
                let problems =
                  List.map
                    (fun p ->
                      diag rule
                        ~provenance:(In_wal { file = path; offset = None })
                        p)
                    d.Log.dump_problems
                in
                let corrupt =
                  match d.Log.dump_corrupt with
                  | None -> []
                  | Some (index, offset, detail) ->
                      [
                        diag rule
                          ~provenance:
                            (In_wal { file = path; offset = Some offset })
                          (Printf.sprintf "corrupt record %d: %s" index
                             detail);
                      ]
                in
                problems @ corrupt));
    }
  in
  rule

let rule_wal_torn =
  let rec rule =
    {
      code = "SL302";
      rule_name = "wal-torn-tail";
      rule_severity = Warning;
      synopsis = "trailing bytes a recovery would truncate";
      check =
        (fun ctx ->
          with_dump ctx (fun path -> function
            | Either.Left _ -> []
            | Either.Right d ->
                if d.Log.dump_torn_bytes = 0 then []
                else
                  let good_end =
                    match List.rev d.Log.dump_records with
                    | last :: _ ->
                        Some
                          (last.Log.dump_offset
                          + Record.header_size
                          + String.length last.Log.dump_payload)
                    | [] -> None
                  in
                  [
                    diag rule
                      ~provenance:(In_wal { file = path; offset = good_end })
                      (Printf.sprintf
                         "torn tail of %d byte(s); recovery would truncate \
                          to the last complete record"
                         d.Log.dump_torn_bytes);
                  ]));
    }
  in
  rule

let rule_wal_stale =
  let rec rule =
    {
      code = "SL303";
      rule_name = "wal-stale-log";
      rule_severity = Warning;
      synopsis = "snapshot generation ahead of the log";
      check =
        (fun ctx ->
          with_dump ctx (fun path -> function
            | Either.Left _ -> []
            | Either.Right d ->
                if not d.Log.dump_stale_log then []
                else
                  [
                    diag rule ~provenance:(In_wal { file = path; offset = None })
                      (Printf.sprintf
                         "log (generation %s) predates its snapshot \
                          (generation %s): an interrupted compaction left \
                          it; recovery discards its %d record(s)"
                         (match d.Log.dump_log_generation with
                         | Some g -> string_of_int g
                         | None -> "?")
                         (match d.Log.dump_snapshot_generation with
                         | Some g -> string_of_int g
                         | None -> "?")
                         (List.length d.Log.dump_records));
                  ]));
    }
  in
  rule

let rule_wal_stream =
  let rec rule =
    {
      code = "SL304";
      rule_name = "wal-stream-inconsistency";
      rule_severity = Error;
      synopsis = "a record no stream codec accepts, or a bad snapshot payload";
      check =
        (fun ctx ->
          with_dump ctx (fun path -> function
            | Either.Left _ -> []
            | Either.Right d ->
                let record_diags =
                  List.filter_map
                    (fun r ->
                      classify_record r.Log.dump_payload
                      |> Option.map (fun problem ->
                             diag rule
                               ~provenance:
                                 (In_wal
                                    {
                                      file = path;
                                      offset = Some r.Log.dump_offset;
                                    })
                               problem))
                    d.Log.dump_records
                in
                let seq_diags =
                  let _, diags =
                    List.fold_left
                      (fun (last, acc) r ->
                        match journal_effect r.Log.dump_payload with
                        | `Entry seq ->
                            if
                              match last with
                              | Some l -> seq <= l
                              | None -> false
                            then
                              ( Some seq,
                                diag rule
                                  ~provenance:
                                    (In_wal
                                       {
                                         file = path;
                                         offset = Some r.Log.dump_offset;
                                       })
                                  (Printf.sprintf
                                     "journal seq %d not monotone (follows \
                                      %d)"
                                     seq
                                     (Option.get last))
                                :: acc )
                            else (Some seq, acc)
                        | `Reset_to n -> (Some n, acc)
                        | `Other -> (last, acc))
                      (None, []) d.Log.dump_records
                  in
                  List.rev diags
                in
                let snapshot_diags =
                  match d.Log.dump_snapshot with
                  | None -> []
                  | Some payload when Si_wal.Binary.is_binary payload -> (
                      (* Binary snapshot: container-level damage (magic,
                         framing, section CRCs) is SL305's finding; this
                         rule owns the stream contents, so it only
                         speaks up when a well-framed container carries
                         triple sections that do not decode. *)
                      match Si_wal.Binary.decode payload with
                      | Error _ -> []
                      | Ok sections
                        when Si_wal.Binary.section "atoms" sections = None
                             || Si_wal.Binary.section "triples" sections
                                = None ->
                          (* Missing sections are container shape — also
                             SL305's. *)
                          []
                      | Ok sections -> (
                          match Trim.triples_of_binary_sections sections with
                          | Ok _ -> []
                          | Error e ->
                              [
                                diag rule
                                  ~provenance:
                                    (In_wal
                                       {
                                         file = Log.snapshot_path path;
                                         offset = None;
                                       })
                                  ("snapshot triples: " ^ e);
                              ]))
                  | Some payload
                    when String.length payload >= 8
                         && String.sub payload 0 4
                            = String.sub Si_wal.Binary.magic 0 4 ->
                      (* The container's name with a version this build
                         does not speak: SL305's finding, not an XML
                         stream problem. *)
                      []
                  | Some payload -> (
                      let snap_prov =
                        In_wal
                          { file = Log.snapshot_path path; offset = None }
                      in
                      let bad problem =
                        [ diag rule ~provenance:snap_prov problem ]
                      in
                      match Xml.Parse.node payload with
                      | Error e ->
                          bad
                            ("snapshot payload is not XML: "
                            ^ Xml.Parse.error_to_string e)
                      | Ok root -> (
                          match Xml.Node.strip_whitespace root with
                          | Xml.Node.Element { name = "slimpad-store"; _ } as
                            r -> (
                              match
                                ( Xml.Node.find_child "triples" r,
                                  Xml.Node.find_child "marks" r )
                              with
                              | Some triples, Some _ -> (
                                  match Trim.triples_of_xml triples with
                                  | Ok _ -> []
                                  | Error e ->
                                      bad ("snapshot triples: " ^ e))
                              | _ ->
                                  bad
                                    "snapshot misses its <triples> or \
                                     <marks> section")
                          | _ ->
                              bad
                                "snapshot payload is not a <slimpad-store> \
                                 document"))
                in
                record_diags @ seq_diags @ snapshot_diags));
    }
  in
  rule

let rule_wal_binary_snapshot =
  let rec rule =
    {
      code = "SL305";
      rule_name = "wal-binary-snapshot";
      rule_severity = Error;
      synopsis = "binary snapshot container damage (magic, framing, CRC)";
      check =
        (fun ctx ->
          with_dump ctx (fun path -> function
            | Either.Left _ -> []
            | Either.Right d -> (
                match d.Log.dump_snapshot with
                | None -> []
                | Some payload -> (
                    let snap_prov =
                      In_wal { file = Log.snapshot_path path; offset = None }
                    in
                    if not (Si_wal.Binary.is_binary payload) then
                      (* XML snapshots predate the binary codec and are
                         SL304's business — except a payload that opens
                         with the container's 4-byte name but a version
                         this build does not speak, which recovery would
                         also refuse. *)
                      if
                        String.length payload >= 8
                        && String.sub payload 0 4
                           = String.sub Si_wal.Binary.magic 0 4
                      then
                        [
                          diag rule ~provenance:snap_prov
                            (match Si_wal.Binary.decode payload with
                            | Error e -> e
                            | Ok _ -> assert false);
                        ]
                      else []
                    else
                      match Si_wal.Binary.decode payload with
                      | Ok sections ->
                          let size name =
                            Option.map String.length
                              (Si_wal.Binary.section name sections)
                          in
                          (* The header decodes; the one remaining shape
                             error a container can carry is a snapshot
                             without its triple data. *)
                          if size "atoms" = None || size "triples" = None then
                            [
                              diag rule ~provenance:snap_prov
                                "container misses its atoms or triples \
                                 section";
                            ]
                          else []
                      | Error e ->
                          [ diag rule ~provenance:snap_prov e ]))));
    }
  in
  rule

let rule_wal_archive =
  let rec rule =
    {
      code = "SL306";
      rule_name = "wal-archive";
      rule_severity = Error;
      synopsis =
        "shipping archive damage (CRC, sequence gaps, term regressions)";
      check =
        (fun ctx ->
          match ctx.archive with
          | None -> []
          | Some dir -> (
              match Si_wal.Segment.verify dir with
              | Error e -> [ diag rule ~provenance:(In_file dir) e ]
              | Ok problems ->
                  List.map
                    (fun p ->
                      diag rule
                        ~provenance:
                          (In_file
                             (Filename.concat dir
                                p.Si_wal.Segment.problem_file))
                        p.Si_wal.Segment.problem_detail)
                    problems));
    }
  in
  rule

(* An interrupted atomic save — a crash between writing ["x.si-tmp"]
   and renaming it over [x] — leaves the temp file behind. Loaders
   ignore the suffix, so the orphan is harmless but permanent: nothing
   ever deletes it, and it silently pins disk space (a snapshot temp is
   the size of the whole store). The scan covers the workspace tree
   and, for bare-file targets, the would-be temp of the store file and
   log. *)

let orphan_temp_files ctx =
  let rec walk acc dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> acc
    | entries ->
        Array.fold_left
          (fun acc name ->
            let p = Filename.concat dir name in
            if (try Sys.is_directory p with Sys_error _ -> false) then
              walk acc p
            else if Si_xmlk.Print.is_temp_path p then p :: acc
            else acc)
          acc entries
  in
  let sibling acc = function
    | Some path ->
        let t = path ^ Si_xmlk.Print.temp_suffix in
        if Sys.file_exists t then t :: acc else acc
    | None -> acc
  in
  let found =
    match ctx.workspace with
    | Some dir -> walk [] dir
    | None -> sibling (sibling [] ctx.store_file) ctx.wal_path
  in
  List.sort_uniq compare found

let rule_orphan_temp =
  let rec rule =
    {
      code = "SL307";
      rule_name = "orphan-temp-file";
      rule_severity = Warning;
      synopsis = "leftover .si-tmp files from interrupted atomic saves";
      check =
        (fun ctx ->
          List.map
            (fun p ->
              diag rule ~provenance:(In_file p) ~fixable:true
                (Printf.sprintf
                   "%s was left by an interrupted atomic save; loaders \
                    ignore it, and --fix deletes it"
                   (Filename.basename p)))
            (orphan_temp_files ctx));
    }
  in
  rule

(* Offline verification of a capture bundle, from its bytes alone: the
   engine is {!Si_bundle.verify} (container magic and section CRCs,
   schema-version range, section decodability, excerpt entries naming
   marks the bundle does not carry); this rule maps its problems onto
   diagnostics so `slimpad lint --bundle <file>` reads like any other
   lint pass. *)

let rule_bundle =
  let rec rule =
    {
      code = "SL308";
      rule_name = "bundle-malformed";
      rule_severity = Error;
      synopsis =
        "capture-bundle damage (magic, section CRCs, schema version, \
         dangling excerpts)";
      check =
        (fun ctx ->
          match ctx.bundle with
          | None -> []
          | Some path -> (
              match Si_bundle.read_file path with
              | Error e -> [ diag rule ~provenance:(In_file path) e ]
              | Ok bytes ->
                  List.map
                    (fun p ->
                      diag rule ~provenance:(In_file path)
                        (Si_bundle.problem_to_string p))
                    (Si_bundle.verify bytes)));
    }
  in
  rule

(* ------------------------------------------------------------- registry *)

let builtin_rules =
  [
    rule_duplicate_triple;
    rule_dangling_connector;
    rule_generalization_cycle;
    rule_conformance;
    rule_dangling_mark_handle;
    rule_unreachable_bundle;
    rule_orphan_scrap;
    rule_containment_cycle;
    rule_orphan_layout;
    rule_mark_address;
    rule_mark_unsupported;
    rule_mark_quarantined;
    rule_wal_corrupt;
    rule_wal_torn;
    rule_wal_stale;
    rule_wal_stream;
    rule_wal_binary_snapshot;
    rule_wal_archive;
    rule_orphan_temp;
    rule_bundle;
  ]

let registry = ref builtin_rules

let rules () =
  List.sort (fun a b -> String.compare a.code b.code) !registry

let register_rule r =
  if List.exists (fun existing -> existing.code = r.code) !registry then
    Stdlib.Error
      (Printf.sprintf "a rule with code %s is already registered" r.code)
  else begin
    registry := r :: !registry;
    Stdlib.Ok ()
  end

let find_rule code = List.find_opt (fun r -> r.code = code) !registry

let compare_diagnostic (a : diagnostic) (b : diagnostic) =
  match String.compare a.code b.code with
  | 0 -> (
      let prov d =
        match d.provenance with
        | Some p -> provenance_to_string p
        | None -> ""
      in
      match String.compare (prov a) (prov b) with
      | 0 -> String.compare a.message b.message
      | n -> n)
  | n -> n

let run ?rules:rs ctx =
  let rs = match rs with Some rs -> rs | None -> rules () in
  List.concat_map (fun r -> r.check ctx) rs
  |> List.sort compare_diagnostic

(* ---------------------------------------------------------------- fixes *)

type fix_report = {
  removed_layout_triples : int;
  duplicate_triples : int;
  removed_temp_files : int;
}

let fix ctx diagnostics =
  let orphan_triples =
    List.filter_map
      (fun (d : diagnostic) ->
        if d.code = "SL105" && d.fixable then
          match d.provenance with
          | Some (In_triple tr) -> Some tr
          | _ -> None
        else None)
      diagnostics
  in
  let duplicate_triples =
    List.length
    (List.filter (fun (d : diagnostic) -> d.code = "SL001") diagnostics)
  in
  (* Deleting an orphaned temp file needs no live store — only the path
     the diagnostic already carries. A vanished file is not an error:
     the repair's job is that the file be gone. *)
  let removed_temp_files =
    List.fold_left
      (fun n (d : diagnostic) ->
        if d.code = "SL307" && d.fixable then
          match d.provenance with
          | Some (In_file f) -> (
              match Sys.remove f with
              | () -> n + 1
              | exception Sys_error _ -> n)
          | _ -> n
        else n)
      0 diagnostics
  in
  match (orphan_triples, ctx.dmi) with
  | [], _ ->
      Stdlib.Ok
        { removed_layout_triples = 0; duplicate_triples; removed_temp_files }
  | _, None -> Stdlib.Error "cannot repair layout triples without a live store"
  | _, Some dmi -> (
      let trim = Dmi.trim dmi in
      let body () : (int, string) result =
        Stdlib.Ok
          (List.fold_left
             (fun n tr -> if Trim.remove trim tr then n + 1 else n)
             0 orphan_triples)
      in
      match Trim.transaction trim body with
      | Stdlib.Ok (Stdlib.Ok removed_layout_triples) ->
          Stdlib.Ok
            { removed_layout_triples; duplicate_triples; removed_temp_files }
      | Stdlib.Ok (Stdlib.Error e) -> Stdlib.Error e
      | Stdlib.Error exn -> Stdlib.Error (Printexc.to_string exn))

(* ------------------------------------------------------------ reporters *)

let count sev diagnostics =
  List.length
    (List.filter (fun (d : diagnostic) -> d.severity = sev) diagnostics)

let max_severity = function
  | [] -> None
  | diagnostics ->
      Some
        (List.fold_left
           (fun worst (d : diagnostic) ->
             if severity_rank d.severity > severity_rank worst then d.severity
             else worst)
           Info diagnostics)

let summary diagnostics =
  if diagnostics = [] then "no diagnostics"
  else
    Printf.sprintf "%d error(s), %d warning(s), %d info"
      (count Error diagnostics)
      (count Warning diagnostics)
      (count Info diagnostics)

let to_text diagnostics =
  let buf = Buffer.create 256 in
  List.iter
    (fun (d : diagnostic) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %-7s %s: %s" d.code
           (severity_to_string d.severity)
           d.rule d.message);
      (match d.provenance with
      | Some p ->
          Buffer.add_string buf (Printf.sprintf "  [%s]" (provenance_to_string p))
      | None -> ());
      Buffer.add_char buf '\n')
    diagnostics;
  Buffer.add_string buf (summary diagnostics);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Same escaping discipline as the bench JSON writer. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json diagnostics =
  let entry (d : diagnostic) =
    Printf.sprintf
      "  {\"code\": \"%s\", \"rule\": \"%s\", \"severity\": \"%s\", \
       \"message\": \"%s\", \"provenance\": %s, \"fixable\": %b}"
      (json_escape d.code) (json_escape d.rule)
      (severity_to_string d.severity)
      (json_escape d.message)
      (match d.provenance with
      | Some p -> Printf.sprintf "\"%s\"" (json_escape (provenance_to_string p))
      | None -> "null")
      d.fixable
  in
  "[\n" ^ String.concat ",\n" (List.map entry diagnostics) ^ "\n]\n"
