(** Rendering registry snapshots and span buffers for humans, JSON
    consumers, and Prometheus scrapes. *)

val to_text : Registry.snapshot -> string
(** Aligned tables: counters, then per-histogram count / mean / p50 /
    p90 / p99 / max (nanoseconds). Empty string when there is nothing
    to report. *)

val to_json : Registry.snapshot -> Json.t
(** [{"counters": {...}, "histograms": {name: {count, sum, min, max,
    mean, p50, p90, p99, buckets}}}]. The [buckets] array carries the
    sparse bucket indices, so [of_json] reconstructs the histogram
    exactly, not just its moments. *)

val of_json : Json.t -> (Registry.snapshot, string) result
(** Inverse of [to_json] (derived fields like [mean] are recomputed,
    not trusted). *)

val to_prometheus : Registry.snapshot -> string
(** Prometheus exposition text: counters as [si_events_total{name=..}]
    and histograms as [si_latency_ns] with cumulative [le] buckets. *)

val span_tree : ?timings:bool -> Span.finished list -> string
(** Indented parent/child tree of a [Span.drain] result, children in
    start order. [timings:false] (default [true]) omits durations —
    that is what keeps the CLI's trace output reproducible in cram
    tests. *)
