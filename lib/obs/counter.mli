(** Monotonically increasing event counters.

    Counters are always on (unlike spans and latency histograms, which
    only record while tracing is enabled): an increment is a single
    atomic add, cheap enough for the hottest paths, and safe to bump
    from any domain. *)

type t

val create : unit -> t
val incr : t -> unit
val add : t -> int -> unit
val get : t -> int
val reset : t -> unit
