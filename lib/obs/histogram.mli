(** Log-bucketed latency histograms.

    Values (nanoseconds, non-negative ints) land in buckets whose width
    grows geometrically: 4 sub-buckets per power of two, so any
    recorded value is within ~25% of its bucket's representative. The
    layout is fixed — every histogram shares it — which makes
    histograms mergeable bucket-by-bucket: the bench harness's
    [--compare] mode and the multi-process reporters rely on this.

    [add] is thread-safe (a per-histogram mutex); everything else reads
    a consistent snapshot under the same lock. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** Record one value. Negative values count into bucket 0. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** Smallest recorded value; 0 when empty. *)

val max_value : t -> int
(** Largest recorded value; 0 when empty. *)

val mean : t -> float
(** Arithmetic mean of recorded values; 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]: the representative value of the
    bucket holding the [q]-th fraction of recorded values — exact to
    within the bucket width. 0 when empty. *)

val median : t -> float
(** [quantile t 0.5]. *)

val merge : t -> t -> t
(** Bucket-wise sum, as a fresh histogram. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s buckets into [dst]. *)

val clear : t -> unit

(** {1 Bucket layout}

    Exposed so property tests can pin the invariants down and so
    reporters can label Prometheus [le] bounds. *)

val bucket_count : int

val index_of : int -> int
(** The bucket a value lands in. Total and monotone: [v <= w] implies
    [index_of v <= index_of w]. *)

val lower_bound : int -> int
(** Smallest value belonging to the bucket. For every positive [v],
    [lower_bound (index_of v) <= v < lower_bound (index_of v + 1)]. *)

val representative : int -> float
(** Midpoint of the bucket's value range — what [quantile] reports. *)

(** {1 Snapshots}

    The serializable form: sparse nonzero buckets plus the scalar
    moments. [summary] and [of_summary] round-trip exactly; the JSON
    reporter is built on them. *)

type summary = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_buckets : (int * int) list;  (** (bucket index, count), ascending. *)
}

val summary : t -> summary
val of_summary : summary -> t
