(* Bucket layout: 4 sub-buckets per octave (power of two). Values
   0..4 are exact — bucket [i] holds exactly value [i] — and from 8
   upwards each octave [2^o, 2^(o+1)) splits into 4 equal sub-buckets.
   The octave [4, 8) degenerates: its 4 sub-buckets coincide with the
   exact buckets 4..7 (width 1), which is what makes the two regimes
   join without a gap. 248 buckets cover the whole of [0, max_int]. *)

let sub_bits = 2
let sub_count = 1 lsl sub_bits (* 4 *)

(* Highest set bit of a positive int. *)
let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index_of v =
  if v <= 0 then 0
  else if v < sub_count then v
  else
    let o = msb v in
    let s = (v lsr (o - sub_bits)) - sub_count in
    ((o - 1) * sub_count) + s

let bucket_count = index_of max_int + 1

let lower_bound i =
  if i <= sub_count then i
  else
    let o = (i / sub_count) + 1 in
    let s = i mod sub_count in
    (sub_count + s) lsl (o - sub_bits)

let representative i =
  if i < sub_count then float_of_int i
  else
    let lo = lower_bound i in
    let hi =
      if i + 1 >= bucket_count then float_of_int max_int
      else float_of_int (lower_bound (i + 1))
    in
    (float_of_int lo +. hi) /. 2.

type t = {
  lock : Si_check.Lock.t;
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

let create () =
  {
    lock = Si_check.Lock.create ~class_:"obs.histogram";
    buckets = Array.make bucket_count 0;
    h_count = 0;
    h_sum = 0;
    h_min = max_int;
    h_max = min_int;
  }

let locked t f = Si_check.Lock.with_lock t.lock f

let add t v =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  locked t (fun () ->
      t.buckets.(i) <- t.buckets.(i) + 1;
      t.h_count <- t.h_count + 1;
      t.h_sum <- t.h_sum + v;
      if v < t.h_min then t.h_min <- v;
      if v > t.h_max then t.h_max <- v)

let count t = locked t (fun () -> t.h_count)
let sum t = locked t (fun () -> t.h_sum)
let min_value t = locked t (fun () -> if t.h_count = 0 then 0 else t.h_min)
let max_value t = locked t (fun () -> if t.h_count = 0 then 0 else t.h_max)

let mean t =
  locked t (fun () ->
      if t.h_count = 0 then 0.
      else float_of_int t.h_sum /. float_of_int t.h_count)

let quantile t q =
  locked t (fun () ->
      if t.h_count = 0 then 0.
      else
        let q = if q < 0. then 0. else if q > 1. then 1. else q in
        let rank =
          let r = int_of_float (ceil (q *. float_of_int t.h_count)) in
          if r < 1 then 1 else r
        in
        let i = ref 0 and seen = ref 0 in
        while !seen + t.buckets.(!i) < rank do
          seen := !seen + t.buckets.(!i);
          incr i
        done;
        (* Clamp the representative into the observed range so
           single-bucket distributions report an actual value. *)
        let r = representative !i in
        let r = if r < float_of_int t.h_min then float_of_int t.h_min else r in
        if r > float_of_int t.h_max then float_of_int t.h_max else r)

let median t = quantile t 0.5

let merge_into dst src =
  let sc, ss, smin, smax, sb =
    locked src (fun () ->
        (src.h_count, src.h_sum, src.h_min, src.h_max, Array.copy src.buckets))
  in
  if sc > 0 then
    locked dst (fun () ->
        Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) sb;
        dst.h_count <- dst.h_count + sc;
        dst.h_sum <- dst.h_sum + ss;
        if smin < dst.h_min then dst.h_min <- smin;
        if smax > dst.h_max then dst.h_max <- smax)

let merge a b =
  let t = create () in
  merge_into t a;
  merge_into t b;
  t

let clear t =
  locked t (fun () ->
      Array.fill t.buckets 0 bucket_count 0;
      t.h_count <- 0;
      t.h_sum <- 0;
      t.h_min <- max_int;
      t.h_max <- min_int)

type summary = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_buckets : (int * int) list;
}

let summary t =
  locked t (fun () ->
      let buckets = ref [] in
      for i = bucket_count - 1 downto 0 do
        if t.buckets.(i) > 0 then buckets := (i, t.buckets.(i)) :: !buckets
      done;
      {
        s_count = t.h_count;
        s_sum = t.h_sum;
        s_min = (if t.h_count = 0 then 0 else t.h_min);
        s_max = (if t.h_count = 0 then 0 else t.h_max);
        s_buckets = !buckets;
      })

let of_summary s =
  let t = create () in
  List.iter
    (fun (i, n) ->
      if i >= 0 && i < bucket_count && n > 0 then
        t.buckets.(i) <- t.buckets.(i) + n)
    s.s_buckets;
  t.h_count <- s.s_count;
  t.h_sum <- s.s_sum;
  if s.s_count > 0 then begin
    t.h_min <- s.s_min;
    t.h_max <- s.s_max
  end;
  t
