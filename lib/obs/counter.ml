type t = int Atomic.t

let create () = Atomic.make 0
let incr t = Atomic.incr t
let add t n = ignore (Atomic.fetch_and_add t n)
let get t = Atomic.get t
let reset t = Atomic.set t 0
