(** Hierarchical timed spans.

    A span covers one operation in one layer ("triple"/"insert",
    "wal"/"fsync", ...). Spans nest lexically: each domain keeps its
    own stack, so a span started while another is open on the same
    domain records that span as its parent, and concurrent domains
    never see each other's stacks. Finished spans land in a bounded
    ring buffer; when it fills, the oldest are dropped (and counted),
    never the writer blocked.

    Tracing is off by default. While off, [with_] runs its thunk
    directly — the only cost is one atomic load — which is what keeps
    instrumented hot paths free when nobody is looking. *)

type finished = {
  id : int;
  parent : int option;  (** Enclosing span on the same domain. *)
  layer : string;
  op : string;
  domain : int;  (** Domain the span ran on. *)
  start_ns : int;
  stop_ns : int;
}

val duration_ns : finished -> int

(** {1 Switch} *)

val on : unit -> bool
(** One atomic load; call-sites gate allocation-heavy work on it. *)

val enable : unit -> unit
val disable : unit -> unit

(** {1 Recording} *)

val with_ : layer:string -> op:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span when tracing is on, directly
    otherwise. The span is recorded even if the thunk raises. *)

val timed : Histogram.t -> layer:string -> op:string -> (unit -> 'a) -> 'a
(** Like [with_], but also feeds the duration into the histogram.
    The histogram only sees values while tracing is on, so disabled
    runs stay measurement-free. *)

(** {1 Draining} *)

val drain : unit -> finished list
(** Remove and return buffered spans, oldest first. *)

val dropped : unit -> int
(** Spans discarded because the buffer was full, since the last
    [drain]. *)

val set_capacity : int -> unit
(** Resize the ring buffer (default 4096). Discards buffered spans. *)

val set_exporter : (finished -> unit) option -> unit
(** Also hand each finished span to a callback, synchronously, from
    the finishing domain. [None] (the default) keeps buffering only. *)
