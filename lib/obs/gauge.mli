(** A last-value instrument: a lock-free integer that is {e set}, not
    accumulated — replication lag, queue depth, live connections.
    Counters only go up between resets; a gauge reports the current
    level of something that moves both ways. *)

type t

val create : unit -> t

val set : t -> int -> unit
(** Publish the current value (last write wins). *)

val get : t -> int

val max_to : t -> int -> unit
(** Raise the gauge to [v] if it is currently lower — a high-water
    mark updated racily from several domains stays correct. *)

val reset : t -> unit
(** Back to 0. *)
