(** A small JSON tree, printer, and parser.

    Enough JSON for the observability surface: [slimpad stats --json],
    histogram snapshots, and the bench harness's [--compare] mode
    reading recorded BENCH_*.json files back. Not a general-purpose
    codec — no streaming, whole-value in memory. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] indents with two spaces; the default is compact. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed). The error
    is a human-readable message with a byte offset. *)

(** {1 Accessors}

    All return [None] on a shape mismatch. [number] accepts [Int] or
    [Float]; [Int]s print without a decimal point and parse back as
    [Int], so numeric fields should be read with [number]. *)

val mem : string -> t -> t option
val str : t -> string option
val number : t -> float option
val int : t -> int option
val list : t -> t list option
