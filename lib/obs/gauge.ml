type t = int Atomic.t

let create () = Atomic.make 0
let set t v = Atomic.set t v
let get t = Atomic.get t

let max_to t v =
  let rec loop () =
    let cur = Atomic.get t in
    if v <= cur then ()
    else if Atomic.compare_and_set t cur v then ()
    else loop ()
  in
  loop ()

let reset t = Atomic.set t 0
