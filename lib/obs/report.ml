let hist_quantiles s =
  let h = Histogram.of_summary s in
  ( Histogram.mean h,
    Histogram.quantile h 0.5,
    Histogram.quantile h 0.9,
    Histogram.quantile h 0.99 )

(* Text *)

let fmt_ns f =
  if f >= 1e9 then Printf.sprintf "%.2fs" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2fms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.2fus" (f /. 1e3)
  else Printf.sprintf "%.0fns" f

let to_text (snap : Registry.snapshot) =
  let buf = Buffer.create 512 in
  let name_width rows =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 0 rows
  in
  if snap.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    let w = name_width snap.counters in
    List.iter
      (fun (name, n) -> Printf.bprintf buf "  %-*s %d\n" w name n)
      snap.counters
  end;
  if snap.gauges <> [] then begin
    if snap.counters <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf "gauges:\n";
    let w = name_width snap.gauges in
    List.iter
      (fun (name, n) -> Printf.bprintf buf "  %-*s %d\n" w name n)
      snap.gauges
  end;
  if snap.histograms <> [] then begin
    if snap.counters <> [] || snap.gauges <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf "latencies:\n";
    let w = name_width snap.histograms in
    Printf.bprintf buf "  %-*s %8s %10s %10s %10s %10s %10s\n" w "" "count"
      "mean" "p50" "p90" "p99" "max";
    List.iter
      (fun (name, s) ->
        let mean, p50, p90, p99 = hist_quantiles s in
        Printf.bprintf buf "  %-*s %8d %10s %10s %10s %10s %10s\n" w name
          s.Histogram.s_count (fmt_ns mean) (fmt_ns p50) (fmt_ns p90)
          (fmt_ns p99)
          (fmt_ns (float_of_int s.Histogram.s_max)))
      snap.histograms
  end;
  Buffer.contents buf

(* JSON *)

let to_json (snap : Registry.snapshot) =
  let counters =
    List.map (fun (name, n) -> (name, Json.Int n)) snap.counters
  in
  let gauges = List.map (fun (name, n) -> (name, Json.Int n)) snap.gauges in
  let histograms =
    List.map
      (fun (name, s) ->
        let mean, p50, p90, p99 = hist_quantiles s in
        ( name,
          Json.Obj
            [
              ("count", Json.Int s.Histogram.s_count);
              ("sum", Json.Int s.Histogram.s_sum);
              ("min", Json.Int s.Histogram.s_min);
              ("max", Json.Int s.Histogram.s_max);
              ("mean", Json.Float mean);
              ("p50", Json.Float p50);
              ("p90", Json.Float p90);
              ("p99", Json.Float p99);
              ( "buckets",
                Json.List
                  (List.map
                     (fun (i, n) -> Json.List [ Json.Int i; Json.Int n ])
                     s.Histogram.s_buckets) );
            ] ))
      snap.histograms
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let obj_fields = function
    | Some (Json.Obj fields) -> Ok fields
    | Some _ -> Error "expected an object"
    | None -> Ok []
  in
  let int_field fields key =
    match List.assoc_opt key fields with
    | Some (Json.Int i) -> Ok i
    | Some (Json.Float f) -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "missing integer field %S" key)
  in
  match j with
  | Json.Obj _ ->
      let* counters = obj_fields (Json.mem "counters" j) in
      let* counters =
        List.fold_left
          (fun acc (name, v) ->
            let* acc = acc in
            match Json.int v with
            | Some n -> Ok ((name, n) :: acc)
            | None -> Error (Printf.sprintf "counter %S is not an int" name))
          (Ok []) counters
      in
      let* gauges = obj_fields (Json.mem "gauges" j) in
      let* gauges =
        List.fold_left
          (fun acc (name, v) ->
            let* acc = acc in
            match Json.int v with
            | Some n -> Ok ((name, n) :: acc)
            | None -> Error (Printf.sprintf "gauge %S is not an int" name))
          (Ok []) gauges
      in
      let* histograms = obj_fields (Json.mem "histograms" j) in
      let* histograms =
        List.fold_left
          (fun acc (name, v) ->
            let* acc = acc in
            match v with
            | Json.Obj fields ->
                let* s_count = int_field fields "count" in
                let* s_sum = int_field fields "sum" in
                let* s_min = int_field fields "min" in
                let* s_max = int_field fields "max" in
                let* s_buckets =
                  match List.assoc_opt "buckets" fields with
                  | Some (Json.List items) ->
                      List.fold_left
                        (fun acc item ->
                          let* acc = acc in
                          match item with
                          | Json.List [ Json.Int i; Json.Int n ] ->
                              Ok ((i, n) :: acc)
                          | _ -> Error "bad bucket entry")
                        (Ok []) items
                      |> Result.map List.rev
                  | _ -> Error (Printf.sprintf "histogram %S: no buckets" name)
                in
                Ok
                  (( name,
                     Histogram.
                       { s_count; s_sum; s_min; s_max; s_buckets } )
                  :: acc)
            | _ -> Error (Printf.sprintf "histogram %S is not an object" name))
          (Ok []) histograms
      in
      Ok
        Registry.
          {
            counters = List.rev counters;
            gauges = List.rev gauges;
            histograms = List.rev histograms;
          }
  | _ -> Error "expected a stats object"

(* Prometheus exposition *)

let prom_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prometheus (snap : Registry.snapshot) =
  let buf = Buffer.create 512 in
  if snap.counters <> [] then begin
    Buffer.add_string buf "# TYPE si_events_total counter\n";
    List.iter
      (fun (name, n) ->
        Printf.bprintf buf "si_events_total{name=\"%s\"} %d\n"
          (prom_escape name) n)
      snap.counters
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string buf "# TYPE si_level gauge\n";
    List.iter
      (fun (name, n) ->
        Printf.bprintf buf "si_level{name=\"%s\"} %d\n" (prom_escape name) n)
      snap.gauges
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string buf "# TYPE si_latency_ns histogram\n";
    List.iter
      (fun (name, s) ->
        let name = prom_escape name in
        let cumulative = ref 0 in
        List.iter
          (fun (i, n) ->
            cumulative := !cumulative + n;
            let le =
              if i + 1 >= Histogram.bucket_count then max_int
              else Histogram.lower_bound (i + 1) - 1
            in
            Printf.bprintf buf "si_latency_ns_bucket{name=\"%s\",le=\"%d\"} %d\n"
              name le !cumulative)
          s.Histogram.s_buckets;
        Printf.bprintf buf "si_latency_ns_bucket{name=\"%s\",le=\"+Inf\"} %d\n"
          name s.Histogram.s_count;
        Printf.bprintf buf "si_latency_ns_sum{name=\"%s\"} %d\n" name
          s.Histogram.s_sum;
        Printf.bprintf buf "si_latency_ns_count{name=\"%s\"} %d\n" name
          s.Histogram.s_count)
      snap.histograms
  end;
  Buffer.contents buf

(* Span tree *)

let span_tree ?(timings = true) spans =
  let buf = Buffer.create 256 in
  let by_start a b =
    let c = compare a.Span.start_ns b.Span.start_ns in
    if c <> 0 then c else compare a.Span.id b.Span.id
  in
  let ids = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace ids s.Span.id ()) spans;
  let children = Hashtbl.create 64 in
  let roots =
    List.filter
      (fun s ->
        match s.Span.parent with
        | Some p when Hashtbl.mem ids p ->
            Hashtbl.replace children p
              (s :: (try Hashtbl.find children p with Not_found -> []));
            false
        | _ -> true)
      spans
  in
  let rec print depth s =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Printf.bprintf buf "%s.%s" s.Span.layer s.Span.op;
    if timings then
      Printf.bprintf buf " %s"
        (fmt_ns (float_of_int (Span.duration_ns s)));
    Buffer.add_char buf '\n';
    let kids =
      try List.sort by_start (Hashtbl.find children s.Span.id)
      with Not_found -> []
    in
    List.iter (print (depth + 1)) kids
  in
  List.iter (print 0) (List.sort by_start roots);
  Buffer.contents buf
