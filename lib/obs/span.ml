type finished = {
  id : int;
  parent : int option;
  layer : string;
  op : string;
  domain : int;
  start_ns : int;
  stop_ns : int;
}

let duration_ns f =
  let d = f.stop_ns - f.start_ns in
  if d < 0 then 0 else d

let enabled = Atomic.make false
let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let next_id = Atomic.make 1

(* Each domain tracks the ids of its open spans; the head is the
   parent of whatever starts next on that domain. *)
let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Finished spans: a mutex-guarded ring. Writers never block on a full
   ring — the oldest entry is overwritten and counted as dropped. *)
let lock = Si_check.Lock.create ~class_:"obs.span.ring"
let default_capacity = 4096
let ring = ref (Array.make default_capacity None)
let head = ref 0 (* next write position *)
let stored = ref 0
let dropped_count = ref 0
let exporter : (finished -> unit) option ref = ref None

let locked f = Si_check.Lock.with_lock lock f

let record fin =
  locked (fun () ->
      let cap = Array.length !ring in
      if !stored = cap then (
        incr dropped_count;
        (* overwriting the oldest: head already points at it *)
        (!ring).(!head) <- Some fin;
        head := (!head + 1) mod cap)
      else (
        (!ring).((!head + !stored) mod cap) <- Some fin;
        incr stored));
  match !exporter with None -> () | Some f -> f fin

let drain () =
  locked (fun () ->
      let cap = Array.length !ring in
      let out = ref [] in
      for i = !stored - 1 downto 0 do
        match (!ring).((!head + i) mod cap) with
        | Some fin -> out := fin :: !out
        | None -> ()
      done;
      Array.fill !ring 0 cap None;
      head := 0;
      stored := 0;
      dropped_count := 0;
      !out)

let dropped () = locked (fun () -> !dropped_count)

let set_capacity n =
  let n = if n < 1 then 1 else n in
  locked (fun () ->
      ring := Array.make n None;
      head := 0;
      stored := 0;
      dropped_count := 0)

let set_exporter f = exporter := f

let finish ~id ~layer ~op ~start_ns stack =
  let stop_ns = Clock.now () in
  let parent = match !stack with [] -> None | p :: _ -> Some p in
  record
    {
      id;
      parent;
      layer;
      op;
      domain = (Domain.self () :> int);
      start_ns;
      stop_ns;
    };
  stop_ns

let traced layer op f after =
  let stack = Domain.DLS.get stack_key in
  let id = Atomic.fetch_and_add next_id 1 in
  let start_ns = Clock.now () in
  stack := id :: !stack;
  match f () with
  | v ->
      stack := List.tl !stack;
      let stop_ns = finish ~id ~layer ~op ~start_ns stack in
      after (stop_ns - start_ns);
      v
  | exception e ->
      stack := List.tl !stack;
      let stop_ns = finish ~id ~layer ~op ~start_ns stack in
      after (stop_ns - start_ns);
      raise e

let nothing (_ : int) = ()
let with_ ~layer ~op f = if on () then traced layer op f nothing else f ()

let timed h ~layer ~op f =
  if on () then traced layer op f (fun d -> Histogram.add h (if d < 0 then 0 else d))
  else f ()
