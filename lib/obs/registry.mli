(** The process-wide instrument registry.

    Instruments are named "layer.op" ("triple.insert", "wal.fsync").
    [counter] and [histogram] get-or-create: call them once at module
    init and keep the handle — lookups take a lock, increments don't.
    Reporters read a [snapshot]; everything in it is sorted by name so
    output is stable. *)

val counter : string -> Counter.t
val histogram : string -> Histogram.t
val gauge : string -> Gauge.t

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * Histogram.summary) list;
}

val snapshot : unit -> snapshot
(** Nonzero counters and gauges, nonempty histograms only. *)

val reset : unit -> unit
(** Zero every counter and clear every histogram. Handles stay
    valid. *)
