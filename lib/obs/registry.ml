let lock = Si_check.Lock.create ~class_:"obs.registry"
let counters : (string, Counter.t) Hashtbl.t = Hashtbl.create 32
let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32
let gauges : (string, Gauge.t) Hashtbl.t = Hashtbl.create 32
let locked f = Si_check.Lock.with_lock lock f

let get_or tbl create name =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some v -> v
      | None ->
          let v = create () in
          Hashtbl.add tbl name v;
          v)

let counter name = get_or counters Counter.create name
let histogram name = get_or histograms Histogram.create name
let gauge name = get_or gauges Gauge.create name

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * Histogram.summary) list;
}

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  let cs, gs, hs =
    locked (fun () ->
        ( sorted_bindings counters,
          sorted_bindings gauges,
          sorted_bindings histograms ))
  in
  {
    counters =
      List.filter_map
        (fun (name, c) ->
          let n = Counter.get c in
          if n = 0 then None else Some (name, n))
        cs;
    gauges =
      List.filter_map
        (fun (name, g) ->
          let n = Gauge.get g in
          if n = 0 then None else Some (name, n))
        gs;
    histograms =
      List.filter_map
        (fun (name, h) ->
          let s = Histogram.summary h in
          if s.Histogram.s_count = 0 then None else Some (name, s))
        hs;
  }

let reset () =
  let cs, gs, hs =
    locked (fun () ->
        ( sorted_bindings counters,
          sorted_bindings gauges,
          sorted_bindings histograms ))
  in
  List.iter (fun (_, c) -> Counter.reset c) cs;
  List.iter (fun (_, g) -> Gauge.reset g) gs;
  List.iter (fun (_, h) -> Histogram.clear h) hs

(* Metric export for the lock sanitizer. Si_check sits below si_obs
   (so these very locks can be instrumented); it pushes hold times and
   contention through this sink. The sink runs under Si_check's
   re-entrancy guard, so the registry/histogram locks it takes here
   are not themselves instrumented. *)
let () =
  Si_check.set_clock Clock.now;
  Si_check.set_sink
    (Some
       {
         Si_check.s_hold =
           (fun ~class_name ~ns ->
             Histogram.add (histogram ("check.lock.hold." ^ class_name)) ns);
         s_long =
           (fun ~class_name ~ns:_ ->
             Counter.incr (counter ("check.lock.long_hold." ^ class_name)));
         s_contended =
           (fun ~class_name ->
             Counter.incr (counter ("check.lock.contended." ^ class_name)));
       })
