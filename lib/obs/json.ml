type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Printing *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity
        then Buffer.add_string buf "null"
        else Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then (
              Buffer.add_char buf '\n';
              pad (depth + 1));
            go (depth + 1) item)
          items;
        if pretty then (
          Buffer.add_char buf '\n';
          pad depth);
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then (
              Buffer.add_char buf '\n';
              pad (depth + 1));
            escape buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) v)
          fields;
        if pretty then (
          Buffer.add_char buf '\n';
          pad depth);
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* Parsing: plain recursive descent over the string. *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                pos := !pos + 4;
                (* Encode the code point as UTF-8; surrogates land
                   as-is, which is fine for our ASCII-ish payloads. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then (
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
                else (
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "json: %s at byte %d" msg at)

(* Accessors *)

let mem key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function String s -> Some s | _ -> None

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let int = function Int i -> Some i | _ -> None
let list = function List l -> Some l | _ -> None
