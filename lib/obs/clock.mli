(** The time source behind spans and latency histograms.

    [Si_obs] is stdlib-only, and the OCaml stdlib has no monotonic
    wall-clock, so the clock is pluggable: the default reads
    [Sys.time] (process CPU time — monotonic, coarse), and hosts that
    link a better source install it at startup. The CLI installs a
    [Unix.gettimeofday]-based clock; the bench harness installs
    bechamel's [clock_gettime(CLOCK_MONOTONIC)] stubs; tests install a
    deterministic tick counter. *)

val now : unit -> int
(** Current time in nanoseconds. Only differences are meaningful; the
    epoch is whatever the installed source uses. *)

val set : (unit -> int) -> unit
(** Install a nanosecond clock. The function must be safe to call from
    any domain and must never go backwards within a domain. *)

val reset : unit -> unit
(** Restore the default [Sys.time]-based clock. *)
