let default () = int_of_float (Sys.time () *. 1e9)
let current = Atomic.make default
let set f = Atomic.set current f
let reset () = Atomic.set current default
let now () = (Atomic.get current) ()
