module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module Model = Si_metamodel.Model
module Validate = Si_metamodel.Validate
module B = Bundle_model

type journal_entry = {
  seq : int;
  op : string;
  target : string;
  detail : string;
}

type journal_event =
  | Journal_logged of journal_entry
  | Journal_cleared
  | Journal_truncated_to of int

type t = {
  trim : Trim.t;
  bm : B.t;
  mutable journal_rev : journal_entry list;
  mutable journal_seq : int;
  mutable journal_observer : (journal_event -> unit) option;
}
type pad = Pad of string
type bundle = Bundle of string
type scrap = Scrap of string
type link = Link of string
type coordinate = { x : int; y : int }

let create ?store () =
  let trim = Trim.create ?store () in
  {
    trim;
    bm = B.install trim;
    journal_rev = [];
    journal_seq = 0;
    journal_observer = None;
  }

let on_journal t f = t.journal_observer <- Some f

let notify_journal t ev =
  match t.journal_observer with Some f -> f ev | None -> ()

let trim t = t.trim
let model t = t.bm
let triple_count t = Trim.size t.trim

(* Record one mutating operation. *)
let journal_log t op target detail =
  t.journal_seq <- t.journal_seq + 1;
  let entry = { seq = t.journal_seq; op; target; detail } in
  t.journal_rev <- entry :: t.journal_rev;
  notify_journal t (Journal_logged entry)

let atomically t body =
  let saved_rev = t.journal_rev and saved_seq = t.journal_seq in
  let restore () =
    t.journal_rev <- saved_rev;
    t.journal_seq <- saved_seq;
    (* Journal entries logged by the failed body were already observed
       (and possibly written ahead); tell the observer they are gone. *)
    notify_journal t (Journal_truncated_to saved_seq)
  in
  match Trim.transaction t.trim body with
  | Ok (Ok _ as ok) -> ok
  | Ok (Error _ as e) ->
      restore ();
      e
  | Error exn ->
      restore ();
      raise exn

let journal t = List.rev t.journal_rev
let journal_length t = List.length t.journal_rev

let clear_journal t =
  t.journal_rev <- [];
  t.journal_seq <- 0;
  notify_journal t Journal_cleared

(* Replay-side primitives: restore journal state without notifying the
   observer (the WAL already holds these events). *)

let append_journal_entry t entry =
  t.journal_rev <- entry :: t.journal_rev;
  if entry.seq > t.journal_seq then t.journal_seq <- entry.seq

let truncate_journal_to t seq =
  t.journal_rev <- List.filter (fun e -> e.seq <= seq) t.journal_rev;
  t.journal_seq <- seq

(* WAL record codec for journal entries, built on the same field-list
   encoding as every other Si_wal payload. *)

let journal_record_tag = "j"

let journal_entry_to_record e =
  Si_wal.Record.encode_fields
    [ journal_record_tag; string_of_int e.seq; e.op; e.target; e.detail ]

let journal_entry_of_record payload =
  match Si_wal.Record.decode_fields payload with
  | Error _ as e -> e
  | Ok [ tag; seq; op; target; detail ] when tag = journal_record_tag -> (
      match int_of_string_opt seq with
      | Some seq -> Ok { seq; op; target; detail }
      | None -> Error (Printf.sprintf "journal record has bad seq %S" seq))
  | Ok (tag :: _) ->
      Error (Printf.sprintf "not a journal record (tag %S)" tag)
  | Ok [] -> Error "empty journal record"

(* ------------------------------------------------------------------ ids *)

let pad_id (Pad id) = id
let bundle_id (Bundle id) = id
let scrap_id (Scrap id) = id
let link_id (Link id) = id

let typed_as t construct id =
  Model.instance_type t.trim id = Some construct.Model.construct_id

let pad_of_id t id = if typed_as t t.bm.B.slimpad id then Some (Pad id) else None
let bundle_of_id t id =
  if typed_as t t.bm.B.bundle id then Some (Bundle id) else None
let scrap_of_id t id =
  if typed_as t t.bm.B.scrap id then Some (Scrap id) else None
let link_of_id t id = if typed_as t t.bm.B.link id then Some (Link id) else None

(* Creation order: ids are "<prefix>-<n>" with n monotonically increasing
   (Trim.new_id); sort by the numeric suffix. *)
let id_ordinal id =
  match String.rindex_opt id '-' with
  | None -> max_int
  | Some i -> (
      match int_of_string_opt (String.sub id (i + 1) (String.length id - i - 1))
      with
      | Some n -> n
      | None -> max_int)

let by_creation ids =
  List.sort
    (fun a b ->
      match compare (id_ordinal a) (id_ordinal b) with
      | 0 -> String.compare a b
      | c -> c)
    ids

(* ---------------------------------------------------------- coordinates *)

let coordinate_to_literal { x; y } = Printf.sprintf "%d,%d" x y

let coordinate_of_literal s =
  match String.split_on_char ',' s with
  | [ xs; ys ] -> (
      match (int_of_string_opt xs, int_of_string_opt ys) with
      | Some x, Some y -> Some { x; y }
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------- helpers *)

let literal t id pred ~default =
  Option.value (Trim.literal_of t.trim ~subject:id ~predicate:pred) ~default

let set_literal t id pred v =
  Model.set_property t.bm.B.model id pred (Triple.literal v)

let resources_of t id pred =
  Trim.select ~subject:id ~predicate:pred t.trim
  |> List.filter_map (fun (tr : Triple.t) ->
         match tr.object_ with
         | Triple.Resource r -> Some r
         | Triple.Literal _ -> None)

(* --------------------------------------------------------- creation ops *)

let new_bundle t ~name ?pos ?width ?height () =
  let id = Model.new_instance t.bm.B.model t.bm.B.bundle () in
  set_literal t id B.bundle_name name;
  Option.iter (fun p -> set_literal t id B.bundle_pos (coordinate_to_literal p)) pos;
  Option.iter (fun w -> set_literal t id B.bundle_width (string_of_int w)) width;
  Option.iter
    (fun h -> set_literal t id B.bundle_height (string_of_int h))
    height;
  Bundle id

let create_slimpad t ~pad_name =
  let id = Model.new_instance t.bm.B.model t.bm.B.slimpad () in
  set_literal t id B.pad_name pad_name;
  let (Bundle root) = new_bundle t ~name:pad_name () in
  Model.set_property t.bm.B.model id B.root_bundle (Triple.resource root);
  journal_log t "create_slimpad" id (Printf.sprintf "pad %S" pad_name);
  Pad id

let create_bundle t ~name ?pos ?width ?height ~parent:(Bundle parent) () =
  let (Bundle id) = new_bundle t ~name ?pos ?width ?height () in
  Model.add_property t.bm.B.model parent B.nested_bundle (Triple.resource id);
  journal_log t "create_bundle" id
    (Printf.sprintf "bundle %S in <%s>" name parent);
  Bundle id

let create_scrap t ~name ?pos ~mark_id ~parent:(Bundle parent) () =
  let id = Model.new_instance t.bm.B.model t.bm.B.scrap () in
  set_literal t id B.scrap_name name;
  Option.iter (fun p -> set_literal t id B.scrap_pos (coordinate_to_literal p)) pos;
  let handle = Model.new_instance t.bm.B.model t.bm.B.mark_handle () in
  set_literal t handle B.mark_id mark_id;
  Model.set_property t.bm.B.model id B.scrap_mark (Triple.resource handle);
  Model.add_property t.bm.B.model parent B.bundle_content (Triple.resource id);
  journal_log t "create_scrap" id
    (Printf.sprintf "scrap %S (mark %s) in <%s>" name mark_id parent);
  Scrap id

(* --------------------------------------------------------------- lookup *)

let pad_name t (Pad id) = literal t id B.pad_name ~default:""

let pads t =
  Model.instances_of t.bm.B.model t.bm.B.slimpad
  |> List.map (fun id -> Pad id)
  |> List.sort (fun a b -> String.compare (pad_name t a) (pad_name t b))

let find_pad t name = List.find_opt (fun p -> pad_name t p = name) (pads t)

let root_bundle t (Pad id) =
  match Trim.resource_of t.trim ~subject:id ~predicate:B.root_bundle with
  | Some r -> Bundle r
  | None -> invalid_arg (Printf.sprintf "pad <%s> has no root bundle" id)

let update_pad_name t (Pad id) name =
  set_literal t id B.pad_name name;
  journal_log t "update_pad_name" id (Printf.sprintf "renamed to %S" name)

(* ---------------------------------------------------------- bundle ops *)

let bundle_name t (Bundle id) = literal t id B.bundle_name ~default:""

let bundle_pos t (Bundle id) =
  Option.bind
    (Trim.literal_of t.trim ~subject:id ~predicate:B.bundle_pos)
    coordinate_of_literal

let bundle_size t (Bundle id) =
  match
    ( Option.bind
        (Trim.literal_of t.trim ~subject:id ~predicate:B.bundle_width)
        int_of_string_opt,
      Option.bind
        (Trim.literal_of t.trim ~subject:id ~predicate:B.bundle_height)
        int_of_string_opt )
  with
  | Some w, Some h -> Some (w, h)
  | _ -> None

let scraps t (Bundle id) =
  by_creation (resources_of t id B.bundle_content)
  |> List.map (fun s -> Scrap s)

let nested_bundles t (Bundle id) =
  by_creation (resources_of t id B.nested_bundle)
  |> List.map (fun b -> Bundle b)

let bundle_parent t (Bundle id) =
  match
    Trim.select ~predicate:B.nested_bundle ~object_:(Triple.resource id) t.trim
  with
  | tr :: _ -> Some (Bundle tr.Triple.subject)
  | [] -> None

let is_root_bundle t (Bundle id) =
  Trim.select ~predicate:B.root_bundle ~object_:(Triple.resource id) t.trim
  <> []

let update_bundle_name t (Bundle id) name =
  set_literal t id B.bundle_name name;
  journal_log t "update_bundle_name" id (Printf.sprintf "renamed to %S" name)

let move_bundle t (Bundle id) pos =
  set_literal t id B.bundle_pos (coordinate_to_literal pos);
  journal_log t "move_bundle" id ("to " ^ coordinate_to_literal pos)

let resize_bundle t (Bundle id) ~width ~height =
  set_literal t id B.bundle_width (string_of_int width);
  set_literal t id B.bundle_height (string_of_int height)

let rec descendant_bundles t b =
  b :: List.concat_map (descendant_bundles t) (nested_bundles t b)

let bundle_descendant_count t b =
  let all = descendant_bundles t b in
  (List.length all,
   List.fold_left (fun n bb -> n + List.length (scraps t bb)) 0 all)

let reparent_bundle t (Bundle id) ~parent:(Bundle new_parent) =
  if is_root_bundle t (Bundle id) then Error "cannot reparent a root bundle"
  else if
    List.exists
      (fun (Bundle d) -> d = new_parent)
      (descendant_bundles t (Bundle id))
  then Error "cannot nest a bundle inside itself or its descendants"
  else begin
    (* Detach from the old parent, attach to the new one. *)
    Trim.select ~predicate:B.nested_bundle ~object_:(Triple.resource id) t.trim
    |> List.iter (fun tr -> ignore (Trim.remove t.trim tr));
    Model.add_property t.bm.B.model new_parent B.nested_bundle
      (Triple.resource id);
    Ok ()
  end

(* ----------------------------------------------------------- scrap ops *)

let scrap_name t (Scrap id) = literal t id B.scrap_name ~default:""

let scrap_pos t (Scrap id) =
  Option.bind
    (Trim.literal_of t.trim ~subject:id ~predicate:B.scrap_pos)
    coordinate_of_literal

let scrap_handle t (Scrap id) =
  Trim.resource_of t.trim ~subject:id ~predicate:B.scrap_mark

let scrap_mark_id t s =
  match scrap_handle t s with
  | Some handle -> literal t handle B.mark_id ~default:""
  | None -> ""

let scrap_parent t (Scrap id) =
  match
    Trim.select ~predicate:B.bundle_content ~object_:(Triple.resource id)
      t.trim
  with
  | tr :: _ -> Some (Bundle tr.Triple.subject)
  | [] -> None

let update_scrap_name t (Scrap id) name =
  set_literal t id B.scrap_name name;
  journal_log t "update_scrap_name" id (Printf.sprintf "renamed to %S" name)

let move_scrap t (Scrap id) pos =
  set_literal t id B.scrap_pos (coordinate_to_literal pos);
  journal_log t "move_scrap" id ("to " ^ coordinate_to_literal pos)

let set_scrap_mark t s mark =
  match scrap_handle t s with
  | Some handle -> set_literal t handle B.mark_id mark
  | None ->
      let handle = Model.new_instance t.bm.B.model t.bm.B.mark_handle () in
      set_literal t handle B.mark_id mark;
      Model.set_property t.bm.B.model (scrap_id s) B.scrap_mark
        (Triple.resource handle)

let reparent_scrap t (Scrap id) ~parent:(Bundle new_parent) =
  Trim.select ~predicate:B.bundle_content ~object_:(Triple.resource id) t.trim
  |> List.iter (fun tr -> ignore (Trim.remove t.trim tr));
  Model.add_property t.bm.B.model new_parent B.bundle_content
    (Triple.resource id);
  journal_log t "reparent_scrap" id (Printf.sprintf "into <%s>" new_parent)

(* ----------------------------------------------------- links (§6 ext.) *)

let links t =
  Model.instances_of t.bm.B.model t.bm.B.link
  |> by_creation
  |> List.map (fun id -> Link id)

let link_ends t (Link id) =
  match
    ( Trim.resource_of t.trim ~subject:id ~predicate:B.link_from,
      Trim.resource_of t.trim ~subject:id ~predicate:B.link_to )
  with
  | Some f, Some x -> Some (Scrap f, Scrap x)
  | _ -> None

let link_label t (Link id) =
  Trim.literal_of t.trim ~subject:id ~predicate:B.link_label

let link_scraps t ?label ~from_:(Scrap f) ~to_:(Scrap x) () =
  let id = Model.new_instance t.bm.B.model t.bm.B.link () in
  Model.set_property t.bm.B.model id B.link_from (Triple.resource f);
  Model.set_property t.bm.B.model id B.link_to (Triple.resource x);
  Option.iter (fun l -> set_literal t id B.link_label l) label;
  journal_log t "link_scraps" id (Printf.sprintf "<%s> -> <%s>" f x);
  Link id

let links_of_scrap t (Scrap id) =
  links t
  |> List.filter (fun l ->
         match link_ends t l with
         | Some (Scrap f, Scrap x) -> f = id || x = id
         | None -> false)

let delete_link t (Link id) =
  ignore (Model.delete_instance t.bm.B.model id)

(* -------------------------------------------------- decorations (Fig 4) *)

type decoration = Decoration of string

let add_decoration t (Bundle parent) ~kind ?pos () =
  let id = Model.new_instance t.bm.B.model t.bm.B.decoration () in
  set_literal t id B.decor_kind kind;
  Option.iter
    (fun p -> set_literal t id B.decor_pos (coordinate_to_literal p))
    pos;
  Model.add_property t.bm.B.model parent B.bundle_decoration
    (Triple.resource id);
  Decoration id

let decorations t (Bundle id) =
  by_creation (resources_of t id B.bundle_decoration)
  |> List.map (fun d -> Decoration d)

let decoration_kind t (Decoration id) = literal t id B.decor_kind ~default:""

let decoration_pos t (Decoration id) =
  Option.bind
    (Trim.literal_of t.trim ~subject:id ~predicate:B.decor_pos)
    coordinate_of_literal

let move_decoration t (Decoration id) pos =
  set_literal t id B.decor_pos (coordinate_to_literal pos)

let delete_decoration t (Decoration id) =
  ignore (Model.delete_instance t.bm.B.model id)

(* ------------------------------------------------------------ deletion *)

let delete_scrap t (Scrap id) =
  List.iter (delete_link t) (links_of_scrap t (Scrap id));
  (match scrap_handle t (Scrap id) with
  | Some handle -> ignore (Model.delete_instance t.bm.B.model handle)
  | None -> ());
  journal_log t "delete_scrap" id "";
  ignore (Model.delete_instance t.bm.B.model id)

let rec delete_bundle_tree t b =
  List.iter (delete_scrap t) (scraps t b);
  List.iter (delete_decoration t) (decorations t b);
  List.iter (delete_bundle_tree t) (nested_bundles t b);
  ignore (Model.delete_instance t.bm.B.model (bundle_id b))

let delete_bundle t b =
  if is_root_bundle t b then
    Error "cannot delete a pad's root bundle; delete the pad"
  else begin
    journal_log t "delete_bundle" (bundle_id b) "";
    delete_bundle_tree t b;
    Ok ()
  end

let delete_slimpad t (Pad id) =
  journal_log t "delete_slimpad" id "";
  delete_bundle_tree t (root_bundle t (Pad id));
  ignore (Model.delete_instance t.bm.B.model id)

(* ---------------------------------------------------- annotations (§6) *)

let annotate_scrap t (Scrap id) text =
  Model.add_property t.bm.B.model id B.annotation (Triple.literal text);
  journal_log t "annotate_scrap" id (Printf.sprintf "note %S" text)

let annotations t (Scrap id) =
  Trim.select ~subject:id ~predicate:B.annotation t.trim
  |> List.filter_map (fun (tr : Triple.t) ->
         match tr.object_ with
         | Triple.Literal l -> Some l
         | Triple.Resource _ -> None)
  |> List.sort String.compare

let remove_annotation t (Scrap id) text =
  Trim.remove t.trim (Triple.make id B.annotation (Triple.literal text))

(* ------------------------------------------------------ templates (§6) *)

let set_template t (Bundle id) flag =
  if flag then set_literal t id B.is_template "true"
  else
    Trim.select ~subject:id ~predicate:B.is_template t.trim
    |> List.iter (fun tr -> ignore (Trim.remove t.trim tr))

let is_template t (Bundle id) =
  Trim.literal_of t.trim ~subject:id ~predicate:B.is_template = Some "true"

let templates t =
  Model.instances_of t.bm.B.model t.bm.B.bundle
  |> List.filter (fun id -> is_template t (Bundle id))
  |> by_creation
  |> List.map (fun id -> Bundle id)

let rec copy_bundle_into t src ~name ~parent =
  (* Snapshot the source's children before creating the copy: when the
     copy lands inside the source's own subtree (instantiating a template
     into itself), reading the lists afterwards would include the fresh
     copy and recurse forever. *)
  let src_scraps = scraps t src in
  let src_decorations = decorations t src in
  let src_nested = nested_bundles t src in
  let copy =
    create_bundle t ~name ?pos:(bundle_pos t src)
      ?width:(Option.map fst (bundle_size t src))
      ?height:(Option.map snd (bundle_size t src))
      ~parent ()
  in
  List.iter
    (fun s ->
      let copied =
        create_scrap t ~name:(scrap_name t s) ?pos:(scrap_pos t s)
          ~mark_id:(scrap_mark_id t s) ~parent:copy ()
      in
      List.iter (annotate_scrap t copied) (annotations t s))
    src_scraps;
  List.iter
    (fun d ->
      ignore
        (add_decoration t copy ~kind:(decoration_kind t d)
           ?pos:(decoration_pos t d) ()))
    src_decorations;
  List.iter
    (fun nested ->
      ignore
        (copy_bundle_into t nested ~name:(bundle_name t nested) ~parent:copy))
    src_nested;
  copy

let instantiate_template t ~template ~name ~parent =
  if not (is_template t template) then
    Error (Printf.sprintf "<%s> is not a template" (bundle_id template))
  else begin
    let copy = copy_bundle_into t template ~name ~parent in
    set_template t copy false;
    journal_log t "instantiate_template" (bundle_id copy)
      (Printf.sprintf "from <%s>" (bundle_id template));
    Ok copy
  end

(* --------------------------------------------------------- persistence *)

let journal_to_xml t =
  Si_xmlk.Node.element "journal"
    (List.map
       (fun e ->
         Si_xmlk.Node.element "entry"
           ~attrs:
             [
               ("seq", string_of_int e.seq); ("op", e.op);
               ("target", e.target);
             ]
           (if e.detail = "" then [] else [ Si_xmlk.Node.text e.detail ]))
       (journal t))

let load_journal t node =
  match node with
  | Si_xmlk.Node.Element { name = "journal"; _ } ->
      let entries =
        List.filter_map
          (fun entry ->
            match
              ( Option.bind (Si_xmlk.Node.attr "seq" entry) int_of_string_opt,
                Si_xmlk.Node.attr "op" entry,
                Si_xmlk.Node.attr "target" entry )
            with
            | Some seq, Some op, Some target ->
                Some
                  { seq; op; target;
                    detail = Si_xmlk.Node.text_content entry }
            | _ -> None)
          (Si_xmlk.Node.find_children "entry" node)
      in
      t.journal_rev <- List.rev entries;
      t.journal_seq <-
        List.fold_left (fun m e -> max m e.seq) 0 entries;
      Ok ()
  | _ -> Error "expected a <journal> element"

let validate t = Validate.check t.bm.B.model
let to_xml t = Trim.to_xml t.trim

let of_trim trim =
  {
    trim;
    bm = B.install trim;
    journal_rev = [];
    journal_seq = 0;
    journal_observer = None;
  }

let of_xml ?store root = Result.map of_trim (Trim.of_xml ?store root)

let save t path = Trim.save t.trim path

let load ?store path =
  match Trim.load ?store path with
  | Error _ as e -> e
  | Ok trim ->
      Ok {
        trim;
        bm = B.install trim;
        journal_rev = [];
        journal_seq = 0;
        journal_observer = None;
      }

let equal_contents a b = Trim.equal_contents a.trim b.trim
