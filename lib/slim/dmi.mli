(** The SLIMPad Data Manipulation Interface (paper §4.4, Figs 9–10).

    "The superimposed application interacts with application data, which
    for SLIMPad are read-only objects that represent the Bundle-Scrap
    model of Figure 3, plus an application-specific Data Manipulation
    Interface (DMI). … When SLIMPad needs to create a Bundle, it calls the
    Create_Bundle operation in the DMI, which creates a Bundle object for
    SLIMPad plus the triples to represent a new Bundle. By restricting
    manipulation of data through the DMI, we store the triples without
    intervention from the superimposed application."

    [pad], [bundle], [scrap] and [link] are opaque — the OCaml counterpart
    of Fig 10's read-only application-data interfaces: the only way to
    mutate is through the operations here, so the triple representation
    and the application's view can never diverge. Every accessor reads
    straight from the triples. *)

type t
type pad
type bundle
type scrap
type link

type coordinate = { x : int; y : int }

val create : ?store:(module Si_triple.Store.S) -> unit -> t
(** A fresh SLIM store with the Bundle-Scrap model installed. *)

val trim : t -> Si_triple.Trim.t
(** The underlying triple manager (benchmarks measure it; applications
    should not touch it). *)

val model : t -> Bundle_model.t
val triple_count : t -> int

(** {1 Ids}

    Resource ids, for wiring to marks and rendering. [*_of_id] validate
    that the resource is currently an instance of the right construct. *)

val pad_id : pad -> string
val bundle_id : bundle -> string
val scrap_id : scrap -> string
val link_id : link -> string
val pad_of_id : t -> string -> pad option
val bundle_of_id : t -> string -> bundle option
val scrap_of_id : t -> string -> scrap option
val link_of_id : t -> string -> link option

(** {1 Create operations (Fig 10)} *)

val create_slimpad : t -> pad_name:string -> pad
(** Also creates the pad's root bundle (Fig 3: [rootBundle] is 1..1). *)

val create_bundle :
  t -> name:string -> ?pos:coordinate -> ?width:int -> ?height:int ->
  parent:bundle -> unit -> bundle

val create_scrap :
  t -> name:string -> ?pos:coordinate -> mark_id:string -> parent:bundle ->
  unit -> scrap
(** Creates the Scrap and its MarkHandle; [mark_id] "refers to a Mark
    object inside the Mark Manager" (Fig 3). *)

(** {1 Lookup} *)

val pads : t -> pad list
(** Sorted by name. *)

val find_pad : t -> string -> pad option
(** By pad name. *)

val root_bundle : t -> pad -> bundle

(** {1 Pad operations} *)

val pad_name : t -> pad -> string
val update_pad_name : t -> pad -> string -> unit
val delete_slimpad : t -> pad -> unit
(** Deletes the pad, its whole bundle tree, scraps, handles and links. *)

(** {1 Bundle operations} *)

val bundle_name : t -> bundle -> string
val bundle_pos : t -> bundle -> coordinate option
val bundle_size : t -> bundle -> (int * int) option
(** (width, height). *)

val scraps : t -> bundle -> scrap list
(** Direct scraps, in creation order. *)

val nested_bundles : t -> bundle -> bundle list
val bundle_parent : t -> bundle -> bundle option
(** [None] for a root bundle. *)

val update_bundle_name : t -> bundle -> string -> unit
val move_bundle : t -> bundle -> coordinate -> unit
val resize_bundle : t -> bundle -> width:int -> height:int -> unit
val reparent_bundle : t -> bundle -> parent:bundle -> (unit, string) result
(** Fails if [parent] is the bundle itself or one of its descendants, or
    if the bundle is a pad's root. *)

val delete_bundle : t -> bundle -> (unit, string) result
(** Recursive: nested bundles, scraps, handles, links touching those
    scraps. Fails on a pad's root bundle (delete the pad instead). *)

val bundle_descendant_count : t -> bundle -> int * int
(** (bundles, scraps) in the subtree, the bundle itself included. *)

(** {1 Scrap operations} *)

val scrap_name : t -> scrap -> string
val scrap_pos : t -> scrap -> coordinate option
val scrap_mark_id : t -> scrap -> string
(** The mark identifier carried by the scrap's MarkHandle. *)

val scrap_parent : t -> scrap -> bundle option
val update_scrap_name : t -> scrap -> string -> unit
val move_scrap : t -> scrap -> coordinate -> unit
val set_scrap_mark : t -> scrap -> string -> unit
(** Repoints the scrap's MarkHandle at another mark id. *)

val reparent_scrap : t -> scrap -> parent:bundle -> unit
val delete_scrap : t -> scrap -> unit
(** Also removes the MarkHandle and any links touching the scrap. *)

(** {1 Annotations on scraps (§6 extension)} *)

val annotate_scrap : t -> scrap -> string -> unit
val annotations : t -> scrap -> string list
(** Sorted. *)

val remove_annotation : t -> scrap -> string -> bool

(** {1 Links among scraps (§6 extension)} *)

val link_scraps : t -> ?label:string -> from_:scrap -> to_:scrap -> unit -> link
val links : t -> link list
val link_ends : t -> link -> (scrap * scrap) option
val link_label : t -> link -> string option
val links_of_scrap : t -> scrap -> link list
(** Links where the scrap is either end. *)

val delete_link : t -> link -> unit

(** {1 Decorations (Fig 4's "gridlet")}

    "The 'gridlet' in this bundle is simply a graphic element with scraps
    placed near it." A decoration is positioned, mark-less furniture;
    like everything else it carries no enforced semantics. *)

type decoration

val add_decoration :
  t -> bundle -> kind:string -> ?pos:coordinate -> unit -> decoration
val decorations : t -> bundle -> decoration list
(** In creation order. *)

val decoration_kind : t -> decoration -> string
val decoration_pos : t -> decoration -> coordinate option
val move_decoration : t -> decoration -> coordinate -> unit
val delete_decoration : t -> decoration -> unit

(** {1 Bundle templates (§6 extension)} *)

val set_template : t -> bundle -> bool -> unit
val is_template : t -> bundle -> bool
val templates : t -> bundle list
val instantiate_template :
  t -> template:bundle -> name:string -> parent:bundle ->
  (bundle, string) result
(** Deep-copies the template's subtree (bundles, scraps, mark handles —
    scraps keep their mark ids) under [parent] with a new name. Clears the
    template flag on the copy. *)

(** {1 Transactions} *)

val atomically : t -> (unit -> ('a, 'e) result) -> ('a, 'e) result
(** All-or-nothing DMI updates over {!Si_triple.Trim.transaction}: when
    the body returns [Error] or raises, every triple change {e and} every
    journal entry from the body is rolled back. Exceptions re-raise after
    rollback. Does not nest. *)

(** {1 Operation journal}

    The paper's field work values bundles as {e evidence of awareness}
    (§2: "manual construction involves active processing of information,
    thus generates awareness of it, and provides evidence to others of
    that awareness"; sharing bundles "establish[es] collectively
    maintained, situated awareness"). The journal records every mutating
    DMI operation in order, so a shared pad carries its construction
    history — who-did-what-when in structure (no clock: entries are
    sequence-numbered). *)

type journal_entry = {
  seq : int;
  op : string;  (** operation name, e.g. ["create_scrap"] *)
  target : string;  (** resource id the operation touched *)
  detail : string;  (** human-readable summary *)
}

val journal : t -> journal_entry list
(** Oldest first. *)

val journal_length : t -> int
val clear_journal : t -> unit
val journal_to_xml : t -> Si_xmlk.Node.t
val load_journal : t -> Si_xmlk.Node.t -> (unit, string) result
(** Replaces the in-memory journal with entries from a [<journal>]
    element (as written by {!journal_to_xml}); later operations append
    after the loaded history. *)

(** {2 Journal observation and WAL encoding}

    Journaled persistence subscribes to journal changes the same way it
    subscribes to triple mutations ({!Si_triple.Trim.on_mutate}):
    every event is reported once, after it happened.
    [Journal_truncated_to n] is emitted when {!atomically} rolls back —
    entries with [seq > n] were discarded. *)

type journal_event =
  | Journal_logged of journal_entry
  | Journal_cleared
  | Journal_truncated_to of int

val on_journal : t -> (journal_event -> unit) -> unit
(** Install the observer (at most one; a second call replaces the
    first). The observer must not mutate this DMI. *)

val append_journal_entry : t -> journal_entry -> unit
(** Replay-side: append an entry exactly as recorded (the sequence
    counter advances to cover it). Does not notify {!on_journal}. *)

val truncate_journal_to : t -> int -> unit
(** Replay-side inverse of [Journal_truncated_to]: drop entries with
    [seq] greater than the argument. Does not notify {!on_journal}. *)

val journal_record_tag : string
(** ["j"] — first field of an encoded journal entry record. *)

val journal_entry_to_record : journal_entry -> string
(** Encode for the write-ahead log, using the same
    {!Si_wal.Record.encode_fields} codec as triple and mark records. *)

val journal_entry_of_record : string -> (journal_entry, string) result

(** {1 Conformance & persistence} *)

val validate : t -> Si_metamodel.Validate.report
(** Schema-later conformance check of the whole store against the
    Bundle-Scrap model. A store manipulated only through this DMI is
    always valid. *)

val to_xml : t -> Si_xmlk.Node.t
val of_xml : ?store:(module Si_triple.Store.S) -> Si_xmlk.Node.t ->
  (t, string) result

val of_trim : Si_triple.Trim.t -> t
(** Adopt an already-populated manager (fresh journal, no observer) —
    how the binary snapshot path rebuilds a DMI without a round-trip
    through XML. The manager must not be shared with another DMI. *)

val save : t -> string -> (unit, string) result
(** Crash-safe (temp file + rename, via {!Si_triple.Trim.save}). *)

val load : ?store:(module Si_triple.Store.S) -> string -> (t, string) result
val equal_contents : t -> t -> bool
