(** The Bundle-Scrap model (paper Fig 3), defined over the metamodel.

    "The model consists of four main entities. The top-level object is a
    SlimPad, which designates a root bundle. Each Bundle has a label and
    position, and can contain any number of Scraps or Bundles. A Scrap …
    has a label and a MarkHandle object. A MarkHandle has a mark
    identifier, which refers to a Mark object inside the Mark Manager."

    The §6 extensions (annotations on scraps, links among scraps, bundle
    templates) are modelled here too, as additional constructs and
    connectors — the metamodel makes extending the model a data change. *)

type t = {
  model : Si_metamodel.Model.t;
  slimpad : Si_metamodel.Model.construct;
  bundle : Si_metamodel.Model.construct;
  scrap : Si_metamodel.Model.construct;
  mark_handle : Si_metamodel.Model.construct;  (** a mark construct *)
  link : Si_metamodel.Model.construct;  (** §6: explicit links among scraps *)
  decoration : Si_metamodel.Model.construct;
      (** Fig 4's "gridlet": "simply a graphic element with scraps placed
          near it" — positioned, mark-less furniture inside a bundle *)
  string_ : Si_metamodel.Model.construct;
  coordinate : Si_metamodel.Model.construct;
  number : Si_metamodel.Model.construct;
}

val install : Si_triple.Trim.t -> t
(** Defines (idempotently) the model named ["bundle-scrap"] in the triple
    manager and returns handles on its constructs. *)

(** {1 Connector predicates}

    The property names used by instance triples — exactly the attribute
    and association names of Fig 3 (plus the extension predicates). *)

val pad_name : string
val root_bundle : string
val bundle_name : string
val bundle_pos : string
val bundle_width : string
val bundle_height : string
val bundle_content : string
val nested_bundle : string
val scrap_name : string
val scrap_pos : string
val scrap_mark : string
val mark_id : string
val annotation : string
(** §6 extension: Scrap -> String, 0..* *)

val link_from : string
(** §6 extension: Link -> Scrap, 1..1 *)

val link_to : string
(** Link -> Scrap, 1..1 *)

val link_label : string
(** Link -> String, 0..1 *)

val is_template : string
(** §6 extension: Bundle -> String flag *)

val bundle_decoration : string
(** Bundle -> Decoration, 0..* *)

val decor_kind : string
(** Decoration -> String, 1..1 (e.g. "gridlet", "divider") *)

val decor_pos : string
(** Decoration -> Coordinate, 0..1 *)

val layout_predicates : string list
(** The purely presentational predicates (positions and sizes):
    [bundlePos], [bundleWidth], [bundleHeight], [scrapPos], [decorPos].
    A triple under one of these whose subject is not a typed instance
    carries no information — [Si_lint] flags (and can GC) such
    orphans. *)
