module Model = Si_metamodel.Model

type t = {
  model : Model.t;
  slimpad : Model.construct;
  bundle : Model.construct;
  scrap : Model.construct;
  mark_handle : Model.construct;
  link : Model.construct;
  decoration : Model.construct;
  string_ : Model.construct;
  coordinate : Model.construct;
  number : Model.construct;
}

let pad_name = "padName"
let root_bundle = "rootBundle"
let bundle_name = "bundleName"
let bundle_pos = "bundlePos"
let bundle_width = "bundleWidth"
let bundle_height = "bundleHeight"
let bundle_content = "bundleContent"
let nested_bundle = "nestedBundle"
let scrap_name = "scrapName"
let scrap_pos = "scrapPos"
let scrap_mark = "scrapMark"
let mark_id = "markId"
let annotation = "annotation"
let link_from = "linkFrom"
let link_to = "linkTo"
let link_label = "linkLabel"
let is_template = "isTemplate"
let bundle_decoration = "bundleDecoration"
let decor_kind = "decorKind"
let decor_pos = "decorPos"

let layout_predicates =
  [ bundle_pos; bundle_width; bundle_height; scrap_pos; decor_pos ]

let install trim =
  let model = Model.define trim ~name:"bundle-scrap" in
  let slimpad = Model.construct model "SlimPad" in
  let bundle = Model.construct model "Bundle" in
  let scrap = Model.construct model "Scrap" in
  let mark_handle = Model.mark_construct model "MarkHandle" in
  let link = Model.construct model "Link" in
  let decoration = Model.construct model "Decoration" in
  let string_ = Model.literal_construct model "String" in
  let coordinate = Model.literal_construct model "Coordinate" in
  let number = Model.literal_construct model "Number" in
  let conn name from_ to_ card =
    ignore (Model.connect model ~name ~from_ ~to_ ~card ())
  in
  (* Fig 3 multiplicities. *)
  conn pad_name slimpad string_ Model.one_card;
  conn root_bundle slimpad bundle Model.one_card;
  conn bundle_name bundle string_ Model.one_card;
  conn bundle_pos bundle coordinate Model.optional_card;
  conn bundle_width bundle number Model.optional_card;
  conn bundle_height bundle number Model.optional_card;
  conn bundle_content bundle scrap Model.any_card;
  conn nested_bundle bundle bundle Model.any_card;
  conn scrap_name scrap string_ Model.one_card;
  conn scrap_pos scrap coordinate Model.optional_card;
  conn scrap_mark scrap mark_handle Model.one_card;
  conn mark_id mark_handle string_ Model.one_card;
  (* §6 extensions. *)
  conn annotation scrap string_ Model.any_card;
  conn link_from link scrap Model.one_card;
  conn link_to link scrap Model.one_card;
  conn link_label link string_ Model.optional_card;
  conn is_template bundle string_ Model.optional_card;
  conn bundle_decoration bundle decoration Model.any_card;
  conn decor_kind decoration string_ Model.one_card;
  conn decor_pos decoration coordinate Model.optional_card;
  {
    model;
    slimpad;
    bundle;
    scrap;
    mark_handle;
    link;
    decoration;
    string_;
    coordinate;
    number;
  }
