(** The replication crash matrix: scripted fault schedules over a live
    leader/follower cluster, checked against the invariants the design
    promises.

    Each scenario builds real journaled pads ({!Si_slimpad.Slimpad})
    under a scratch directory, drives WAL shipping through in-process
    transports (wrapped in {!Faults.wrap_transport} where the scenario
    calls for a lossy wire), injects its fault — dropped, duplicated,
    mangled, or delayed frames; a follower crash mid-apply; a leader
    crash mid-ship; a corrupted archive segment; a failover that
    deposes the old leader — and then checks:

    - {e zero acknowledged-write loss}: records a follower
      acknowledged survive its crash and the leader's;
    - {e prefix consistency}: every replica's state is exactly the
      leader's records [1..applied];
    - {e convergence}: after the fault clears, bounded shipping rounds
      bring every replica to the leader's exact store contents.

    Everything is seeded ({!Si_workload.Rng}) and headless: CI runs
    {!run} as a gate and publishes {!to_json} as an artifact, and any
    failure replays exactly. *)

type outcome = {
  scenario : string;
  passed : bool;
  detail : string;  (** What was verified, or how the check failed. *)
}

val scenario_names : unit -> string list
(** The scenarios {!run} executes, in order. *)

val run : ?seed:int -> dir:string -> unit -> outcome list
(** Run every scenario under [dir] (created when missing; each scenario
    uses its own subdirectory, left behind for inspection). Default
    [seed] 2001 — the same seed replays the same schedule. Never
    raises: a scenario's failure, including an unexpected exception,
    becomes a failed {!outcome}. *)

val all_passed : outcome list -> bool

val to_json : outcome list -> string
(** A flat JSON array of [{"scenario", "passed", "detail"}] objects —
    the CI artifact. *)

val to_text : outcome list -> string
(** One aligned [PASS]/[FAIL] line per scenario. *)
