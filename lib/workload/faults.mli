(** Deterministic fault injection for base-source access.

    A failure-injecting document-opener combinator that plugs under every
    mark module's opener (via {!Si_mark.Desktop.install_modules}'s [wrap]
    hook), so tests and benchmarks can script base-source outages — the
    paper's documents are "outside the box" and may be closed, moved, or
    deleted at any time — without touching the modules themselves.
    Everything is seeded by {!Rng}, so a scripted outage replays exactly. *)

type schedule =
  | Healthy  (** Pass-through (counts calls, injects nothing). *)
  | Fail_rate of float
      (** Each call fails with this probability (seeded coin) —
          a flaky, transiently-faulty source. *)
  | Fail_first of int
      (** The first [n] calls fail, then the source recovers — an outage
          with a scripted end, e.g. for driving a breaker's half-open
          probe back to closed. *)
  | Dead  (** Every call fails — the source is permanently gone. *)

type t

val create : ?seed:int -> ?only:string list -> schedule -> t
(** [only] restricts injection to the named documents (default: every
    document); calls to other names pass straight through, uncounted.
    Default [seed] 2001. *)

val schedule : t -> schedule
val calls : t -> int
(** Opener calls that reached this injector (post-[only] filter). *)

val injected : t -> int
(** How many of those were failed. *)

val reset : t -> unit
(** Zero the counters and re-seed the coin (same seed: same replay). *)

val wrap : t -> Si_mark.Desktop.opener_wrap
(** The combinator to pass to [Desktop.install_modules ~wrap]. Injected
    failures read ["injected fault: …"] and are indistinguishable from
    real opener errors to the code under test. *)

val wrap_opener :
  t -> (string -> ('a, string) result) -> string -> ('a, string) result
(** The same combinator over a single opener, for tests that build mark
    modules directly. *)

(** {2 Storage faults} *)

type corruption =
  | Truncate of int
      (** Keep only the first [n] bytes — a crash mid-append. *)
  | Flip_byte of int
      (** XOR the byte at this offset (clamped into range) — media rot
          or a torn sector; framing CRCs must catch it. *)
  | Duplicate_tail of int
      (** Re-append the last [n] bytes — a replayed partial write. *)

val corrupt_file : string -> corruption -> int
(** Damage the file in place. Returns the effective offset/length the
    damage landed on (arguments are clamped to the file size).
    @raise Sys_error on I/O trouble. *)

val cut_file : string -> int -> int
(** [cut_file path offset] is [corrupt_file path (Truncate offset)] —
    the on-disk state a process crash mid-append leaves behind.
    Crash-recovery tests drive {!Si_wal.Log.open_} over every offset of
    a log with this. Returns the effective cut point ([offset] clamped
    to the file size).
    @raise Sys_error on I/O trouble. *)

(** {2 Network faults} *)

type frame_fault =
  | Drop  (** The frame never arrives; the sender sees an error. *)
  | Duplicate  (** Delivered twice; receivers must deduplicate. *)
  | Mangle  (** A mid-frame byte is flipped; framing CRCs must catch it. *)
  | Delay
      (** Held back and delivered {e after} the following frame — an
          out-of-order arrival the receiver must buffer or Nack. *)

val all_frame_faults : frame_fault list

val wrap_transport :
  t ->
  ?faults:frame_fault list ->
  (string -> (string, string) result) ->
  string ->
  (string, string) result
(** A lossy wire around a synchronous replication transport. Each frame
    consults the schedule; faulted frames draw uniformly from [faults]
    (default {!all_frame_faults}). Drop and Delay surface as
    ["injected fault: …"] errors to the sender, exactly like a real
    send timeout. At most one frame is in the delay stash at a time. *)
