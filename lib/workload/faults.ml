(* Deterministic fault injection: a combinator under the document openers.
   Schedules are seeded by Rng, so an outage scripted in a test or bench
   replays identically across runs and platforms. *)

module Desktop = Si_mark.Desktop

type schedule = Healthy | Fail_rate of float | Fail_first of int | Dead

type t = {
  sched : schedule;
  seed : int;
  mutable rng : Rng.t;
  only : string list option;
  mutable calls : int;
  mutable injected : int;
}

let create ?(seed = 2001) ?only sched =
  { sched; seed; rng = Rng.create seed; only; calls = 0; injected = 0 }

let schedule t = t.sched
let calls t = t.calls
let injected t = t.injected

let reset t =
  t.rng <- Rng.create t.seed;
  t.calls <- 0;
  t.injected <- 0

let applies t name =
  match t.only with None -> true | Some names -> List.mem name names

(* Decide the fate of call number [t.calls] (already incremented). *)
let should_fail t =
  match t.sched with
  | Healthy -> false
  | Dead -> true
  | Fail_first n -> t.calls <= n
  | Fail_rate p -> Rng.float t.rng 1.0 < p

let wrap_opener t opener name =
  if not (applies t name) then opener name
  else begin
    t.calls <- t.calls + 1;
    if should_fail t then begin
      t.injected <- t.injected + 1;
      Error
        (Printf.sprintf "injected fault: %s unavailable (call %d)" name
           t.calls)
    end
    else opener name
  end

let wrap t = { Desktop.wrap = (fun opener name -> wrap_opener t opener name) }

(* Crash simulation for the storage layer: damage a file (e.g. a
   write-ahead log or a shipped segment) the way real failures do. *)

type corruption =
  | Truncate of int
  | Flip_byte of int
  | Duplicate_tail of int

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_whole path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let corrupt_file path damage =
  let contents = read_whole path in
  let len = String.length contents in
  match damage with
  | Truncate offset ->
      let keep = max 0 (min offset len) in
      write_whole path (String.sub contents 0 keep);
      keep
  | Flip_byte offset ->
      let at = max 0 (min offset (len - 1)) in
      if len = 0 then 0
      else begin
        let b = Bytes.of_string contents in
        Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
        write_whole path (Bytes.to_string b);
        at
      end
  | Duplicate_tail n ->
      let n = max 0 (min n len) in
      write_whole path (contents ^ String.sub contents (len - n) n);
      n

let cut_file path offset = corrupt_file path (Truncate offset)

(* Network simulation for the replication layer: a lossy wire around a
   synchronous request/response transport. Delayed frames are held in a
   one-slot stash and delivered after the following frame — an
   out-of-order arrival the receiver must buffer or Nack. *)

type frame_fault = Drop | Duplicate | Mangle | Delay

let all_frame_faults = [ Drop; Duplicate; Mangle; Delay ]

let mangle_frame frame =
  if frame = "" then frame
  else begin
    let b = Bytes.of_string frame in
    let at = Bytes.length b / 2 in
    Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
    Bytes.to_string b
  end

let wrap_transport t ?(faults = all_frame_faults) send =
  let stash = ref None in
  let flush () =
    match !stash with
    | None -> ()
    | Some held ->
        stash := None;
        ignore (send held)
  in
  fun frame ->
    t.calls <- t.calls + 1;
    if not (should_fail t) then begin
      let r = send frame in
      flush ();
      r
    end
    else begin
      t.injected <- t.injected + 1;
      match Rng.pick t.rng faults with
      | Drop ->
          flush ();
          Error (Printf.sprintf "injected fault: frame dropped (call %d)" t.calls)
      | Duplicate ->
          ignore (send frame);
          let r = send frame in
          flush ();
          r
      | Mangle ->
          let r = send (mangle_frame frame) in
          flush ();
          r
      | Delay ->
          flush ();
          stash := Some frame;
          Error (Printf.sprintf "injected fault: frame delayed (call %d)" t.calls)
    end
