(* Deterministic fault injection: a combinator under the document openers.
   Schedules are seeded by Rng, so an outage scripted in a test or bench
   replays identically across runs and platforms. *)

module Desktop = Si_mark.Desktop

type schedule = Healthy | Fail_rate of float | Fail_first of int | Dead

type t = {
  sched : schedule;
  seed : int;
  mutable rng : Rng.t;
  only : string list option;
  mutable calls : int;
  mutable injected : int;
}

let create ?(seed = 2001) ?only sched =
  { sched; seed; rng = Rng.create seed; only; calls = 0; injected = 0 }

let schedule t = t.sched
let calls t = t.calls
let injected t = t.injected

let reset t =
  t.rng <- Rng.create t.seed;
  t.calls <- 0;
  t.injected <- 0

let applies t name =
  match t.only with None -> true | Some names -> List.mem name names

(* Decide the fate of call number [t.calls] (already incremented). *)
let should_fail t =
  match t.sched with
  | Healthy -> false
  | Dead -> true
  | Fail_first n -> t.calls <= n
  | Fail_rate p -> Rng.float t.rng 1.0 < p

let wrap_opener t opener name =
  if not (applies t name) then opener name
  else begin
    t.calls <- t.calls + 1;
    if should_fail t then begin
      t.injected <- t.injected + 1;
      Error
        (Printf.sprintf "injected fault: %s unavailable (call %d)" name
           t.calls)
    end
    else opener name
  end

let wrap t = { Desktop.wrap = (fun opener name -> wrap_opener t opener name) }

(* Crash simulation for the storage layer: chop a file (e.g. a
   write-ahead log) at an arbitrary byte offset, exactly what a process
   death mid-append leaves behind. Returns the clamped offset. *)
let cut_file path offset =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let keep = max 0 (min offset (String.length contents)) in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (String.sub contents 0 keep));
  keep
