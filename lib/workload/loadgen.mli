(** Open-loop load generation against a pad server ({!Si_serve}).

    Arrivals follow a fixed schedule derived from the target rate —
    independent of responses, so a slow server accumulates the backlog
    a real arrival process would bring (the only honest way to find the
    overload knee). Each client domain owns one TCP connection and
    every [clients]-th arrival slot; request choice is drawn from a
    seeded {!Rng}, so a run replays exactly. *)

type mix = { reads : int; writes : int; bulk : int }
(** Relative weights. Reads rotate over count/select/pads; writes are
    single triple adds; bulk entries submit background
    {!Si_serve.Proto.Bulk_add} jobs at [Bulk] priority. *)

val default_mix : mix
(** 8 reads : 2 writes : 0 bulk. *)

type result = {
  sent : int;
  ok : int;
  overloaded : int;  (** Typed backpressure responses. *)
  rejected_bulk : int;  (** The [overloaded] that were bulk submits. *)
  errors : int;  (** [Err] responses plus transport failures. *)
  elapsed_ns : int;  (** Slowest client's wall time. *)
  latency : Si_obs.Histogram.t;  (** Client-observed RTT, nanoseconds. *)
}

val run :
  ?seed:int ->
  ?clients:int ->
  ?mix:mix ->
  ?addr:string ->
  port:int ->
  rate:float ->
  requests:int ->
  unit ->
  result
(** Drive [requests] total arrivals at [rate] per second across
    [clients] (default 2) concurrent connections and merge the
    per-client tallies. Deterministic in [seed] (default 2001) up to
    actual timing.
    @raise Invalid_argument on a non-positive [clients] or [rate]. *)

val quantile_ns : result -> float -> float
(** RTT quantile in nanoseconds ({!Si_obs.Histogram.quantile}). *)

val to_json : result -> string
(** One JSON object (counts plus p50/p90/p99 RTT) — the CI smoke
    artifact format. *)
