(* The replication crash matrix: scripted fault schedules over a live
   leader/follower cluster, checked against the invariants the design
   promises — zero acknowledged-write loss, prefix consistency on every
   replica, deterministic convergence after the fault clears. Every
   scenario is headless and seeded, so CI runs it as a gate and a
   failure replays exactly. *)

module Slimpad = Si_slimpad.Slimpad
module Dmi = Si_slim.Dmi

type outcome = { scenario : string; passed : bool; detail : string }

exception Check of string

let failf fmt = Printf.ksprintf (fun s -> raise (Check s)) fmt

let ok_or what = function
  | Ok v -> v
  | Error e -> failf "%s: %s" what e

let expect_error what = function
  | Ok _ -> failf "%s unexpectedly succeeded" what
  | Error (_ : string) -> ()

(* --- cluster helpers ------------------------------------------------- *)

let scratch dir name =
  let d = Filename.concat dir name in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  d

let desk () = Si_mark.Desktop.create ()

let make_leader ?(segment_records = 4) dir name =
  let app, _ =
    ok_or "open_wal" (Slimpad.open_wal (desk ()) (Filename.concat dir (name ^ ".wal")))
  in
  let pad = Slimpad.new_pad app (name ^ "-pad") in
  ok_or "start_shipping"
    (Slimpad.start_shipping ~segment_records app
       ~archive:(Filename.concat dir (name ^ ".archive")));
  (app, pad)

let make_follower dir name =
  let app, _ =
    ok_or "open_replica"
      (Slimpad.open_replica (desk ()) (Filename.concat dir (name ^ ".wal")))
  in
  app

let replica_of app = Option.get (Slimpad.replica app)
let shipper_of app = Option.get (Slimpad.shipper app)

let transport ?seed ?rate ?faults app =
  let base = Si_wal.Replica.transport (replica_of app) in
  match faults with
  | None -> base
  | Some fs ->
      let inj =
        Faults.create ?seed
          (Faults.Fail_rate (Option.value rate ~default:0.3))
      in
      Faults.wrap_transport inj ~faults:fs base

(* The handshake itself crosses the (possibly lossy) wire, so retry it
   like the shipper retries records — unless the reply fenced us. *)
let attach ?(tries = 16) leader ~name send =
  let rec go n =
    match Slimpad.attach_follower leader ~name send with
    | Ok () -> ()
    | Error _ when n > 0 && not (Si_wal.Ship.is_fenced (shipper_of leader))
      ->
        go (n - 1)
    | Error e -> failf "attach %s: %s" name e
  in
  go tries

let churn app pad ~from n =
  let root = Dmi.root_bundle (Slimpad.dmi app) pad in
  for i = from to from + n - 1 do
    ignore
      (Slimpad.add_bundle app ~parent:root
         ~name:(Printf.sprintf "node-%04d" i)
         ())
  done

let converged leader follower =
  Si_wal.Replica.applied (replica_of follower)
  = Si_wal.Ship.seq (shipper_of leader)
  && Si_triple.Trim.equal_contents
       (Dmi.trim (Slimpad.dmi leader))
       (Dmi.trim (Slimpad.dmi follower))

(* Ship until every listed follower converges. The round budget is
   generous: with seeded fault rates well under 1, the retry budgets
   inside [Ship.ship] make convergence certain long before it runs
   out — exhausting it is a finding, not flakiness. *)
let pump ?(rounds = 64) leader followers =
  let rec go r =
    if r = 0 then
      failf "no convergence after %d ship rounds (lag %d)" rounds
        (Si_wal.Ship.lag (shipper_of leader))
    else begin
      ok_or "ship" (Slimpad.ship leader);
      if not (List.for_all (converged leader) followers) then go (r - 1)
    end
  in
  go rounds

(* A crash is files-only: copy the WAL pair to a fresh path and reopen
   that, leaving the "crashed" process's in-memory state behind. *)
let copy_file src dst =
  if Sys.file_exists src then
    Out_channel.with_open_bin dst (fun oc ->
        In_channel.with_open_bin src (fun ic ->
            Out_channel.output_string oc (In_channel.input_all ic)))

let crash_copy dir ~from_name ~to_name =
  let src = Filename.concat dir (from_name ^ ".wal") in
  let dst = Filename.concat dir (to_name ^ ".wal") in
  copy_file src dst;
  copy_file (Si_wal.Log.snapshot_path src) (Si_wal.Log.snapshot_path dst);
  dst

(* --- scenarios ------------------------------------------------------- *)

let clean_replication dir seed =
  let dir = scratch dir "clean" in
  let leader, pad = make_leader dir "leader" in
  let f1 = make_follower dir "f1" and f2 = make_follower dir "f2" in
  attach leader ~name:"f1" (transport ~seed f1);
  attach leader ~name:"f2" (transport ~seed f2);
  churn leader pad ~from:1 25;
  pump leader [ f1; f2 ];
  ok_or "checkpoint" (Slimpad.ship_checkpoint leader);
  (match Si_wal.Segment.verify (Si_wal.Ship.archive (shipper_of leader)) with
  | Ok [] -> ()
  | Ok ps -> failf "clean archive reports %d problem(s)" (List.length ps)
  | Error e -> failf "verify: %s" e);
  "2 followers converged, archive verifies clean"

let frame_fault_scenario fault fault_name dir seed =
  let dir = scratch dir fault_name in
  let leader, pad = make_leader dir "leader" in
  let f = make_follower dir "f" in
  attach leader ~name:"f" (transport f);
  churn leader pad ~from:1 30;
  (* Faults only from here on: the handshake above stays clean so the
     scenario exercises steady-state shipping, not attachment. *)
  attach leader ~name:"f" (transport ~seed ~faults:fault f);
  churn leader pad ~from:100 30;
  pump leader [ f ];
  Printf.sprintf "converged through injected %s faults" fault_name

let follower_crash_mid_apply dir seed =
  let dir = scratch dir "follower-crash" in
  let leader, pad = make_leader dir "leader" in
  let f = make_follower dir "f" in
  attach leader ~name:"f" (transport ~seed ~faults:[ Faults.Drop ] f);
  churn leader pad ~from:1 20;
  (* One lossy round leaves the follower mid-stream; crash it there. *)
  ok_or "ship" (Slimpad.ship leader);
  let applied_before = Si_wal.Replica.applied (replica_of f) in
  let crashed = crash_copy dir ~from_name:"f" ~to_name:"f2" in
  let f2, _ = ok_or "reopen replica" (Slimpad.open_replica (desk ()) crashed) in
  if Si_wal.Replica.applied (replica_of f2) <> applied_before then
    failf "restart lost applied records: %d <> %d"
      (Si_wal.Replica.applied (replica_of f2))
      applied_before;
  attach leader ~name:"f" (transport f2);
  churn leader pad ~from:100 10;
  pump leader [ f2 ];
  Printf.sprintf "follower restarted at applied=%d and reconverged"
    applied_before

let leader_crash_mid_ship dir seed =
  let dir = scratch dir "leader-crash" in
  let leader, pad = make_leader dir "leader" in
  let f = make_follower dir "f" in
  attach leader ~name:"f" (transport ~seed ~faults:[ Faults.Drop ] f);
  churn leader pad ~from:1 20;
  (* A lossy round ships part of the stream, then the leader crashes
     with the rest still in its open (volatile) segment buffer. *)
  ok_or "ship" (Slimpad.ship leader);
  let acked = Si_wal.Replica.applied (replica_of f) in
  let crashed = crash_copy dir ~from_name:"leader" ~to_name:"leader2" in
  (* The old leader's in-memory state is abandoned, never closed: a
     crash seals nothing. *)
  let leader2, _ = ok_or "reopen leader" (Slimpad.open_wal (desk ()) crashed) in
  ok_or "resume shipping"
    (Slimpad.start_shipping ~segment_records:4 leader2
       ~archive:(Filename.concat dir "leader.archive"));
  if Si_wal.Ship.seq (shipper_of leader2) < acked then
    failf "restarted leader renumbered: resumed at %d below acked %d"
      (Si_wal.Ship.seq (shipper_of leader2))
      acked;
  let pad2 =
    match Dmi.pads (Slimpad.dmi leader2) with
    | p :: _ -> p
    | [] -> failf "restarted leader lost its pad"
  in
  attach leader2 ~name:"f" (transport f);
  churn leader2 pad2 ~from:200 10;
  pump leader2 [ f ];
  if Si_wal.Replica.applied (replica_of f) < acked then
    failf "acknowledged records lost across leader crash";
  Printf.sprintf
    "leader resumed at seq=%d (acked prefix %d preserved) and reconverged"
    (Si_wal.Ship.seq (shipper_of leader2))
    acked

let torn_segment_catchup dir seed =
  let dir = scratch dir "torn-segment" in
  let leader, pad = make_leader ~segment_records:2 dir "leader" in
  churn leader pad ~from:1 10;
  ok_or "sync" (Slimpad.wal_sync leader);
  ok_or "seal" (Slimpad.ship_checkpoint leader);
  let archive = Si_wal.Ship.archive (shipper_of leader) in
  let seg =
    match
      List.filter
        (fun f -> Filename.check_suffix f ".seg")
        (Array.to_list (Sys.readdir archive))
    with
    | s :: _ -> Filename.concat archive s
    | [] -> failf "no sealed segment to damage"
  in
  ignore (Faults.corrupt_file seg (Faults.Flip_byte 40));
  (match Si_wal.Segment.verify archive with
  | Ok [] -> failf "damaged archive verifies clean"
  | Ok _ -> ()
  | Error e -> failf "verify: %s" e);
  (* A fresh follower can no longer be fed record-by-record through the
     damaged segment; the checkpoint base written above must carry it
     over the hole. *)
  let f = make_follower dir "f" in
  attach leader ~name:"f" (transport ~seed f);
  churn leader pad ~from:100 5;
  pump leader [ f ];
  "new follower converged over a corrupted segment via the base snapshot"

let promote_fences_old_leader dir seed =
  let dir = scratch dir "promote" in
  let leader, pad = make_leader dir "leader" in
  let f1 = make_follower dir "f1" and f2 = make_follower dir "f2" in
  attach leader ~name:"f1" (transport ~seed f1);
  attach leader ~name:"f2" (transport f2);
  churn leader pad ~from:1 15;
  pump leader [ f1; f2 ];
  let old_term = Si_wal.Ship.term (shipper_of leader) in
  let new_term =
    ok_or "promote"
      (Slimpad.promote_replica f1 ~archive:(Filename.concat dir "f1.archive"))
  in
  if new_term <= old_term then
    failf "promotion did not advance the term: %d -> %d" old_term new_term;
  (* The deposed leader reconnects: its next push is answered Fenced,
     permanently. *)
  churn leader pad ~from:100 3;
  expect_error "old leader shipping after failover" (Slimpad.ship leader);
  expect_error "old leader shipping again" (Slimpad.ship leader);
  (* The survivors re-form around the new leader and converge. *)
  attach f1 ~name:"f2" (transport f2);
  let pad1 =
    match Dmi.pads (Slimpad.dmi f1) with
    | p :: _ -> p
    | [] -> failf "promoted follower has no pad"
  in
  churn f1 pad1 ~from:200 10;
  pump f1 [ f2 ];
  Printf.sprintf "term %d -> %d; old leader fenced; survivors converged"
    old_term new_term

let scenarios =
  [
    ("clean-replication", clean_replication);
    ("frame-drop", frame_fault_scenario [ Faults.Drop ] "frame-drop");
    ( "frame-duplicate",
      frame_fault_scenario [ Faults.Duplicate ] "frame-duplicate" );
    ("frame-mangle", frame_fault_scenario [ Faults.Mangle ] "frame-mangle");
    ("frame-delay", frame_fault_scenario [ Faults.Delay ] "frame-delay");
    ( "frame-chaos",
      frame_fault_scenario Faults.all_frame_faults "frame-chaos" );
    ("follower-crash-mid-apply", follower_crash_mid_apply);
    ("leader-crash-mid-ship", leader_crash_mid_ship);
    ("torn-segment-catchup", torn_segment_catchup);
    ("promote-fences-old-leader", promote_fences_old_leader);
  ]

let scenario_names () = List.map fst scenarios

let run ?(seed = 2001) ~dir () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun (name, scenario) ->
      match scenario dir seed with
      | detail -> { scenario = name; passed = true; detail }
      | exception Check detail -> { scenario = name; passed = false; detail }
      | exception e ->
          { scenario = name; passed = false; detail = Printexc.to_string e })
    scenarios

let all_passed = List.for_all (fun o -> o.passed)

(* --- reporting ------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json outcomes =
  let row o =
    Printf.sprintf
      "  {\"scenario\": \"%s\", \"passed\": %b, \"detail\": \"%s\"}"
      (json_escape o.scenario) o.passed (json_escape o.detail)
  in
  "[\n" ^ String.concat ",\n" (List.map row outcomes) ^ "\n]\n"

let to_text outcomes =
  let row o =
    Printf.sprintf "%-28s %s  %s" o.scenario
      (if o.passed then "PASS" else "FAIL")
      o.detail
  in
  String.concat "\n" (List.map row outcomes)
