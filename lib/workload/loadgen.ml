(* Open-loop load generation against a pad server.

   Open-loop means arrivals follow a fixed schedule computed from the
   target rate, not from responses: a request whose slot has passed is
   sent immediately rather than skipped, so a slow server faces the
   backlog a real arrival process would bring — the only honest way to
   find the overload knee. Each client domain owns one connection and
   every [clients]-th arrival slot; the mix is drawn from a seeded
   {!Rng}, so a run replays exactly. *)

module Client = Si_serve.Client
module Proto = Si_serve.Proto
module Triple = Si_triple.Triple

type mix = { reads : int; writes : int; bulk : int }

let default_mix = { reads = 8; writes = 2; bulk = 0 }

type result = {
  sent : int;
  ok : int;
  overloaded : int;
  rejected_bulk : int;  (* the [overloaded] that were bulk submissions *)
  errors : int;
  elapsed_ns : int;
  latency : Si_obs.Histogram.t;  (* client-observed RTT per request *)
}

let bulk_chunk = 256

let pick_request rng mix =
  let total = mix.reads + mix.writes + mix.bulk in
  if total <= 0 then invalid_arg "Loadgen: empty mix";
  let roll = Rng.int rng total in
  if roll < mix.reads then
    match Rng.int rng 3 with
    | 0 -> Proto.Count Proto.any
    | 1 -> Proto.Select { pattern = Proto.any; limit = 32 }
    | _ -> Proto.Pads
  else if roll < mix.reads + mix.writes then
    Proto.Add
      (Triple.make
         (Printf.sprintf "load-%d" (Rng.int rng 1_000_000))
         "loadgen"
         (Triple.Literal (string_of_int (Rng.int rng 1_000_000))))
  else
    Proto.Submit
      {
        kind = Proto.Bulk_add { count = bulk_chunk; predicate = "bulkgen" };
        priority = Proto.Bulk;
      }

(* One client domain: connect, then walk the assigned arrival slots. *)
let client_run ~addr ~port ~seed ~mix ~rate ~clients ~index ~requests =
  let rng = Rng.create (seed + (index * 7919)) in
  let acc =
    {
      sent = 0;
      ok = 0;
      overloaded = 0;
      rejected_bulk = 0;
      errors = 0;
      elapsed_ns = 0;
      latency = Si_obs.Histogram.create ();
    }
  in
  match Client.connect ~addr ~port () with
  | Error _ -> { acc with errors = requests; sent = requests }
  | Ok c ->
      let started = Unix.gettimeofday () in
      let acc = ref acc in
      let slot = ref index in
      while !slot < requests do
        let due = started +. (float_of_int !slot /. rate) in
        let wait = due -. Unix.gettimeofday () in
        if wait > 0. then Unix.sleepf wait;
        let req = pick_request rng mix in
        let is_bulk =
          match req with Proto.Submit _ -> true | _ -> false
        in
        let t0 = Unix.gettimeofday () in
        let reply = Client.request c req in
        let rtt = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
        Si_obs.Histogram.add !acc.latency rtt;
        let a = { !acc with sent = !acc.sent + 1 } in
        acc :=
          (match reply with
          | Ok (Proto.Overloaded _) ->
              {
                a with
                overloaded = a.overloaded + 1;
                rejected_bulk = (a.rejected_bulk + if is_bulk then 1 else 0);
              }
          | Ok (Proto.Err _) -> { a with errors = a.errors + 1 }
          | Ok _ -> { a with ok = a.ok + 1 }
          | Error _ -> { a with errors = a.errors + 1 });
        slot := !slot + clients
      done;
      Client.close c;
      {
        !acc with
        elapsed_ns =
          int_of_float ((Unix.gettimeofday () -. started) *. 1e9);
      }

let merge a b =
  {
    sent = a.sent + b.sent;
    ok = a.ok + b.ok;
    overloaded = a.overloaded + b.overloaded;
    rejected_bulk = a.rejected_bulk + b.rejected_bulk;
    errors = a.errors + b.errors;
    elapsed_ns = max a.elapsed_ns b.elapsed_ns;
    latency = Si_obs.Histogram.merge a.latency b.latency;
  }

let run ?(seed = 2001) ?(clients = 2) ?(mix = default_mix) ?(addr = "127.0.0.1")
    ~port ~rate ~requests () =
  if clients < 1 then invalid_arg "Loadgen.run: clients must be positive";
  if rate <= 0. then invalid_arg "Loadgen.run: rate must be positive";
  let domains =
    List.init clients (fun index ->
        Domain.spawn (fun () ->
            client_run ~addr ~port ~seed ~mix ~rate ~clients ~index ~requests))
  in
  match List.map Domain.join domains with
  | [] -> assert false
  | r :: rest -> List.fold_left merge r rest

let quantile_ns r q = Si_obs.Histogram.quantile r.latency q

let to_json r =
  let h = r.latency in
  Printf.sprintf
    "{\"sent\": %d, \"ok\": %d, \"overloaded\": %d, \"rejected_bulk\": %d, \
     \"errors\": %d, \"elapsed_ns\": %d, \"rtt_ns\": {\"count\": %d, \
     \"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f, \"max\": %d}}"
    r.sent r.ok r.overloaded r.rejected_bulk r.errors r.elapsed_ns
    (Si_obs.Histogram.count h)
    (Si_obs.Histogram.quantile h 0.5)
    (Si_obs.Histogram.quantile h 0.9)
    (Si_obs.Histogram.quantile h 0.99)
    (Si_obs.Histogram.max_value h)
