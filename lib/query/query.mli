(** Declarative queries over a triple manager — the paper's §6 plan of
    "augmenting such interfaces with query capabilities, in addition to the
    current navigational access".

    A query is a conjunction of triple patterns with shared variables
    (evaluated by nested index lookups, not cross products), plus literal
    filters and a projection:

    {v select ?name ?mark
       where {
         ?s <rdf:type> <model:bundle-scrap/Scrap> .
         ?s scrapName ?name .
         ?s scrapMark ?h .
         ?h markId ?mark
       }
       filter contains(?name, "Dopa") v}

    Terms: [?x] variable, [<id>] resource, ["text"] literal; a bare word in
    predicate position is the predicate name; [_] matches anything. *)

type term =
  | Var of string
  | Resource of string
  | Literal of string
  | Wildcard

type pattern = { subj : term; pred : term; obj : term }

type filter =
  | Equals of string * string        (** variable, literal value *)
  | Contains of string * string
  | Prefix of string * string
  | Bound_to_resource of string      (** variable is a resource *)

type order = Ascending of string | Descending of string
(** [order by ?v] / [order by ?v desc] — lexicographic on the variable's
    value (resources by id, literals by text; unbound sorts first). *)

type t = {
  select : string list;  (** projected variables, [[]] = all *)
  patterns : pattern list;
  filters : filter list;
  order_by : order option;
  limit : int option;
}

type binding = (string * Si_triple.Triple.obj) list
(** Variable name -> value, for the projected variables. *)

(** {1 Construction} *)

val query :
  ?select:string list -> ?filters:filter list -> ?order_by:order ->
  ?limit:int -> pattern list -> t
val pat : term -> term -> term -> pattern

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** The textual syntax above. [select] clause optional (defaults to all
    variables); patterns separated by [.]; multiple [filter] clauses; then
    optional [order by ?v \[desc\]] and [limit N]. *)

val parse_exn : string -> t
val to_string : t -> string

(** {1 Evaluation} *)

val optimize : Si_triple.Trim.t -> t -> t
(** Join reordering: evaluates patterns most-selective-first. Each
    pattern's true cardinality is read from the store's index bucket
    sizes ({!Si_triple.Trim.count_select} — no triple lists are
    materialized); at each step the optimizer prefers patterns whose
    variables are already bound by the patterns chosen so far (avoiding
    cross products). Semantics are unchanged — [run] yields the same
    bindings. *)

val run : Si_triple.Trim.t -> t -> binding list
(** Evaluates by streaming: patterns are joined depth-first with
    hashtable-backed bindings and hashtable duplicate elimination —
    intermediate results are never materialized as lists.

    Result order and truncation:
    - no [limit]: all distinct bindings, sorted by [order_by] when
      present, their natural order otherwise;
    - [order_by] + [limit n]: the first [n] bindings of the full sorted
      result, found by bounded top-[k] selection (memory O(n), not
      O(results));
    - [limit n] without [order_by]: evaluation stops as soon as [n]
      distinct bindings exist — the store is not enumerated further.
      {e Which} [n] bindings are returned is unspecified (they are some
      [n] of the full result, returned sorted); add [order_by] when a
      specific prefix is wanted. *)

val count : Si_triple.Trim.t -> t -> int
val binding_to_string : binding -> string
val variables : t -> string list
(** All variables appearing in the patterns, sorted. *)
