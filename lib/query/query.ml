module Trim = Si_triple.Trim
module Triple = Si_triple.Triple

let run_count = Si_obs.Registry.counter "query.run"
let optimize_count = Si_obs.Registry.counter "query.optimize"
let run_latency = Si_obs.Registry.histogram "query.run"

type term = Var of string | Resource of string | Literal of string | Wildcard
type pattern = { subj : term; pred : term; obj : term }

type filter =
  | Equals of string * string
  | Contains of string * string
  | Prefix of string * string
  | Bound_to_resource of string

type order = Ascending of string | Descending of string

type t = {
  select : string list;
  patterns : pattern list;
  filters : filter list;
  order_by : order option;
  limit : int option;
}

type binding = (string * Triple.obj) list

let query ?(select = []) ?(filters = []) ?order_by ?limit patterns =
  { select; patterns; filters; order_by; limit }

let pat subj pred obj = { subj; pred; obj }

let variables t =
  let of_term acc = function Var v -> v :: acc | _ -> acc in
  List.fold_left
    (fun acc p -> of_term (of_term (of_term acc p.subj) p.pred) p.obj)
    [] t.patterns
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------ printing *)

let term_to_string = function
  | Var v -> "?" ^ v
  | Resource r -> "<" ^ r ^ ">"
  | Literal l -> "\"" ^ l ^ "\""
  | Wildcard -> "_"

let pattern_to_string p =
  Printf.sprintf "%s %s %s" (term_to_string p.subj) (term_to_string p.pred)
    (term_to_string p.obj)

let filter_to_string = function
  | Equals (v, s) -> Printf.sprintf "equals(?%s, \"%s\")" v s
  | Contains (v, s) -> Printf.sprintf "contains(?%s, \"%s\")" v s
  | Prefix (v, s) -> Printf.sprintf "prefix(?%s, \"%s\")" v s
  | Bound_to_resource v -> Printf.sprintf "isResource(?%s)" v

let to_string t =
  let select =
    match t.select with
    | [] -> "select *"
    | vars -> "select " ^ String.concat " " (List.map (fun v -> "?" ^ v) vars)
  in
  let body = String.concat " . " (List.map pattern_to_string t.patterns) in
  let filters =
    String.concat ""
      (List.map (fun f -> " filter " ^ filter_to_string f) t.filters)
  in
  let ordering =
    match t.order_by with
    | Some (Ascending v) -> Printf.sprintf " order by ?%s" v
    | Some (Descending v) -> Printf.sprintf " order by ?%s desc" v
    | None -> ""
  in
  let limiting =
    match t.limit with Some n -> Printf.sprintf " limit %d" n | None -> ""
  in
  Printf.sprintf "%s where { %s }%s%s%s" select body filters ordering limiting

(* ------------------------------------------------------------- parsing *)

type token =
  | Tword of string
  | Tvar of string
  | Tres of string
  | Tlit of string
  | Tdot
  | Tlbrace
  | Trbrace
  | Tlparen
  | Trparen
  | Tcomma
  | Tstar

exception Parse_failure of string

let tokenize input =
  let n = String.length input in
  let pos = ref 0 in
  let toks = ref [] in
  let is_word_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' | '-' | '/' | '.'
    | '#' | '@' ->
        true
    | _ -> false
  in
  while !pos < n do
    let c = input.[!pos] in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '{' -> toks := Tlbrace :: !toks; incr pos
    | '}' -> toks := Trbrace :: !toks; incr pos
    | '(' -> toks := Tlparen :: !toks; incr pos
    | ')' -> toks := Trparen :: !toks; incr pos
    | ',' -> toks := Tcomma :: !toks; incr pos
    | '*' -> toks := Tstar :: !toks; incr pos
    | '.' ->
        (* A '.' inside a word was consumed by the word scanner; here it is
           the pattern separator. *)
        toks := Tdot :: !toks;
        incr pos
    | '?' ->
        incr pos;
        let start = !pos in
        while !pos < n && is_word_char input.[!pos] do
          incr pos
        done;
        if !pos = start then raise (Parse_failure "empty variable name");
        toks := Tvar (String.sub input start (!pos - start)) :: !toks
    | '<' ->
        incr pos;
        let start = !pos in
        (match String.index_from_opt input !pos '>' with
        | None -> raise (Parse_failure "unterminated <resource>")
        | Some close ->
            toks := Tres (String.sub input start (close - start)) :: !toks;
            pos := close + 1)
    | '"' ->
        incr pos;
        let buf = Buffer.create 16 in
        let rec scan () =
          if !pos >= n then raise (Parse_failure "unterminated string")
          else if input.[!pos] = '"' then incr pos
          else begin
            Buffer.add_char buf input.[!pos];
            incr pos;
            scan ()
          end
        in
        scan ();
        toks := Tlit (Buffer.contents buf) :: !toks
    | '_' when !pos + 1 >= n || not (is_word_char input.[!pos + 1]) ->
        toks := Tword "_" :: !toks;
        incr pos
    | c when is_word_char c ->
        let start = !pos in
        while !pos < n && is_word_char input.[!pos] do
          incr pos
        done;
        (* Trailing '.' of a word is the separator, not part of it. *)
        let word = String.sub input start (!pos - start) in
        let word, trailing_dot =
          if String.length word > 1 && word.[String.length word - 1] = '.'
          then (String.sub word 0 (String.length word - 1), true)
          else (word, false)
        in
        toks := Tword word :: !toks;
        if trailing_dot then toks := Tdot :: !toks
    | c -> raise (Parse_failure (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev !toks

let keyword = function
  | Tword w -> Some (String.lowercase_ascii w)
  | _ -> None

let parse input =
  try
    let toks = ref (tokenize input) in
    let peek () = match !toks with [] -> None | t :: _ -> Some t in
    let next () =
      match !toks with
      | [] -> raise (Parse_failure "unexpected end of query")
      | t :: rest ->
          toks := rest;
          t
    in
    (* select clause *)
    let select =
      match peek () with
      | Some t when keyword t = Some "select" ->
          let _ = next () in
          let rec vars acc =
            match peek () with
            | Some (Tvar v) ->
                let _ = next () in
                vars (v :: acc)
            | Some Tstar ->
                let _ = next () in
                List.rev acc
            | _ -> List.rev acc
          in
          vars []
      | _ -> []
    in
    (match peek () with
    | Some t when keyword t = Some "where" -> ignore (next ())
    | _ -> ());
    (match next () with
    | Tlbrace -> ()
    | _ -> raise (Parse_failure "expected '{'"));
    let term_of_token = function
      | Tvar v -> Var v
      | Tres r -> Resource r
      | Tlit l -> Literal l
      | Tword "_" -> Wildcard
      | Tword w -> Resource w
      | _ -> raise (Parse_failure "expected a term")
    in
    let pred_of_token = function
      | Tvar v -> Var v
      | Tword "_" -> Wildcard
      | Tword w -> Literal w  (* predicate names are plain strings *)
      | Tres r -> Literal r
      | Tlit l -> Literal l
      | _ -> raise (Parse_failure "expected a predicate")
    in
    let rec patterns acc =
      match peek () with
      | Some Trbrace ->
          let _ = next () in
          List.rev acc
      | Some Tdot ->
          let _ = next () in
          patterns acc
      | Some _ ->
          let subj = term_of_token (next ()) in
          let pred = pred_of_token (next ()) in
          let obj = term_of_token (next ()) in
          patterns ({ subj; pred; obj } :: acc)
      | None -> raise (Parse_failure "expected '}'")
    in
    let patterns = patterns [] in
    (* filter clauses *)
    let rec filters acc =
      match peek () with
      | Some t when keyword t = Some "filter" ->
          let _ = next () in
          let name =
            match next () with
            | Tword w -> String.lowercase_ascii w
            | _ -> raise (Parse_failure "expected a filter name")
          in
          (match next () with
          | Tlparen -> ()
          | _ -> raise (Parse_failure "expected '('"));
          let v =
            match next () with
            | Tvar v -> v
            | _ -> raise (Parse_failure "expected a variable")
          in
          let f =
            if name = "isresource" then begin
              match next () with
              | Trparen -> Bound_to_resource v
              | _ -> raise (Parse_failure "expected ')'")
            end
            else begin
              (match next () with
              | Tcomma -> ()
              | _ -> raise (Parse_failure "expected ','"));
              let s =
                match next () with
                | Tlit s -> s
                | Tword s -> s
                | _ -> raise (Parse_failure "expected a string")
              in
              (match next () with
              | Trparen -> ()
              | _ -> raise (Parse_failure "expected ')'"));
              match name with
              | "equals" -> Equals (v, s)
              | "contains" -> Contains (v, s)
              | "prefix" -> Prefix (v, s)
              | other ->
                  raise (Parse_failure (Printf.sprintf "unknown filter %S" other))
            end
          in
          filters (f :: acc)
      | Some t when keyword t = Some "order" || keyword t = Some "limit" ->
          List.rev acc
      | Some _ -> raise (Parse_failure "trailing input after query")
      | None -> List.rev acc
    in
    let filters = filters [] in
    (* trailing clauses: order by ?v [desc], limit N *)
    let order_by =
      match peek () with
      | Some t when keyword t = Some "order" -> (
          let _ = next () in
          (match next () with
          | Tword w when String.lowercase_ascii w = "by" -> ()
          | _ -> raise (Parse_failure "expected 'by' after 'order'"));
          match next () with
          | Tvar v -> (
              match peek () with
              | Some t when keyword t = Some "desc" ->
                  let _ = next () in
                  Some (Descending v)
              | Some t when keyword t = Some "asc" ->
                  let _ = next () in
                  Some (Ascending v)
              | _ -> Some (Ascending v))
          | _ -> raise (Parse_failure "expected a variable after 'order by'"))
      | _ -> None
    in
    let limit =
      match peek () with
      | Some t when keyword t = Some "limit" -> (
          let _ = next () in
          match next () with
          | Tword w -> (
              match int_of_string_opt w with
              | Some n when n >= 0 -> Some n
              | _ -> raise (Parse_failure "expected a count after 'limit'"))
          | _ -> raise (Parse_failure "expected a count after 'limit'"))
      | _ -> None
    in
    (match peek () with
    | Some _ -> raise (Parse_failure "trailing input after query")
    | None -> ());
    if patterns = [] then Error "a query needs at least one pattern"
    else Ok { select; patterns; filters; order_by; limit }
  with Parse_failure msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok q -> q
  | Error msg -> invalid_arg ("Query.parse_exn: " ^ msg)

(* ---------------------------------------------------------- evaluation *)

(* ---------------------------------------------------------- optimizer *)

(* Ground terms are canonicalized through the {!Si_triple.Atom} table
   once per run: stores emit canonical interned strings, so after this
   every [String.equal] on the match path — and every hashtable probe
   the store does with the bound fields — starts from a
   physical-equality hit instead of a byte compare. [Contains] and the
   other filters keep working on the materialized candidate strings
   only; nothing here interns ([Atom.canon] never grows the table). *)
let canon_term = function
  | Resource r -> Resource (Si_triple.Atom.canon r)
  | Literal l -> Literal (Si_triple.Atom.canon l)
  | (Var _ | Wildcard) as t -> t

let canon_patterns t =
  {
    t with
    patterns =
      List.map
        (fun p ->
          {
            subj = canon_term p.subj;
            pred = canon_term p.pred;
            obj = canon_term p.obj;
          })
        t.patterns;
  }

let pattern_variables p =
  let add acc = function Var v -> v :: acc | _ -> acc in
  add (add (add [] p.subj) p.pred) p.obj

(* Result size of a pattern taken in isolation: probe the store's index
   cardinalities with whatever fields are constant — no triple list is
   materialized. *)
let estimate trim p =
  let subject = match p.subj with Resource r -> Some r | _ -> None in
  let predicate =
    match p.pred with Literal l -> Some l | Resource r -> Some r | _ -> None
  in
  let object_ =
    match p.obj with
    | Resource r -> Some (Triple.Resource r)
    | Literal l -> Some (Triple.Literal l)
    | _ -> None
  in
  match (subject, predicate, object_) with
  | None, None, None -> Trim.size trim
  | _ -> Trim.count_select ?subject ?predicate ?object_ trim

let optimize trim t =
  Si_obs.Counter.incr optimize_count;
  let t = canon_patterns t in
  let remaining = ref (List.map (fun p -> (p, estimate trim p)) t.patterns) in
  let bound = Hashtbl.create 8 in
  let chosen = ref [] in
  while !remaining <> [] do
    (* Prefer patterns connected to the bound variables; among those, the
       smallest estimate. A bound variable makes a pattern much more
       selective, so connected patterns score with their estimate divided
       by a large factor per bound variable. *)
    let score (p, est) =
      let vars = pattern_variables p in
      let bound_vars =
        List.length (List.filter (Hashtbl.mem bound) vars)
      in
      if bound_vars > 0 || vars = [] || Hashtbl.length bound = 0 then
        float_of_int est /. (float_of_int (bound_vars * 1000) +. 1.)
      else
        (* Disconnected pattern: cross product; heavily penalized. *)
        float_of_int est *. 1e6
    in
    let best =
      List.fold_left
        (fun acc candidate ->
          match acc with
          | None -> Some candidate
          | Some current ->
              if score candidate < score current then Some candidate else acc)
        None !remaining
    in
    match best with
    | None -> remaining := []
    | Some ((p, _) as entry) ->
        chosen := p :: !chosen;
        List.iter (fun v -> Hashtbl.replace bound v ()) (pattern_variables p);
        remaining := List.filter (fun e -> e != entry) !remaining
  done;
  { t with patterns = List.rev !chosen }

(* Allocation-free substring check: does [l] contain [s]? The naive
   [String.sub] loop allocated a fresh string per candidate position. *)
let contains_substring l s =
  let nl = String.length s and hl = String.length l in
  nl = 0
  ||
  let rec matches_at i j = j = nl || (l.[i + j] = s.[j] && matches_at i (j + 1)) in
  let rec scan i = i + nl <= hl && (matches_at i 0 || scan (i + 1)) in
  scan 0

(* Raised to abandon the search once [limit] distinct bindings exist and no
   ordering is requested. *)
exception Enough

(* The executor streams bindings instead of materializing every
   intermediate environment list: patterns are matched depth-first, the
   (mutable, hashtable-backed) environment is extended on the way down and
   restored on the way back up, and each complete environment that passes
   the filters is emitted to a mode-specific sink. Sinks:
   - no order_by, no limit: accumulate distinct bindings, sort at the end;
   - no order_by, limit n:  accumulate distinct bindings and raise [Enough]
     after the n-th — the store is not enumerated further;
   - order_by, no limit:    accumulate distinct bindings, sort by key;
   - order_by, limit n:     bounded top-k — keep only the current best n,
     so memory stays O(n + distinct-seen) instead of O(results). *)
let run_plain trim t =
  let keep = if t.select = [] then variables t else t.select in
  let env : (string, Triple.obj) Hashtbl.t = Hashtbl.create 16 in
  let subst = function
    | Var v -> (
        match Hashtbl.find_opt env v with
        | Some (Triple.Resource r) -> Resource r
        | Some (Triple.Literal l) -> Literal l
        | None -> Var v)
    | t -> t
  in
  (* [term] is already substituted: ground terms compare, variables and
     wildcards match anything. *)
  let term_matches term (value : Triple.obj) =
    match (term, value) with
    | Wildcard, _ | Var _, _ -> true
    | Resource r, Triple.Resource r' -> String.equal r r'
    | Literal l, Triple.Literal l' -> String.equal l l'
    | Resource _, Triple.Literal _ | Literal _, Triple.Resource _ -> false
  in
  let bind term (value : Triple.obj) added =
    match term with
    | Var v when not (Hashtbl.mem env v) ->
        Hashtbl.add env v value;
        v :: added
    | _ -> added
  in
  let iter_pattern p k =
    let s = subst p.subj and pr = subst p.pred and o = subst p.obj in
    let subject = match s with Resource r -> Some r | _ -> None in
    let predicate =
      match pr with Literal l -> Some l | Resource r -> Some r | _ -> None
    in
    let object_ =
      match o with
      | Resource r -> Some (Triple.Resource r)
      | Literal l -> Some (Triple.Literal l)
      | _ -> None
    in
    List.iter
      (fun (tr : Triple.t) ->
        (* Subject positions only ever hold resources. *)
        let sub_obj = Triple.Resource tr.subject in
        let pred_obj = Triple.Literal tr.predicate in
        if
          term_matches s sub_obj
          && term_matches pr pred_obj
          && term_matches o tr.object_
        then begin
          let added =
            bind p.obj tr.object_ (bind p.pred pred_obj (bind p.subj sub_obj []))
          in
          k ();
          List.iter (Hashtbl.remove env) added
        end)
      (Trim.select ?subject ?predicate ?object_ trim)
  in
  let passes_filter f =
    let literal_of v =
      match Hashtbl.find_opt env v with
      | Some (Triple.Literal l) -> Some l
      | Some (Triple.Resource r) -> Some r
      | None -> None
    in
    match f with
    | Equals (v, s) -> literal_of v = Some s
    | Contains (v, s) -> (
        match literal_of v with
        | None -> false
        | Some l -> contains_substring l s)
    | Prefix (v, s) -> (
        match literal_of v with
        | None -> false
        | Some l ->
            let nl = String.length s in
            String.length l >= nl
            &&
            let rec eq i = i = nl || (l.[i] = s.[i] && eq (i + 1)) in
            eq 0)
    | Bound_to_resource v -> (
        match Hashtbl.find_opt env v with
        | Some (Triple.Resource _) -> true
        | _ -> false)
  in
  let seen : (binding, unit) Hashtbl.t = Hashtbl.create 64 in
  let search emit =
    let rec go = function
      | [] ->
          if List.for_all passes_filter t.filters then begin
            let b =
              List.filter_map
                (fun v -> Option.map (fun o -> (v, o)) (Hashtbl.find_opt env v))
                keep
            in
            if not (Hashtbl.mem seen b) then begin
              Hashtbl.add seen b ();
              emit b
            end
          end
      | p :: rest -> iter_pattern p (fun () -> go rest)
    in
    go t.patterns
  in
  match t.order_by with
  | None -> (
      match t.limit with
      | Some 0 -> []
      | Some n ->
          let out = ref [] and taken = ref 0 in
          (try
             search (fun b ->
                 out := b :: !out;
                 incr taken;
                 if !taken >= n then raise Enough)
           with Enough -> ());
          List.sort compare !out
      | None ->
          let out = ref [] in
          search (fun b -> out := b :: !out);
          List.sort compare !out)
  | Some order ->
      let v, flip =
        match order with Ascending v -> (v, 1) | Descending v -> (v, -1)
      in
      let key binding =
        match List.assoc_opt v binding with
        | Some (Triple.Literal l) -> Some l
        | Some (Triple.Resource r) -> Some r
        | None -> None
      in
      (* Ordering key first, natural order as the tiebreak — equivalent to
         the dedup-sort-then-stable-sort of the list-based executor. *)
      let cmp a b =
        let c = flip * compare (key a) (key b) in
        if c <> 0 then c else compare a b
      in
      let rec insert b = function
        | [] -> [ b ]
        | x :: rest -> if cmp b x < 0 then b :: x :: rest else x :: insert b rest
      in
      (match t.limit with
      | Some 0 -> []
      | Some n ->
          (* Bounded top-k: [best] holds at most [n] bindings, sorted. *)
          let best = ref [] and blen = ref 0 and worst = ref None in
          search (fun b ->
              if !blen < n then begin
                best := insert b !best;
                incr blen;
                if !blen = n then
                  worst := Some (List.nth !best (n - 1))
              end
              else
                match !worst with
                | Some w when cmp b w < 0 ->
                    let rec drop_last = function
                      | [] | [ _ ] -> []
                      | x :: rest -> x :: drop_last rest
                    in
                    best := drop_last (insert b !best);
                    worst := Some (List.nth !best (n - 1))
                | _ -> ());
          !best
      | None ->
          let out = ref [] in
          search (fun b -> out := b :: !out);
          List.sort cmp !out)

let run trim t =
  Si_obs.Counter.incr run_count;
  let t = canon_patterns t in
  if Si_obs.Span.on () then
    Si_obs.Span.timed run_latency ~layer:"query" ~op:"run" (fun () ->
        run_plain trim t)
  else run_plain trim t

let count trim t = List.length (run trim t)

let binding_to_string binding =
  String.concat ", "
    (List.map
       (fun (v, o) -> Printf.sprintf "?%s=%s" v (Triple.obj_to_string o))
       binding)
