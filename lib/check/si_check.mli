(** Concurrency sanitizer: lockdep-style lock-order analysis.

    {!Lock} wraps [Mutex] with a named {e lock class} per call site.
    When checking is enabled (the [SI_CHECK] environment variable or
    {!set_enabled}), every domain keeps a held-lock stack in
    [Domain.DLS]; each acquisition records the edge
    [(held class -> acquired class)] — with a capture stack — into a
    process-wide lock-order graph, and cycle detection reports
    potential deadlocks {e the first time either order runs}: no
    unlucky interleaving is needed. Classified blocking operations
    ({!blocking}) executed while holding a lock, re-entrant
    acquisition, same-class nesting, and declared-rank inversions are
    flagged the same way.

    Disabled (the default), {!Lock.lock} is a [Mutex.try_lock]
    fast path plus one atomic branch — the same zero-cost gate
    discipline as [Si_obs.Span]. The module depends only on the
    stdlib; hold-time histograms and contention counters are pushed
    through an injectable {!sink} (installed by [Si_obs.Registry]) so
    the observability layer's own locks can themselves be
    instrumented without a dependency cycle. *)

val enabled : unit -> bool
(** Checking is on. Initialized from the [SI_CHECK] environment
    variable ([1]/[true]/[on]/[yes]). *)

val set_enabled : bool -> unit

val set_clock : (unit -> int) -> unit
(** Nanosecond clock used for hold times. [Si_obs.Registry] forwards
    [Si_obs.Clock.now] here at load time. *)

val set_long_hold_ns : int -> unit
(** Threshold above which a hold is counted as long (default 100ms).
    Long holds are tallied per class (and surface as
    [check.lock.long_hold.<class>] counters), not violations. *)

(** The intended lock hierarchy, declared in one place. Ranks order
    acquisition: a lock may only be acquired while holding locks of
    strictly {e lower} rank. [io_ok] marks classes whose documented
    purpose is to serialize blocking I/O (WAL group commit, segment
    sealing, shipping rounds) — {!blocking} under only such locks is
    allowed. *)
module Hierarchy : sig
  type entry = {
    h_class : string;
    h_rank : int;
    h_io_ok : bool;
    h_doc : string;
  }

  val declare : ?io_ok:bool -> rank:int -> doc:string -> string -> unit
  (** Add or update a declaration (tests extend the built-in table). *)

  val entries : unit -> entry list
  (** All declarations, sorted by rank. *)

  val find : string -> entry option
end

type kind =
  | Order_inversion  (** a cycle in the observed acquisition graph *)
  | Rank_violation  (** an edge against the declared hierarchy *)
  | Same_class_nesting
      (** two locks of one class nested on one domain *)
  | Reentrant_acquire  (** one lock acquired twice on one domain *)
  | Io_under_lock
      (** classified blocking op while holding a non-[io_ok] lock *)

val kind_name : kind -> string

type violation = {
  v_kind : kind;
  v_classes : string list;  (** every lock class involved *)
  v_message : string;
  v_stack : string;  (** capture stack at the detection site *)
  v_other_stack : string option;
      (** for order violations: the capture stack recorded when the
          opposing edge was first observed *)
}

module Lock : sig
  type t

  val create : class_:string -> t
  (** Locks sharing [class_] share one node in the order graph; the
      class is registered on first use and picks up any
      {!Hierarchy} declaration of the same name. *)

  val lock : t -> unit
  val unlock : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a

  val wait : Condition.t -> t -> unit
  (** [Condition.wait] on the wrapped mutex, keeping the held-stack
      and hold-time bookkeeping consistent across the release/
      re-acquire inside the wait. *)

  val class_name : t -> string

  val contended : t -> int
  (** Times an acquisition of this particular lock found it held.
      Counted even when checking is disabled (the fast path is a
      [try_lock], so the count is free). *)
end

val blocking : kind:string -> (unit -> 'a) -> 'a
(** Run a classified blocking operation ([kind] is e.g. ["fsync"],
    ["socket"], ["sleep"]). When checking is enabled and a
    non-[io_ok] lock is held, an {!Io_under_lock} violation is
    recorded. The operation always runs. *)

type edge = {
  e_from : string;
  e_to : string;
  e_count : int;
  e_stack : string;  (** capture stack of the first occurrence *)
}

type class_info = {
  c_class : string;
  c_rank : int option;
  c_io_ok : bool;
  c_contended : int;  (** summed over this class's locks *)
  c_long_holds : int;
}

type report = {
  r_enabled : bool;
  r_classes : class_info list;
  r_edges : edge list;
  r_violations : violation list;
}

val violations : unit -> violation list
val report : unit -> report

val report_json : unit -> string
(** The whole {!report} as one JSON document (the CI artifact). *)

val pp_report : Format.formatter -> report -> unit

val reset : unit -> unit
(** Clear the order graph, violations, and per-class tallies.
    Declarations and registered classes survive. Test scaffolding. *)

type sink = {
  s_hold : class_name:string -> ns:int -> unit;
  s_long : class_name:string -> ns:int -> unit;
  s_contended : class_name:string -> unit;
}

val set_sink : sink option -> unit
(** Metric export hook. Calls are re-entrancy-guarded: lock
    operations the sink itself performs are not instrumented. *)
