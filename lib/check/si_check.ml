(* Lock-order sanitizer. All internal state is guarded by plain
   mutexes (never by Si_check.Lock — the checker must not check
   itself); a per-domain [busy] bit makes every instrumented
   acquisition performed from inside the checker's own bookkeeping
   (or from the metric sink) degrade to a plain mutex operation, so
   instrumenting the observability layer cannot recurse. *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "SI_CHECK" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let clock : (unit -> int) ref =
  ref (fun () -> int_of_float (Sys.time () *. 1e9))

let set_clock f = clock := f
let long_hold_ns = Atomic.make 100_000_000
let set_long_hold_ns n = Atomic.set long_hold_ns (max 0 n)

type sink = {
  s_hold : class_name:string -> ns:int -> unit;
  s_long : class_name:string -> ns:int -> unit;
  s_contended : class_name:string -> unit;
}

let sink : sink option ref = ref None
let set_sink s = sink := s

(* ---------- Lock classes ---------- *)

type cls = {
  id : int;
  name : string;
  mutable rank : int option;
  mutable io_ok : bool;
  contended_total : int Atomic.t;
  long_holds : int Atomic.t;
}

let classes_mu = Mutex.create ()
let classes : (string, cls) Hashtbl.t = Hashtbl.create 32
let by_id : (int, cls) Hashtbl.t = Hashtbl.create 32
let next_class = ref 0

let class_of name =
  Mutex.lock classes_mu;
  let c =
    match Hashtbl.find_opt classes name with
    | Some c -> c
    | None ->
        let c =
          {
            id = !next_class;
            name;
            rank = None;
            io_ok = false;
            contended_total = Atomic.make 0;
            long_holds = Atomic.make 0;
          }
        in
        incr next_class;
        Hashtbl.add classes name c;
        Hashtbl.add by_id c.id c;
        c
  in
  Mutex.unlock classes_mu;
  c

module Hierarchy = struct
  type entry = {
    h_class : string;
    h_rank : int;
    h_io_ok : bool;
    h_doc : string;
  }

  let docs : (string, string) Hashtbl.t = Hashtbl.create 32

  let declare ?(io_ok = false) ~rank ~doc name =
    let c = class_of name in
    c.rank <- Some rank;
    c.io_ok <- io_ok;
    Mutex.lock classes_mu;
    Hashtbl.replace docs name doc;
    Mutex.unlock classes_mu

  let entries () =
    Mutex.lock classes_mu;
    let out =
      Hashtbl.fold
        (fun name c acc ->
          match c.rank with
          | None -> acc
          | Some r ->
              {
                h_class = name;
                h_rank = r;
                h_io_ok = c.io_ok;
                h_doc =
                  (match Hashtbl.find_opt docs name with
                  | Some d -> d
                  | None -> "");
              }
              :: acc)
        classes []
    in
    Mutex.unlock classes_mu;
    List.sort
      (fun a b ->
        match compare a.h_rank b.h_rank with
        | 0 -> String.compare a.h_class b.h_class
        | n -> n)
      out

  let find name =
    List.find_opt (fun e -> String.equal e.h_class name) (entries ())
end

(* The intended hierarchy, in one place. Rank orders acquisition
   (outermost first); [io_ok] marks locks whose documented job is to
   serialize blocking I/O, so `blocking` under them is by design. *)
let () =
  List.iter
    (fun (name, rank, io_ok, doc) -> Hierarchy.declare ~io_ok ~rank ~doc name)
    [
      ("server.session", 10, false, "live connection/session table");
      ("server.jobq", 20, false, "bounded two-class job queue");
      ("server.job", 30, false, "background job state table");
      ( "server.writer",
        40,
        true,
        "serializes pad mutations; persists (fsyncs) the WAL by design" );
      ("wal.registry", 45, false, "in-process single-writer registry");
      ( "slimpad.ship.round",
        50,
        true,
        "one shipping round at a time; pushes segments over transports" );
      ("wal.log", 60, true, "WAL writer; group commit flushes under it");
      ("wal.ship", 70, true, "shipping buffer; seals segments to disk");
      ("slimpad.ship.wake", 80, false, "async shipper wakeup flag");
      ("wal.transport.local", 90, false, "in-process follower mailbox");
      ("store.locked", 100, false, "coarse whole-store wrapper lock");
      ("store.shard", 110, false, "per-shard store lock; never nested");
      ("atom.table", 120, false, "atom-interning append lock");
      ("obs.registry", 200, false, "metric registry lookups");
      ("obs.span.ring", 210, false, "finished-span ring buffer");
      ("obs.histogram", 220, false, "histogram bucket updates");
    ]

(* ---------- Per-domain held stack ---------- *)

type frame = { f_uid : int; f_cls : cls; mutable f_t0 : int }
type dstate = { mutable frames : frame list; mutable busy : bool }

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { frames = []; busy = false })

(* Run [f] with the sink re-entrancy guard up. *)
let guarded d f =
  if d.busy then ()
  else begin
    d.busy <- true;
    Fun.protect ~finally:(fun () -> d.busy <- false) f
  end

(* ---------- Order graph and violations ---------- *)

type kind =
  | Order_inversion
  | Rank_violation
  | Same_class_nesting
  | Reentrant_acquire
  | Io_under_lock

let kind_name = function
  | Order_inversion -> "order-inversion"
  | Rank_violation -> "rank-violation"
  | Same_class_nesting -> "same-class-nesting"
  | Reentrant_acquire -> "reentrant-acquire"
  | Io_under_lock -> "io-under-lock"

type violation = {
  v_kind : kind;
  v_classes : string list;
  v_message : string;
  v_stack : string;
  v_other_stack : string option;
}

type edge_rec = { mutable ec_count : int; ec_stack : string }

let graph_mu = Mutex.create ()
let edges : (int * int, edge_rec) Hashtbl.t = Hashtbl.create 64
let succs : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64
let violations_rev : violation list ref = ref []
let vio_seen : (string, unit) Hashtbl.t = Hashtbl.create 16

let capture () =
  Printexc.raw_backtrace_to_string (Printexc.get_callstack 24)

(* Under [graph_mu]. *)
let add_violation ~kind ~classes ~message ~stack ~other =
  let key =
    kind_name kind ^ "|" ^ String.concat "," (List.sort String.compare classes)
  in
  if not (Hashtbl.mem vio_seen key) then begin
    Hashtbl.add vio_seen key ();
    violations_rev :=
      {
        v_kind = kind;
        v_classes = classes;
        v_message = message;
        v_stack = stack;
        v_other_stack = other;
      }
      :: !violations_rev
  end

(* Under [graph_mu]: a path [from ⇝ target] in the edge graph. *)
let find_path from target =
  let seen = Hashtbl.create 16 in
  let rec go n path =
    if n = target then Some (List.rev (n :: path))
    else if Hashtbl.mem seen n then None
    else begin
      Hashtbl.add seen n ();
      match Hashtbl.find_opt succs n with
      | None -> None
      | Some tbl ->
          Hashtbl.fold
            (fun m () acc ->
              match acc with Some _ -> acc | None -> go m (n :: path))
            tbl None
    end
  in
  go from []

let rank_str c =
  match c.rank with
  | Some r -> Printf.sprintf "rank %d" r
  | None -> "unranked"

(* A new acquisition of [b] while [a] is the innermost held lock. *)
let note_edge a b =
  Mutex.lock graph_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock graph_mu)
    (fun () ->
      let key = (a.id, b.id) in
      match Hashtbl.find_opt edges key with
      | Some e -> e.ec_count <- e.ec_count + 1
      | None ->
          let stack = capture () in
          (* Potential deadlock: the opposite order has already run. *)
          (match find_path b.id a.id with
          | Some path ->
              let names =
                List.map
                  (fun id -> (Hashtbl.find by_id id).name)
                  (a.id :: path)
              in
              let other =
                match path with
                | x :: y :: _ ->
                    Option.map
                      (fun e -> e.ec_stack)
                      (Hashtbl.find_opt edges (x, y))
                | _ -> None
              in
              add_violation ~kind:Order_inversion ~classes:[ a.name; b.name ]
                ~message:
                  (Printf.sprintf
                     "lock-order cycle: acquiring %s while holding %s closes \
                      the cycle %s"
                     b.name a.name
                     (String.concat " -> " names))
                ~stack ~other
          | None -> ());
          (* Declared-hierarchy check: inner (higher rank) must not be
             held when an outer (lower rank) class is acquired. *)
          (match (a.rank, b.rank) with
          | Some ra, Some rb when ra >= rb && a.id <> b.id ->
              add_violation ~kind:Rank_violation ~classes:[ a.name; b.name ]
                ~message:
                  (Printf.sprintf
                     "declared order broken: acquired %s (%s) while holding \
                      %s (%s); declared ranks require %s first"
                     b.name (rank_str b) a.name (rank_str a) b.name)
                ~stack ~other:None
          | _ -> ());
          Hashtbl.add edges key { ec_count = 1; ec_stack = stack };
          let tbl =
            match Hashtbl.find_opt succs a.id with
            | Some tbl -> tbl
            | None ->
                let tbl = Hashtbl.create 4 in
                Hashtbl.add succs a.id tbl;
                tbl
          in
          Hashtbl.replace tbl b.id ())

let note_nesting_violation ~kind ~cls ~message =
  Mutex.lock graph_mu;
  add_violation ~kind ~classes:[ cls.name ] ~message ~stack:(capture ())
    ~other:None;
  Mutex.unlock graph_mu

(* ---------- The instrumented lock ---------- *)

module Lock = struct
  type t = {
    mu : Mutex.t;
    cls : cls;
    uid : int;
    lk_contended : int Atomic.t;
  }

  let next_uid = Atomic.make 0

  let create ~class_ =
    {
      mu = Mutex.create ();
      cls = class_of class_;
      uid = Atomic.fetch_and_add next_uid 1;
      lk_contended = Atomic.make 0;
    }

  let class_name t = t.cls.name
  let contended t = Atomic.get t.lk_contended

  (* Acquire with contention counting. [try_lock] on an uncontended
     mutex costs the same CAS as [lock], so this is free on the fast
     path and only pays (one atomic increment, one sink call) when
     the acquisition actually blocks. *)
  let acquire_counted t d =
    if Mutex.try_lock t.mu then ()
    else begin
      Atomic.incr t.lk_contended;
      Atomic.incr t.cls.contended_total;
      (match !sink with
      | Some s when not d.busy ->
          guarded d (fun () -> s.s_contended ~class_name:t.cls.name)
      | _ -> ());
      Mutex.lock t.mu
    end

  (* Pre-acquisition bookkeeping: edges, re-entrancy, nesting. *)
  let note_acquire t d =
    guarded d (fun () ->
        List.iter
          (fun fr ->
            if fr.f_uid = t.uid then
              note_nesting_violation ~kind:Reentrant_acquire ~cls:t.cls
                ~message:
                  (Printf.sprintf
                     "re-entrant acquisition: this %s lock is already held \
                      by the current domain"
                     t.cls.name)
            else if fr.f_cls.id = t.cls.id then
              note_nesting_violation ~kind:Same_class_nesting ~cls:t.cls
                ~message:
                  (Printf.sprintf
                     "two %s locks nested on one domain; same-class order \
                      is unordered and can deadlock against a peer"
                     t.cls.name))
          d.frames;
        match d.frames with
        | top :: _ when top.f_uid <> t.uid -> note_edge top.f_cls t.cls
        | _ -> ())

  let lock t =
    let d = Domain.DLS.get dls in
    if enabled () && not d.busy then begin
      note_acquire t d;
      acquire_counted t d;
      d.frames <- { f_uid = t.uid; f_cls = t.cls; f_t0 = !clock () } :: d.frames
    end
    else acquire_counted t d

  (* Remove the (innermost) frame for [t], returning its hold time. *)
  let pop_frame t d =
    let rec go acc = function
      | [] -> None
      | fr :: rest when fr.f_uid = t.uid ->
          d.frames <- List.rev_append acc rest;
          Some (!clock () - fr.f_t0)
      | fr :: rest -> go (fr :: acc) rest
    in
    go [] d.frames

  let note_hold t d ns =
    let ns = max 0 ns in
    if ns > Atomic.get long_hold_ns then begin
      Atomic.incr t.cls.long_holds;
      match !sink with
      | Some s -> guarded d (fun () -> s.s_long ~class_name:t.cls.name ~ns)
      | None -> ()
    end;
    match !sink with
    | Some s -> guarded d (fun () -> s.s_hold ~class_name:t.cls.name ~ns)
    | None -> ()

  let unlock t =
    let d = Domain.DLS.get dls in
    if d.busy then Mutex.unlock t.mu
    else begin
      let hold = pop_frame t d in
      Mutex.unlock t.mu;
      match hold with Some ns -> note_hold t d ns | None -> ()
    end

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f

  let wait cond t =
    let d = Domain.DLS.get dls in
    if d.busy then Condition.wait cond t.mu
    else begin
      let hold = pop_frame t d in
      (match hold with Some ns -> note_hold t d ns | None -> ());
      Condition.wait cond t.mu;
      if hold <> None then
        d.frames <-
          { f_uid = t.uid; f_cls = t.cls; f_t0 = !clock () } :: d.frames
    end
end

(* ---------- Blocking-operation classification ---------- *)

let blocking ~kind f =
  let d = Domain.DLS.get dls in
  if enabled () && not d.busy then begin
    let offending =
      List.filter (fun fr -> not fr.f_cls.io_ok) d.frames
      |> List.map (fun fr -> fr.f_cls.name)
      |> List.sort_uniq String.compare
    in
    if offending <> [] then begin
      let stack = capture () in
      Mutex.lock graph_mu;
      add_violation ~kind:Io_under_lock ~classes:(kind :: offending)
        ~message:
          (Printf.sprintf
             "blocking %s while holding %s; none of these classes is \
              declared io_ok"
             kind
             (String.concat ", " offending))
        ~stack ~other:None;
      Mutex.unlock graph_mu
    end
  end;
  f ()

(* ---------- Reporting ---------- *)

type edge = {
  e_from : string;
  e_to : string;
  e_count : int;
  e_stack : string;
}

type class_info = {
  c_class : string;
  c_rank : int option;
  c_io_ok : bool;
  c_contended : int;
  c_long_holds : int;
}

type report = {
  r_enabled : bool;
  r_classes : class_info list;
  r_edges : edge list;
  r_violations : violation list;
}

let violations () =
  Mutex.lock graph_mu;
  let out = List.rev !violations_rev in
  Mutex.unlock graph_mu;
  out

let report () =
  let observed =
    Mutex.lock graph_mu;
    let es =
      Hashtbl.fold
        (fun (a, b) e acc ->
          {
            e_from = (Hashtbl.find by_id a).name;
            e_to = (Hashtbl.find by_id b).name;
            e_count = e.ec_count;
            e_stack = e.ec_stack;
          }
          :: acc)
        edges []
    in
    let vs = List.rev !violations_rev in
    Mutex.unlock graph_mu;
    (es, vs)
  in
  let es, vs = observed in
  let es =
    List.sort
      (fun a b ->
        match String.compare a.e_from b.e_from with
        | 0 -> String.compare a.e_to b.e_to
        | n -> n)
      es
  in
  Mutex.lock classes_mu;
  let cs =
    Hashtbl.fold
      (fun name c acc ->
        {
          c_class = name;
          c_rank = c.rank;
          c_io_ok = c.io_ok;
          c_contended = Atomic.get c.contended_total;
          c_long_holds = Atomic.get c.long_holds;
        }
        :: acc)
      classes []
  in
  Mutex.unlock classes_mu;
  let cs =
    List.sort
      (fun a b ->
        match (a.c_rank, b.c_rank) with
        | Some ra, Some rb when ra <> rb -> compare ra rb
        | Some _, None -> -1
        | None, Some _ -> 1
        | _ -> String.compare a.c_class b.c_class)
      cs
  in
  { r_enabled = enabled (); r_classes = cs; r_edges = es; r_violations = vs }

let reset () =
  Mutex.lock graph_mu;
  Hashtbl.reset edges;
  Hashtbl.reset succs;
  Hashtbl.reset vio_seen;
  violations_rev := [];
  Mutex.unlock graph_mu;
  Mutex.lock classes_mu;
  Hashtbl.iter
    (fun _ c ->
      Atomic.set c.contended_total 0;
      Atomic.set c.long_holds 0)
    classes;
  Mutex.unlock classes_mu

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json () =
  let r = report () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"enabled\": %b,\n  \"classes\": [\n" r.r_enabled);
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"class\": \"%s\", \"rank\": %s, \"io_ok\": %b, \
            \"contended\": %d, \"long_holds\": %d}"
           (json_escape c.c_class)
           (match c.c_rank with Some r -> string_of_int r | None -> "null")
           c.c_io_ok c.c_contended c.c_long_holds))
    r.r_classes;
  Buffer.add_string b "\n  ],\n  \"edges\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"from\": \"%s\", \"to\": \"%s\", \"count\": %d, \"stack\": \
            \"%s\"}"
           (json_escape e.e_from) (json_escape e.e_to) e.e_count
           (json_escape e.e_stack)))
    r.r_edges;
  Buffer.add_string b "\n  ],\n  \"violations\": [\n";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"kind\": \"%s\", \"classes\": [%s], \"message\": \"%s\", \
            \"stack\": \"%s\", \"other_stack\": %s}"
           (kind_name v.v_kind)
           (String.concat ", "
              (List.map (fun c -> "\"" ^ json_escape c ^ "\"") v.v_classes))
           (json_escape v.v_message)
           (json_escape v.v_stack)
           (match v.v_other_stack with
           | Some s -> "\"" ^ json_escape s ^ "\""
           | None -> "null")))
    r.r_violations;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let pp_report ppf r =
  let open Format in
  fprintf ppf "lock checking %s@."
    (if r.r_enabled then "enabled" else "disabled");
  fprintf ppf "@.declared hierarchy:@.";
  List.iter
    (fun c ->
      match c.c_rank with
      | Some rank ->
          fprintf ppf "  %4d  %-20s%s@." rank c.c_class
            (if c.c_io_ok then "  [io ok]" else "")
      | None -> ())
    r.r_classes;
  let unranked =
    List.filter (fun c -> c.c_rank = None) r.r_classes
    |> List.map (fun c -> c.c_class)
  in
  if unranked <> [] then
    fprintf ppf "  unranked: %s@." (String.concat ", " unranked);
  fprintf ppf "@.observed acquisition edges (%d):@." (List.length r.r_edges);
  List.iter
    (fun e -> fprintf ppf "  %s -> %s (x%d)@." e.e_from e.e_to e.e_count)
    r.r_edges;
  let contended =
    List.filter (fun c -> c.c_contended > 0 || c.c_long_holds > 0) r.r_classes
  in
  if contended <> [] then begin
    fprintf ppf "@.contention:@.";
    List.iter
      (fun c ->
        fprintf ppf "  %-24s contended %d, long holds %d@." c.c_class
          c.c_contended c.c_long_holds)
      contended
  end;
  fprintf ppf "@.violations: %d@." (List.length r.r_violations);
  List.iter
    (fun v ->
      fprintf ppf "@.%s  [%s]@.  %s@." (kind_name v.v_kind)
        (String.concat ", " v.v_classes)
        v.v_message;
      if v.v_stack <> "" then
        fprintf ppf "  acquisition stack:@.%s"
          (String.concat ""
             (List.map
                (fun l -> "    " ^ l ^ "\n")
                (String.split_on_char '\n' (String.trim v.v_stack))));
      match v.v_other_stack with
      | Some s when s <> "" ->
          fprintf ppf "  opposing-order stack:@.%s"
            (String.concat ""
               (List.map
                  (fun l -> "    " ^ l ^ "\n")
                  (String.split_on_char '\n' (String.trim s))))
      | _ -> ())
    r.r_violations
