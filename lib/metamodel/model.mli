(** Data-model definition over the metamodel (paper §4.3).

    "SLIM thus contains data-model-definition capability, in addition to
    the normal schema-definition capability of a data manager." A model is
    a set of {e constructs} (units of structure), {e literal constructs}
    (primitive types), {e mark constructs} (delineating marks), and
    {e connectors} (relationships between constructs, with cardinality).
    Generalization and conformance connectors relate constructs to each
    other and instances to types.

    Everything a model says is stored as triples in a {!Si_triple.Trim.t},
    using the RDFS-style vocabulary of {!Vocab} — the model is itself data,
    explicit and queryable, which is what lets SLIM host many superimposed
    models side by side. *)

type t
(** A handle on a model inside a triple manager. *)

type construct_kind = Construct | Literal_construct | Mark_construct

type construct = private { construct_id : string; kind : construct_kind }

type cardinality = { min_card : int; max_card : int option }
(** [max_card = None] means unbounded. *)

type connector = private {
  connector_id : string;
  conn_predicate : string;
  conn_domain : construct;
  conn_range : construct;
  card : cardinality;
}

val any_card : cardinality
(** [0..*] *)

val optional_card : cardinality
(** [0..1] *)

val one_card : cardinality
(** [1..1] *)

val at_least_one : cardinality
(** [1..*] *)

(** {1 Models} *)

val define : Si_triple.Trim.t -> name:string -> t
(** Creates the model resource (idempotent: returns the existing model of
    that name if already defined). *)

val find : Si_triple.Trim.t -> name:string -> t option
val all : Si_triple.Trim.t -> t list
val name : t -> string
val id : t -> string
val trim : t -> Si_triple.Trim.t

(** {1 Constructs} *)

val construct : t -> string -> construct
(** Create (idempotently) a construct with the given name. *)

val literal_construct : t -> string -> construct
val mark_construct : t -> string -> construct
val find_construct : t -> string -> construct option
val constructs : t -> construct list
(** All constructs of the model, sorted by name. *)

val construct_name : t -> construct -> string

(** {1 Connectors} *)

val connect :
  t -> name:string -> from_:construct -> to_:construct ->
  ?card:cardinality -> unit -> connector
(** Declares that instances of [from_] may carry property [name] whose
    values are instances of [to_] (or literals, if [to_] is a literal
    construct). Idempotent on (domain, name). *)

val connectors : t -> connector list
val connectors_of : t -> construct -> connector list
(** Connectors applicable to a construct, including those inherited through
    generalization. *)

val find_connector : t -> domain:construct -> predicate:string ->
  connector option
(** Looks on the construct and its (transitive) superconstructs. *)

(** {1 Generalization} *)

val generalize : t -> sub:construct -> super:construct -> unit
val superconstructs : t -> construct -> construct list
(** Transitive, nearest first; cycle-safe. *)

val direct_superconstructs : t -> construct -> construct list
(** Only the declared [rdfs:subClassOf] edges, not the closure. *)

val is_subconstruct_of : t -> sub:construct -> super:construct -> bool
(** Reflexive-transitive. *)

(** {1 Instances}

    Instance data lives in the same triple manager. An instance is a
    resource typed ([rdf:type]) by a construct; its properties are plain
    triples whose predicates are connector names. *)

val new_instance : t -> construct -> ?id:string -> unit -> string
val instance_type : Si_triple.Trim.t -> string -> string option
(** The [rdf:type] object of a resource, if any. *)

val instances_of : t -> construct -> string list
(** Direct instances (not of subconstructs), sorted. *)

val set_property : t -> string -> string -> Si_triple.Triple.obj -> unit
(** [set_property m inst pred obj] — replaces existing values
    (functional update). @raise Invalid_argument on reserved predicates. *)

val add_property : t -> string -> string -> Si_triple.Triple.obj -> unit
(** Adds without replacing (multi-valued properties). *)

val property : t -> string -> string -> Si_triple.Triple.obj option
val properties : t -> string -> (string * Si_triple.Triple.obj) list
(** Non-reserved properties of an instance, sorted by predicate. *)

val delete_instance : t -> string -> int
(** Removes the instance's triples (outgoing and incoming references).
    Returns the number of triples removed. *)

(** {1 Conformance (schema-instance)} *)

val conform : t -> instance:string -> to_:string -> unit
(** Records a schema-instance conformance connector between two resources
    (e.g. a row conforms to a table definition that is itself an instance
    of a Table construct). *)

val conforms_to : Si_triple.Trim.t -> string -> string list

val pp : Format.formatter -> t -> unit
(** One-line summary: name, construct count, connector count. *)

val describe : t -> string
(** Multi-line human-readable dump of the model: constructs with their
    kinds, connectors with domains/ranges/cardinalities, generalizations. *)
