module Trim = Si_triple.Trim
module Triple = Si_triple.Triple

type t = { trim : Trim.t; model_id : string; model_name : string }
type construct_kind = Construct | Literal_construct | Mark_construct
type construct = { construct_id : string; kind : construct_kind }
type cardinality = { min_card : int; max_card : int option }

type connector = {
  connector_id : string;
  conn_predicate : string;
  conn_domain : construct;
  conn_range : construct;
  card : cardinality;
}

let any_card = { min_card = 0; max_card = None }
let optional_card = { min_card = 0; max_card = Some 1 }
let one_card = { min_card = 1; max_card = Some 1 }
let at_least_one = { min_card = 1; max_card = None }

let name t = t.model_name
let id t = t.model_id
let trim t = t.trim

(* Model ids are derived from the name so they are stable across runs. *)
let model_id_of_name model_name = "model:" ^ model_name

let find trim ~name =
  let model_id = model_id_of_name name in
  match Trim.literal_of trim ~subject:model_id ~predicate:Vocab.rdfs_label with
  | Some label when label = name -> Some { trim; model_id; model_name = name }
  | Some _ | None -> None

let define trim ~name =
  match find trim ~name with
  | Some m -> m
  | None ->
      let model_id = model_id_of_name name in
      ignore
        (Trim.add trim
           (Triple.make model_id Vocab.rdf_type (Triple.resource Vocab.model)));
      ignore
        (Trim.add trim
           (Triple.make model_id Vocab.rdfs_label (Triple.literal name)));
      { trim; model_id; model_name = name }

let all trim =
  Trim.select ~predicate:Vocab.rdf_type
    ~object_:(Triple.resource Vocab.model) trim
  |> List.filter_map (fun (tr : Triple.t) ->
         Option.map
           (fun label -> { trim; model_id = tr.subject; model_name = label })
           (Trim.literal_of trim ~subject:tr.subject
              ~predicate:Vocab.rdfs_label))
  |> List.sort (fun a b -> String.compare a.model_name b.model_name)

(* ---------------------------------------------------------- constructs *)

let kind_class = function
  | Construct -> Vocab.construct
  | Literal_construct -> Vocab.literal_construct
  | Mark_construct -> Vocab.mark_construct

let kind_of_class c =
  if c = Vocab.construct then Some Construct
  else if c = Vocab.literal_construct then Some Literal_construct
  else if c = Vocab.mark_construct then Some Mark_construct
  else None

let construct_id_of_name m construct_name =
  m.model_id ^ "/" ^ construct_name

let find_construct m construct_name =
  let construct_id = construct_id_of_name m construct_name in
  match
    Trim.resource_of m.trim ~subject:construct_id ~predicate:Vocab.rdf_type
  with
  | Some c -> (
      match kind_of_class c with
      | Some kind -> Some { construct_id; kind }
      | None -> None)
  | None -> None

let make_construct m kind construct_name =
  match find_construct m construct_name with
  | Some existing ->
      if existing.kind <> kind then
        invalid_arg
          (Printf.sprintf "Model: construct %S already exists with another kind"
             construct_name);
      existing
  | None ->
      let construct_id = construct_id_of_name m construct_name in
      let add tr = ignore (Trim.add m.trim tr) in
      add
        (Triple.make construct_id Vocab.rdf_type
           (Triple.resource (kind_class kind)));
      add
        (Triple.make construct_id Vocab.rdfs_label
           (Triple.literal construct_name));
      add (Triple.make construct_id Vocab.in_model (Triple.resource m.model_id));
      { construct_id; kind }

let construct m n = make_construct m Construct n
let literal_construct m n = make_construct m Literal_construct n
let mark_construct m n = make_construct m Mark_construct n

let construct_name m c =
  match
    Trim.literal_of m.trim ~subject:c.construct_id ~predicate:Vocab.rdfs_label
  with
  | Some label -> label
  | None -> c.construct_id

let construct_of_id m construct_id =
  match
    Trim.resource_of m.trim ~subject:construct_id ~predicate:Vocab.rdf_type
  with
  | Some c -> (
      match kind_of_class c with
      | Some kind -> Some { construct_id; kind }
      | None -> None)
  | None -> None

let constructs m =
  Trim.select ~predicate:Vocab.in_model ~object_:(Triple.resource m.model_id)
    m.trim
  |> List.filter_map (fun (tr : Triple.t) -> construct_of_id m tr.subject)
  |> List.sort (fun a b ->
         String.compare (construct_name m a) (construct_name m b))

(* ------------------------------------------------------- generalization *)

let direct_supers m c =
  Trim.select ~subject:c.construct_id ~predicate:Vocab.rdfs_subclass_of m.trim
  |> List.filter_map (fun (tr : Triple.t) ->
         match tr.object_ with
         | Triple.Resource r -> construct_of_id m r
         | Triple.Literal _ -> None)

let superconstructs m c =
  let seen = Hashtbl.create 8 in
  Hashtbl.add seen c.construct_id ();
  let rec walk frontier acc =
    match frontier with
    | [] -> List.rev acc
    | x :: rest ->
        let supers =
          direct_supers m x
          |> List.filter (fun s -> not (Hashtbl.mem seen s.construct_id))
        in
        List.iter (fun s -> Hashtbl.add seen s.construct_id ()) supers;
        walk (rest @ supers) (List.rev_append supers acc)
  in
  walk [ c ] []

let direct_superconstructs = direct_supers

let generalize m ~sub ~super =
  ignore
    (Trim.add m.trim
       (Triple.make sub.construct_id Vocab.rdfs_subclass_of
          (Triple.resource super.construct_id)))

let is_subconstruct_of m ~sub ~super =
  sub.construct_id = super.construct_id
  || List.exists
       (fun c -> c.construct_id = super.construct_id)
       (superconstructs m sub)

(* ----------------------------------------------------------- connectors *)

let connector_id_of m ~domain ~name = domain ^ "#" ^ name ^ "@" ^ m.model_id

let connector_of_id m connector_id =
  match
    ( Trim.literal_of m.trim ~subject:connector_id ~predicate:Vocab.predicate,
      Trim.resource_of m.trim ~subject:connector_id ~predicate:Vocab.domain,
      Trim.resource_of m.trim ~subject:connector_id ~predicate:Vocab.range )
  with
  | Some conn_predicate, Some domain_id, Some range_id -> (
      match (construct_of_id m domain_id, construct_of_id m range_id) with
      | Some conn_domain, Some conn_range ->
          let min_card =
            Trim.literal_of m.trim ~subject:connector_id
              ~predicate:Vocab.min_card
            |> Option.map int_of_string
            |> Option.value ~default:0
          in
          let max_card =
            Option.bind
              (Trim.literal_of m.trim ~subject:connector_id
                 ~predicate:Vocab.max_card)
              int_of_string_opt
          in
          Some
            {
              connector_id;
              conn_predicate;
              conn_domain;
              conn_range;
              card = { min_card; max_card };
            }
      | _ -> None)
  | _ -> None

let connect m ~name ~from_ ~to_ ?(card = any_card) () =
  let connector_id = connector_id_of m ~domain:from_.construct_id ~name in
  match connector_of_id m connector_id with
  | Some existing -> existing
  | None ->
      let add tr = ignore (Trim.add m.trim tr) in
      add
        (Triple.make connector_id Vocab.rdf_type
           (Triple.resource Vocab.connector));
      add (Triple.make connector_id Vocab.predicate (Triple.literal name));
      add
        (Triple.make connector_id Vocab.domain
           (Triple.resource from_.construct_id));
      add
        (Triple.make connector_id Vocab.range
           (Triple.resource to_.construct_id));
      add
        (Triple.make connector_id Vocab.in_model (Triple.resource m.model_id));
      add
        (Triple.make connector_id Vocab.min_card
           (Triple.literal (string_of_int card.min_card)));
      (match card.max_card with
      | Some n ->
          add
            (Triple.make connector_id Vocab.max_card
               (Triple.literal (string_of_int n)))
      | None -> ());
      {
        connector_id;
        conn_predicate = name;
        conn_domain = from_;
        conn_range = to_;
        card;
      }

let connectors m =
  Trim.select ~predicate:Vocab.in_model ~object_:(Triple.resource m.model_id)
    m.trim
  |> List.filter_map (fun (tr : Triple.t) ->
         match
           Trim.resource_of m.trim ~subject:tr.subject
             ~predicate:Vocab.rdf_type
         with
         | Some c when c = Vocab.connector -> connector_of_id m tr.subject
         | _ -> None)
  |> List.sort (fun a b -> String.compare a.connector_id b.connector_id)

let connectors_of m c =
  let family = c :: superconstructs m c in
  connectors m
  |> List.filter (fun conn ->
         List.exists
           (fun fc -> fc.construct_id = conn.conn_domain.construct_id)
           family)

let find_connector m ~domain ~predicate =
  List.find_opt
    (fun conn -> conn.conn_predicate = predicate)
    (connectors_of m domain)

(* ------------------------------------------------------------ instances *)

let new_instance m c ?id () =
  let inst =
    match id with
    | Some i -> i
    | None ->
        Trim.new_id
          ~prefix:(String.lowercase_ascii (construct_name m c) ^ "-")
          m.trim
  in
  ignore
    (Trim.add m.trim
       (Triple.make inst Vocab.rdf_type (Triple.resource c.construct_id)));
  inst

let instance_type trim inst =
  Trim.resource_of trim ~subject:inst ~predicate:Vocab.rdf_type

let instances_of m c =
  Trim.select ~predicate:Vocab.rdf_type
    ~object_:(Triple.resource c.construct_id) m.trim
  |> List.map (fun (tr : Triple.t) -> tr.subject)
  |> List.sort String.compare

let check_not_reserved pred =
  if Vocab.is_reserved_predicate pred then
    invalid_arg
      (Printf.sprintf "Model: %S is a reserved metamodel predicate" pred)

let set_property m inst pred obj =
  check_not_reserved pred;
  Trim.set m.trim ~subject:inst ~predicate:pred obj

let add_property m inst pred obj =
  check_not_reserved pred;
  ignore (Trim.add m.trim (Triple.make inst pred obj))

let property m inst pred = Trim.object_of m.trim ~subject:inst ~predicate:pred

let properties m inst =
  Trim.select ~subject:inst m.trim
  |> List.filter (fun (tr : Triple.t) ->
         not (Vocab.is_reserved_predicate tr.predicate))
  |> List.map (fun (tr : Triple.t) -> (tr.predicate, tr.object_))
  |> List.sort compare

let delete_instance m inst =
  let outgoing = Trim.remove_subject m.trim inst in
  let incoming = Trim.select ~object_:(Triple.resource inst) m.trim in
  List.iter (fun tr -> ignore (Trim.remove m.trim tr)) incoming;
  outgoing + List.length incoming

let conform m ~instance ~to_ =
  ignore
    (Trim.add m.trim
       (Triple.make instance Vocab.conforms_to (Triple.resource to_)))

let conforms_to trim inst =
  Trim.select ~subject:inst ~predicate:Vocab.conforms_to trim
  |> List.filter_map (fun (tr : Triple.t) ->
         match tr.object_ with
         | Triple.Resource r -> Some r
         | Triple.Literal _ -> None)
  |> List.sort String.compare

(* ------------------------------------------------------------- display *)

let pp ppf m =
  Format.fprintf ppf "<model %s: %d constructs, %d connectors>" m.model_name
    (List.length (constructs m))
    (List.length (connectors m))

let card_to_string { min_card; max_card } =
  Printf.sprintf "%d..%s" min_card
    (match max_card with Some n -> string_of_int n | None -> "*")

let describe m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "model %s\n" m.model_name);
  List.iter
    (fun c ->
      let kind =
        match c.kind with
        | Construct -> "construct"
        | Literal_construct -> "literal"
        | Mark_construct -> "mark"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s %s\n" kind (construct_name m c));
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "    isa %s\n" (construct_name m s)))
        (direct_supers m c);
      List.iter
        (fun conn ->
          if conn.conn_domain.construct_id = c.construct_id then
            Buffer.add_string buf
              (Printf.sprintf "    %s : %s [%s]\n" conn.conn_predicate
                 (construct_name m conn.conn_range)
                 (card_to_string conn.card)))
        (connectors m))
    (constructs m);
  Buffer.contents buf
