module Trim = Si_triple.Trim

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let valid_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

(* "[1..1]" | "[0..*]" | "[2..5]" *)
let parse_card s =
  let fail () = Error (Printf.sprintf "bad cardinality %S" s) in
  let n = String.length s in
  if n < 6 || s.[0] <> '[' || s.[n - 1] <> ']' then fail ()
  else
    let body = String.sub s 1 (n - 2) in
    match String.index_opt body '.' with
    | Some i
      when i + 1 < String.length body && body.[i + 1] = '.' ->
        let lo = String.sub body 0 i in
        let hi = String.sub body (i + 2) (String.length body - i - 2) in
        (match (int_of_string_opt lo, hi) with
        | Some min_card, "*" -> Ok { Model.min_card; max_card = None }
        | Some min_card, _ -> (
            match int_of_string_opt hi with
            | Some mx when mx >= min_card ->
                Ok { Model.min_card; max_card = Some mx }
            | _ -> fail ())
        | None, _ -> fail ())
    | _ -> fail ()

type line_kind =
  | Lmodel of string
  | Ldecl of Model.construct_kind * string
  | Lisa of string * string
  | Lprop of string * string * string * Model.cardinality

let classify line =
  match tokens line with
  | [] -> Ok None
  | [ "model"; name ] when valid_ident name -> Ok (Some (Lmodel name))
  | [ "construct"; name ] when valid_ident name ->
      Ok (Some (Ldecl (Model.Construct, name)))
  | [ "literal"; name ] when valid_ident name ->
      Ok (Some (Ldecl (Model.Literal_construct, name)))
  | [ "mark"; name ] when valid_ident name ->
      Ok (Some (Ldecl (Model.Mark_construct, name)))
  | [ sub; "isa"; super ] when valid_ident sub && valid_ident super ->
      Ok (Some (Lisa (sub, super)))
  | [ dotted; ":"; range ] when valid_ident range -> (
      match String.index_opt dotted '.' with
      | Some i ->
          let domain = String.sub dotted 0 i in
          let pred = String.sub dotted (i + 1) (String.length dotted - i - 1) in
          if valid_ident domain && valid_ident pred then
            Ok (Some (Lprop (domain, pred, range, Model.any_card)))
          else Error "malformed property line"
      | None -> Error "expected Construct.property : Range")
  | [ dotted; ":"; range; card ] when valid_ident range -> (
      match (String.index_opt dotted '.', parse_card card) with
      | Some i, Ok cardinality ->
          let domain = String.sub dotted 0 i in
          let pred = String.sub dotted (i + 1) (String.length dotted - i - 1) in
          if valid_ident domain && valid_ident pred then
            Ok (Some (Lprop (domain, pred, range, cardinality)))
          else Error "malformed property line"
      | _, Error msg -> Error msg
      | None, _ -> Error "expected Construct.property : Range [m..n]")
  | _ -> Error "unrecognized line"

let parse trim text =
  let lines = String.split_on_char '\n' text in
  let parsed =
    List.mapi
      (fun i line -> (i + 1, classify (strip_comment line)))
      lines
  in
  (* Surface the first syntax error with its line number. *)
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | (_, Ok None) :: rest -> collect acc rest
    | (_, Ok (Some k)) :: rest -> collect (k :: acc) rest
    | (ln, Error msg) :: _ -> Error (Printf.sprintf "line %d: %s" ln msg)
  in
  match collect [] parsed with
  | Error _ as e -> e
  | Ok kinds -> (
      match kinds with
      | Lmodel name :: rest ->
          let m = Model.define trim ~name in
          (* Pass 1: explicit declarations. *)
          List.iter
            (function
              | Ldecl (Model.Construct, n) -> ignore (Model.construct m n)
              | Ldecl (Model.Literal_construct, n) ->
                  ignore (Model.literal_construct m n)
              | Ldecl (Model.Mark_construct, n) ->
                  ignore (Model.mark_construct m n)
              | Lmodel _ | Lisa _ | Lprop _ -> ())
            rest;
          (* Pass 2: implicit constructs, generalization, connectors. *)
          let ensure n =
            match Model.find_construct m n with
            | Some c -> c
            | None -> Model.construct m n
          in
          let rec apply = function
            | [] -> Ok m
            | Lmodel n :: _ ->
                Error (Printf.sprintf "duplicate 'model %s' line" n)
            | Ldecl _ :: rest -> apply rest
            | Lisa (sub, super) :: rest ->
                Model.generalize m ~sub:(ensure sub) ~super:(ensure super);
                apply rest
            | Lprop (domain, pred, range, card) :: rest ->
                ignore
                  (Model.connect m ~name:pred ~from_:(ensure domain)
                     ~to_:(ensure range) ~card ());
                apply rest
          in
          apply rest
      | _ -> Error "the first line must be 'model <name>'")

let parse_file trim path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse trim text
  | exception Sys_error msg -> Error msg

let card_to_string { Model.min_card; max_card } =
  Printf.sprintf "[%d..%s]" min_card
    (match max_card with Some n -> string_of_int n | None -> "*")

let print m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "model %s\n\n" (Model.name m));
  let constructs = Model.constructs m in
  List.iter
    (fun c ->
      let keyword =
        match c.Model.kind with
        | Model.Construct -> "construct"
        | Model.Literal_construct -> "literal"
        | Model.Mark_construct -> "mark"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n" keyword (Model.construct_name m c)))
    constructs;
  Buffer.add_char buf '\n';
  List.iter
    (fun c ->
      (* Direct edges only: printing the transitive closure would make
         parse (print m) declare extra subclass triples on reparse. *)
      List.iter
        (fun super ->
          Buffer.add_string buf
            (Printf.sprintf "%s isa %s\n" (Model.construct_name m c)
               (Model.construct_name m super)))
        (Model.direct_superconstructs m c))
    constructs;
  Buffer.add_char buf '\n';
  List.iter
    (fun conn ->
      Buffer.add_string buf
        (Printf.sprintf "%s.%s : %s %s\n"
           (Model.construct_name m conn.Model.conn_domain)
           conn.Model.conn_predicate
           (Model.construct_name m conn.Model.conn_range)
           (card_to_string conn.Model.card)))
    (Model.connectors m);
  Buffer.contents buf
