(** Excel marks (paper Fig 8): [fileName], [sheetName], [range].

    "An Excel mark is created when Microsoft Excel gives the Excel mark
    module information containing the current selection within the current
    workbook. … The Excel mark module uses the address in an Excel mark
    object to tell Microsoft Excel to open the file, activate the
    worksheet, and select the appropriate range." The workbook substrate
    plays Excel; [open_workbook] plays the file-opening step. *)

type target =
  | Range_target of {
      sheet_name : string;
      range : Si_spreadsheet.Cellref.range;
    }  (** the Fig 8 layout: [sheetName] + [range] *)
  | Name_target of string
      (** a defined name ([definedName] field) — survives row
          insertion/deletion because {!Si_spreadsheet.Workbook} keeps
          names adjusted *)

type address = { file_name : string; target : target }

val type_name : string
(** ["excel"] *)

val fields_of_address : address -> (string * string) list
val address_of_fields : (string * string) list -> (address, string) result

val known_fields : string list
(** The address field names this module's codec understands. *)

val lint_address : (string * string) list -> string list
(** All address well-formedness problems ({!Fields.lint}): codec parse
    failure, duplicate fields, unknown fields. Empty means well-formed. *)

val mark_module :
  ?module_name:string ->
  open_workbook:(string -> (Si_spreadsheet.Workbook.t, string) result) ->
  unit -> Manager.mark_module
(** Resolution: excerpt = evaluated cell values of the range (cells
    tab-separated, rows newline-separated); context = the sheet's used
    range rendered the same way with the selection bracketed; display =
    ["sheet!range: excerpt"]. *)

val capture :
  Si_spreadsheet.Workbook.t -> file_name:string -> sheet_name:string ->
  range:Si_spreadsheet.Cellref.range -> (string * string) list
(** What the (modified) base application hands the mark module when the
    user selects a range — the fields for {!Manager.create_mark}. *)

val capture_name :
  Si_spreadsheet.Workbook.t -> file_name:string -> string ->
  ((string * string) list, string) result
(** Fields addressing a defined name; fails if the workbook has no such
    name. *)
