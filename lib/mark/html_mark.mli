(** HTML marks: [fileName] (a URL in a real deployment) plus either an
    anchor/fragment id or a node path. HTML pages are among SLIMPad's
    supported base types (paper §3). *)

type target =
  | Anchor of string  (** fragment identifier: element id or [<a name>] *)
  | Node_path of Si_xmlk.Path.t
  | Selector of string
      (** a CSS-style selector ({!Si_htmldoc.Selector}); the mark addresses
          the {e first} match, document order *)

type address = { file_name : string; target : target }

val type_name : string
(** ["html"] *)

val fields_of_address : address -> (string * string) list
val address_of_fields : (string * string) list -> (address, string) result

val known_fields : string list
(** The address field names this module's codec understands. *)

val lint_address : (string * string) list -> string list
(** All address well-formedness problems ({!Fields.lint}): codec parse
    failure, duplicate fields, unknown fields. Empty means well-formed. *)

val mark_module :
  ?module_name:string ->
  open_page:(string -> (Si_xmlk.Node.t, string) result) ->
  unit -> Manager.mark_module
(** [open_page] returns the parsed DOM ({!Si_htmldoc.Htmldoc.parse}).
    Resolution: excerpt = rendered text of the addressed element; context
    = rendered text of the whole page (with its title); display = the
    element's HTML serialization. *)

val capture_anchor :
  Si_xmlk.Node.t -> file_name:string -> string ->
  ((string * string) list, string) result

val capture_node :
  root:Si_xmlk.Node.t -> file_name:string -> Si_xmlk.Node.t ->
  ((string * string) list, string) result

val capture_selector :
  Si_xmlk.Node.t -> file_name:string -> string ->
  ((string * string) list, string) result
(** Fails when the selector is malformed or matches nothing in the page. *)
