(* Helpers for mark-address field codecs. Fields are the (string * string)
   lists inside Mark.t; every mark module parses and emits them through
   these. *)

let get fields name =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let get_opt fields name = List.assoc_opt name fields

let get_int fields name =
  match get fields name with
  | Error _ as e -> e
  | Ok v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "field %S is not an integer: %S" name v))

let get_float fields name =
  match get fields name with
  | Error _ as e -> e
  | Ok v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S is not a number: %S" name v))

let ( let* ) = Result.bind

(* Generic address lint: parse failure, duplicated field names, and
   fields the module's codec does not know about. *)
let lint ~known ~parse fields =
  let parse_problems =
    match parse fields with
    | Ok () -> []
    | Error msg -> [ msg ]
  in
  let names = List.map fst fields in
  let duplicate_problems =
    List.sort_uniq String.compare names
    |> List.filter_map (fun n ->
           let occurrences =
             List.length (List.filter (String.equal n) names)
           in
           if occurrences > 1 then
             Some
               (Printf.sprintf "field %S appears %d times" n occurrences)
           else None)
  in
  let unknown_problems =
    List.sort_uniq String.compare names
    |> List.filter_map (fun n ->
           if List.mem n known then None
           else Some (Printf.sprintf "unknown field %S" n))
  in
  parse_problems @ duplicate_problems @ unknown_problems
