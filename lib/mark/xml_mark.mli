(** XML marks (paper Fig 8): [fileName], [xmlPath].

    "An XML mark references an element within an XML file." Resolution
    opens the document and highlights the addressed element (paper §3:
    "opens the lab report and highlights the appropriate section of the
    XML document"). *)

type address = {
  file_name : string;
  path : Si_xmlk.Path.t;
  selected : string;
      (** text content at creation; lets resolution re-anchor when the
          document is restructured and the path goes stale — the element
          with matching content (preferring the original element name)
          wins *)
}

val type_name : string
(** ["xml"] *)

val fields_of_address : address -> (string * string) list
val address_of_fields : (string * string) list -> (address, string) result

val known_fields : string list
(** The address field names this module's codec understands. *)

val lint_address : (string * string) list -> string list
(** All address well-formedness problems ({!Fields.lint}): codec parse
    failure, duplicate fields, unknown fields. Empty means well-formed. *)

val mark_module :
  ?module_name:string ->
  open_document:(string -> (Si_xmlk.Node.t, string) result) ->
  unit -> Manager.mark_module
(** Resolution: excerpt = text content of the addressed element (or the
    attribute/text value); context = the parent element pretty-printed;
    display = the addressed element pretty-printed. *)

val capture :
  root:Si_xmlk.Node.t -> file_name:string -> Si_xmlk.Node.t ->
  ((string * string) list, string) result
(** Derive the fields for the user's currently selected element (the
    XML-viewer side of mark creation): computes the element's path within
    [root]. *)
