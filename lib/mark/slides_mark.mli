(** PowerPoint marks: [fileName], [slide], [shapeId], optional [bullet].
    Presentations are among SLIMPad's supported base types (paper §3). *)

type address = { file_name : string; target : Si_slides.Slides.address }

val type_name : string
(** ["slides"] *)

val fields_of_address : address -> (string * string) list
val address_of_fields : (string * string) list -> (address, string) result

val known_fields : string list
(** The address field names this module's codec understands. *)

val lint_address : (string * string) list -> string list
(** All address well-formedness problems ({!Fields.lint}): codec parse
    failure, duplicate fields, unknown fields. Empty means well-formed. *)

val mark_module :
  ?module_name:string ->
  open_presentation:(string -> (Si_slides.Slides.t, string) result) ->
  unit -> Manager.mark_module
(** Resolution: excerpt = the addressed shape's (or bullet's) text;
    context = the whole slide's text under the deck title; display =
    ["slide n, shape: excerpt"]. *)

val capture :
  Si_slides.Slides.t -> file_name:string -> Si_slides.Slides.address ->
  ((string * string) list, string) result
