(** Marks: encapsulated addresses into base-layer information (paper §4.2).

    "A mark is stored and maintained in the superimposed information layer,
    but references information in the base layer. The information contained
    in a mark includes an address specific to the base-layer information.
    Each type of base-layer information has its own type of mark."

    The address is held as an opaque list of named fields — the Mark
    Manager can "generically store and retrieve all marks" without knowing
    any addressing scheme; only the mark module of the mark's type
    interprets the fields. *)

type t = {
  mark_id : string;
  mark_type : string;  (** the mark module that interprets this mark *)
  fields : (string * string) list;  (** the encapsulated address *)
  excerpt : string;
      (** content of the marked element at creation time — bundles keep
          (useful) redundant copies (§3); this lets the system detect
          drift between the bundle and the base source *)
}

val make :
  id:string -> mark_type:string -> fields:(string * string) list ->
  ?excerpt:string -> unit -> t

val field : t -> string -> string option
val field_exn : t -> string -> string

val source : t -> string
(** The base source the mark addresses: its ["fileName"] field (every
    standard module has one), or ["<type>"] for fileless mark types.
    The resilience layer keys circuit breakers on this. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Resolution results}

    One resolution carries what each of the paper's viewing styles needs
    (Fig 6 / §6 mark behaviours):
    - {e navigate} (simultaneous viewing): [context] re-establishes the
      element's surroundings in its source;
    - {e extract content}: [excerpt] is the element's current content;
    - {e display in place} (independent viewing): [display] is a
      self-contained rendering of the element. *)

type resolution = {
  res_excerpt : string;
  res_context : string;
  res_display : string;
  res_source : string;  (** human-readable source description *)
}

type behaviour = Navigate | Extract_content | Display_in_place

val apply_behaviour : behaviour -> resolution -> string

(** {1 XML encoding} *)

val to_xml : t -> Si_xmlk.Node.t
val of_xml : Si_xmlk.Node.t -> (t, string) result

(** {1 WAL record encoding}

    Marks travel through the slimpad write-ahead log as field-list
    records ({!Si_wal.Record.encode_fields}) tagged {!record_tag}, so
    they interleave with triple and journal records in one stream. *)

val record_tag : string
(** ["m+"] — the first field of every encoded mark record. *)

val to_record : t -> string
val of_record : string -> (t, string) result
