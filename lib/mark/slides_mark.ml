module Sl = Si_slides.Slides
open Fields

type address = { file_name : string; target : Sl.address }

let type_name = "slides"

let fields_of_address a =
  [
    ("fileName", a.file_name);
    ("slide", string_of_int a.target.Sl.slide);
    ("shapeId", a.target.Sl.shape_id);
  ]
  @
  match a.target.Sl.bullet with
  | Some b -> [ ("bullet", string_of_int b) ]
  | None -> []

let address_of_fields fields =
  let* file_name = get fields "fileName" in
  let* slide = get_int fields "slide" in
  let* shape_id = get fields "shapeId" in
  let* bullet =
    match get_opt fields "bullet" with
    | None -> Ok None
    | Some b -> (
        match int_of_string_opt b with
        | Some n when n >= 1 -> Ok (Some n)
        | Some _ | None -> Error (Printf.sprintf "bad bullet index %S" b))
  in
  if slide < 1 then Error "slide numbers start at 1"
  else Ok { file_name; target = { Sl.slide; shape_id; bullet } }

let capture pres ~file_name target =
  match Sl.resolve pres target with
  | Some _ -> Ok (fields_of_address { file_name; target })
  | None -> Error "address does not resolve in the presentation"

let resolve_address open_presentation a =
  let* pres = open_presentation a.file_name in
  match Sl.resolve pres a.target with
  | None ->
      Error
        (Printf.sprintf "slide %d shape %S does not resolve in %s"
           a.target.Sl.slide a.target.Sl.shape_id a.file_name)
  | Some excerpt ->
      let slide = Option.get (Sl.nth_slide pres a.target.Sl.slide) in
      let deck = if Sl.title pres = "" then a.file_name else Sl.title pres in
      Ok
        {
          Mark.res_excerpt = excerpt;
          res_context = Printf.sprintf "%s\n\n%s" deck (Sl.slide_text slide);
          res_display =
            Printf.sprintf "slide %d, %s: %s" a.target.Sl.slide
              a.target.Sl.shape_id excerpt;
          res_source =
            Printf.sprintf "%s: slide %d, shape %s" a.file_name
              a.target.Sl.slide a.target.Sl.shape_id;
        }

let known_fields = [ "fileName"; "slide"; "shapeId"; "bullet" ]

let lint_address fields =
  Fields.lint ~known:known_fields
    ~parse:(fun fs -> Result.map ignore (address_of_fields fs))
    fields

let mark_module ?(module_name = "slides") ~open_presentation () =
  {
    Manager.module_name;
    handles_type = type_name;
    validate =
      (fun fields -> Result.map (fun _ -> ()) (address_of_fields fields));
    resolve =
      (fun fields ->
        let* a = address_of_fields fields in
        resolve_address open_presentation a);
  }
