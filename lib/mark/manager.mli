(** The Mark Manager (paper §4.2, Fig 7).

    "The Mark Manager is the framework for creating and managing these
    links – called marks. A mark module works with each base-layer
    application to create and resolve marks. … Since the specific
    addressing scheme of the base-layer information is encapsulated within
    the mark, the Mark Manager can generically store and retrieve all
    marks."

    Mark modules are registered at run time; "to support new base-layer
    applications, new mark modules need to be introduced" — without
    touching the manager or any superimposed application. Several modules
    may be registered for the same mark {e type} under different module
    names (§5: "one manager for Excel can display Excel Marks in context
    and another act as an in-place viewer"). *)

type mark_module = {
  module_name : string;  (** unique registry key *)
  handles_type : string;  (** the mark type this module interprets *)
  validate : (string * string) list -> (unit, string) result;
      (** check that the address fields are well-formed *)
  resolve : (string * string) list -> (Mark.resolution, string) result;
      (** drive the base application to the marked element *)
}

type t

val create : unit -> t

(** {1 Module registry} *)

val register : t -> mark_module -> (unit, string) result
(** Fails on a duplicate module name. *)

val register_exn : t -> mark_module -> unit
val module_names : t -> string list
(** Sorted. *)

val modules_for_type : t -> string -> mark_module list
val supported_types : t -> string list

(** {2 Address linters}

    A static, side-effect-free companion to {!mark_module.validate}:
    given a mark's address fields, report {e all} the well-formedness
    problems (parse failures, duplicate fields, unknown fields) without
    touching the base layer. {!Desktop.install_modules} registers one
    per mark type; [Si_lint] dispatches through them. *)

val register_address_linter :
  t -> mark_type:string -> ((string * string) list -> string list) -> unit
(** At most one linter per mark type; a second call replaces the first. *)

val address_linter :
  t -> string -> ((string * string) list -> string list) option

val linted_types : t -> string list
(** Mark types with a registered address linter, sorted. *)

val find_module :
  ?module_name:string -> t -> string -> (mark_module, string) result
(** The module that handles a mark type ([module_name] selects a specific
    registration) — the dispatch {!resolve} uses, exposed so layered
    resolvers ({!Resilient}) can drive the module directly. *)

(** {1 Mark creation and storage} *)

val create_mark :
  t -> mark_type:string -> fields:(string * string) list ->
  ?excerpt:string -> unit -> (Mark.t, string) result
(** Validates the fields with (any) registered module for the type, then
    stores the mark under a fresh id. When no [excerpt] is given, the mark
    is resolved once and the current content cached. *)

val add_mark : t -> Mark.t -> (unit, string) result
(** Store an existing mark (e.g. loaded from elsewhere); fails on a
    duplicate id. The type need not be registered yet — marks of
    not-yet-supported types are kept and fail only on resolution. *)

val mark : t -> string -> Mark.t option
val mark_exn : t -> string -> Mark.t
val marks : t -> Mark.t list
(** Sorted by id. *)

val put_mark : t -> Mark.t -> unit
(** Store a mark unconditionally, replacing any existing mark with the
    same id. The WAL replay path uses this ([Mark_put] records carry
    both additions and excerpt refreshes). *)

val remove_mark : t -> string -> bool
val mark_count : t -> int

(** {1 Change observation}

    The hook behind journaled persistence: every effective change to the
    stored mark set — creation, {!add_mark}/{!put_mark}, excerpt refresh,
    removal, marks committed by {!of_xml} — is reported exactly once,
    after it has been applied. Registered modules are code, not state,
    and are not reported. *)

type change =
  | Mark_put of Mark.t  (** Added or replaced (upsert semantics). *)
  | Mark_removed of string

val on_change : t -> (change -> unit) -> unit
(** Install the observer (at most one; a second call replaces the
    first). The observer must not mutate this manager. *)

(** {1 Resolution} *)

type resolve_error =
  | Unknown_mark of string
      (** The superimposed layer holds no mark with this id. *)
  | No_module of { mark_type : string; detail : string }
      (** The mark exists but no registered module interprets its type
          (or the named module does not). *)
  | Resolution_failed of { source : string; detail : string }
      (** The mark and module are fine; the base source
          ({!Mark.source}) failed to produce the element — the only
          variant a retry or degraded fallback can help with. *)

val resolve_error_to_string : resolve_error -> string

val resolve :
  ?module_name:string -> t -> string -> (Mark.resolution, resolve_error) result
(** [resolve mgr mark_id] finds the mark, dispatches to a module handling
    its type ([module_name] selects a specific one), and drives the base
    application to the element. *)

val resolve_with :
  ?module_name:string -> t -> string -> Mark.behaviour ->
  (string, resolve_error) result
(** Resolution narrowed to one viewing behaviour. *)

type drift =
  | Unchanged
  | Changed of { was : string; now : string }
  | Unresolvable of resolve_error
  | Quarantined of resolve_error
      (** Produced by {!Resilient.check_drift} for marks that stayed
          unresolvable across a whole breaker probe window; plain
          {!check_drift} never returns it. *)

val check_drift : t -> string -> (drift, resolve_error) result
(** Compare the excerpt cached at creation with the element's current
    content (§3: redundancy "is a problem … if it introduces errors during
    transcription"; this detects base-side divergence). The outer error is
    only ever [Unknown_mark]. *)

val refresh_excerpt : t -> string -> (Mark.t, resolve_error) result
(** Re-resolve and overwrite the cached excerpt. *)

(** {1 Persistence} *)

val to_xml : t -> Si_xmlk.Node.t
(** Marks only; modules are code and must be re-registered. *)

val of_xml : t -> Si_xmlk.Node.t -> (unit, string) result
(** Loads marks into an existing manager (keeping its modules).
    All-or-nothing: on any error (malformed mark, duplicate id — within
    the file or against marks already present) the manager is left
    unchanged. *)

val save : t -> string -> (unit, string) result
(** Crash-safe: temp file + rename ({!Si_xmlk.Print.to_file_atomic}). *)

val load_into : t -> string -> (unit, string) result
