module Ss = Si_spreadsheet
open Fields

type target =
  | Range_target of { sheet_name : string; range : Ss.Cellref.range }
  | Name_target of string

type address = { file_name : string; target : target }

let type_name = "excel"

let fields_of_address a =
  ("fileName", a.file_name)
  ::
  (match a.target with
  | Range_target { sheet_name; range } ->
      [ ("sheetName", sheet_name); ("range", Ss.Cellref.to_string range) ]
  | Name_target name -> [ ("definedName", name) ])

let address_of_fields fields =
  let* file_name = get fields "fileName" in
  match get_opt fields "definedName" with
  | Some name ->
      if name = "" then Error "empty definedName"
      else Ok { file_name; target = Name_target name }
  | None -> (
      let* sheet_name = get fields "sheetName" in
      let* range_text = get fields "range" in
      match Ss.Cellref.of_string range_text with
      | Some range ->
          Ok { file_name; target = Range_target { sheet_name; range } }
      | None -> Error (Printf.sprintf "bad A1 range %S" range_text))

let capture _wb ~file_name ~sheet_name ~range =
  fields_of_address { file_name; target = Range_target { sheet_name; range } }

let capture_name wb ~file_name name =
  match Ss.Workbook.lookup_name wb name with
  | Some _ -> Ok (fields_of_address { file_name; target = Name_target name })
  | None -> Error (Printf.sprintf "workbook has no defined name %S" name)

(* Evaluated cell grid of a range: cells tab-separated, rows on lines. *)
let grid_text wb sheet_name (range : Ss.Cellref.range) =
  List.init (Ss.Cellref.height range) (fun i ->
      let row = range.Ss.Cellref.top_left.Ss.Cellref.row + i in
      List.init (Ss.Cellref.width range) (fun j ->
          let col = range.Ss.Cellref.top_left.Ss.Cellref.col + j in
          let address =
            Ss.Cellref.cell_to_string (Ss.Cellref.cell col row)
          in
          Ss.Workbook.display wb ~sheet_name address)
      |> String.concat "\t")
  |> String.concat "\n"

let resolve_address open_workbook a =
  let* wb = open_workbook a.file_name in
  (* Defined names resolve through the workbook's name table, so they
     stay valid across row insertion/deletion. *)
  let* sheet_name, range =
    match a.target with
    | Range_target { sheet_name; range } -> Ok (sheet_name, range)
    | Name_target name -> (
        match Ss.Workbook.lookup_name wb name with
        | Some (sheet_name, range) -> Ok (sheet_name, range)
        | None ->
            Error
              (Printf.sprintf "no defined name %S in %s" name a.file_name))
  in
  match Ss.Workbook.sheet wb sheet_name with
  | None -> Error (Printf.sprintf "no sheet %S in %s" sheet_name a.file_name)
  | Some sheet ->
      let excerpt = grid_text wb sheet_name range in
      let context =
        (* The whole used range, with the marked selection bracketed — the
           "open the file, activate the worksheet, select the range"
           experience, textually. *)
        match Ss.Sheet.used_range sheet with
        | None -> ""
        | Some used ->
            List.init (Ss.Cellref.height used) (fun i ->
                let row = used.Ss.Cellref.top_left.Ss.Cellref.row + i in
                List.init (Ss.Cellref.width used) (fun j ->
                    let col = used.Ss.Cellref.top_left.Ss.Cellref.col + j in
                    let cell = Ss.Cellref.cell col row in
                    let text =
                      Ss.Workbook.display wb ~sheet_name
                        (Ss.Cellref.cell_to_string cell)
                    in
                    if Ss.Cellref.contains range cell then "[" ^ text ^ "]"
                    else text)
                |> String.concat "\t")
            |> String.concat "\n"
      in
      let where =
        match a.target with
        | Name_target name ->
            Printf.sprintf "%s (%s!%s)" name sheet_name
              (Ss.Cellref.to_string range)
        | Range_target _ ->
            Printf.sprintf "%s!%s" sheet_name (Ss.Cellref.to_string range)
      in
      Ok
        {
          Mark.res_excerpt = excerpt;
          res_context = context;
          res_display = Printf.sprintf "%s: %s" where excerpt;
          res_source = Printf.sprintf "%s!%s" a.file_name where;
        }

let known_fields = [ "fileName"; "sheetName"; "range"; "definedName" ]

let lint_address fields =
  Fields.lint ~known:known_fields
    ~parse:(fun fs -> Result.map ignore (address_of_fields fs))
    fields

let mark_module ?(module_name = "excel") ~open_workbook () =
  {
    Manager.module_name;
    handles_type = type_name;
    validate =
      (fun fields -> Result.map (fun _ -> ()) (address_of_fields fields));
    resolve =
      (fun fields ->
        let* a = address_of_fields fields in
        resolve_address open_workbook a);
  }
