module Xml = Si_xmlk

let resolve_ok_count = Si_obs.Registry.counter "mark.resolve"
let resolve_error_count = Si_obs.Registry.counter "mark.resolve_error"
let resolve_latency = Si_obs.Registry.histogram "mark.resolve"

type mark_module = {
  module_name : string;
  handles_type : string;
  validate : (string * string) list -> (unit, string) result;
  resolve : (string * string) list -> (Mark.resolution, string) result;
}

type change = Mark_put of Mark.t | Mark_removed of string

type t = {
  modules : (string, mark_module) Hashtbl.t;  (* by module_name *)
  marks : (string, Mark.t) Hashtbl.t;  (* by mark id *)
  linters : (string, (string * string) list -> string list) Hashtbl.t;
      (* by mark type *)
  mutable counter : int;
  mutable observer : (change -> unit) option;
}

let create () =
  {
    modules = Hashtbl.create 8;
    marks = Hashtbl.create 64;
    linters = Hashtbl.create 8;
    counter = 0;
    observer = None;
  }

let on_change t f = t.observer <- Some f
let notify t change = match t.observer with Some f -> f change | None -> ()

let register t m =
  if Hashtbl.mem t.modules m.module_name then
    Error (Printf.sprintf "mark module %S already registered" m.module_name)
  else begin
    Hashtbl.add t.modules m.module_name m;
    Ok ()
  end

let register_exn t m =
  match register t m with Ok () -> () | Error msg -> invalid_arg msg

let module_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.modules []
  |> List.sort String.compare

let modules_for_type t mark_type =
  Hashtbl.fold
    (fun _ m acc -> if m.handles_type = mark_type then m :: acc else acc)
    t.modules []
  |> List.sort (fun a b -> String.compare a.module_name b.module_name)

let supported_types t =
  Hashtbl.fold (fun _ m acc -> m.handles_type :: acc) t.modules []
  |> List.sort_uniq String.compare

let register_address_linter t ~mark_type f =
  Hashtbl.replace t.linters mark_type f

let address_linter t mark_type = Hashtbl.find_opt t.linters mark_type

let linted_types t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.linters []
  |> List.sort_uniq String.compare

let find_module ?module_name t mark_type =
  match module_name with
  | Some name -> (
      match Hashtbl.find_opt t.modules name with
      | Some m when m.handles_type = mark_type -> Ok m
      | Some m ->
          Error
            (Printf.sprintf "module %S handles %S, not %S" name
               m.handles_type mark_type)
      | None -> Error (Printf.sprintf "no mark module named %S" name))
  | None -> (
      match modules_for_type t mark_type with
      | m :: _ -> Ok m
      | [] ->
          Error
            (Printf.sprintf "no mark module registered for type %S" mark_type))

let new_mark_id t =
  t.counter <- t.counter + 1;
  let id = Printf.sprintf "mark-%d" t.counter in
  if Hashtbl.mem t.marks id then begin
    (* Ids loaded from files may collide with the counter; skip ahead. *)
    let rec bump () =
      t.counter <- t.counter + 1;
      let id = Printf.sprintf "mark-%d" t.counter in
      if Hashtbl.mem t.marks id then bump () else id
    in
    bump ()
  end
  else id

let create_mark t ~mark_type ~fields ?excerpt () =
  match find_module t mark_type with
  | Error _ as e -> e
  | Ok m -> (
      match m.validate fields with
      | Error msg -> Error (Printf.sprintf "invalid %s address: %s" mark_type msg)
      | Ok () -> (
          let finish excerpt =
            let mark =
              Mark.make ~id:(new_mark_id t) ~mark_type ~fields ~excerpt ()
            in
            Hashtbl.add t.marks mark.Mark.mark_id mark;
            notify t (Mark_put mark);
            Ok mark
          in
          match excerpt with
          | Some e -> finish e
          | None -> (
              (* Cache the element's content at creation time. *)
              match m.resolve fields with
              | Ok res -> finish res.Mark.res_excerpt
              | Error msg ->
                  Error
                    (Printf.sprintf "cannot resolve new %s mark: %s" mark_type
                       msg))))

let add_mark t mark =
  if Hashtbl.mem t.marks mark.Mark.mark_id then
    Error (Printf.sprintf "mark %S already exists" mark.Mark.mark_id)
  else begin
    Hashtbl.add t.marks mark.Mark.mark_id mark;
    notify t (Mark_put mark);
    Ok ()
  end

let put_mark t mark =
  Hashtbl.replace t.marks mark.Mark.mark_id mark;
  notify t (Mark_put mark)

let mark t id = Hashtbl.find_opt t.marks id

let mark_exn t id =
  match mark t id with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "no mark %S" id)

let marks t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t.marks []
  |> List.sort (fun a b -> String.compare a.Mark.mark_id b.Mark.mark_id)

let remove_mark t id =
  if Hashtbl.mem t.marks id then begin
    Hashtbl.remove t.marks id;
    notify t (Mark_removed id);
    true
  end
  else false

let mark_count t = Hashtbl.length t.marks

type resolve_error =
  | Unknown_mark of string
  | No_module of { mark_type : string; detail : string }
  | Resolution_failed of { source : string; detail : string }

let resolve_error_to_string = function
  | Unknown_mark id -> Printf.sprintf "no mark %S" id
  | No_module { detail; _ } -> detail
  | Resolution_failed { detail; _ } -> detail

let resolve_plain ?module_name t id =
  match mark t id with
  | None -> Error (Unknown_mark id)
  | Some m -> (
      match find_module ?module_name t m.Mark.mark_type with
      | Error detail ->
          Error (No_module { mark_type = m.Mark.mark_type; detail })
      | Ok mm -> (
          match mm.resolve m.Mark.fields with
          | Ok _ as ok -> ok
          | Error detail ->
              Error (Resolution_failed { source = Mark.source m; detail })))

let resolve ?module_name t id =
  let result =
    if Si_obs.Span.on () then
      Si_obs.Span.timed resolve_latency ~layer:"mark" ~op:"resolve" (fun () ->
          resolve_plain ?module_name t id)
    else resolve_plain ?module_name t id
  in
  (match result with
  | Ok _ -> Si_obs.Counter.incr resolve_ok_count
  | Error _ -> Si_obs.Counter.incr resolve_error_count);
  result

let resolve_with ?module_name t id behaviour =
  Result.map (Mark.apply_behaviour behaviour) (resolve ?module_name t id)

type drift =
  | Unchanged
  | Changed of { was : string; now : string }
  | Unresolvable of resolve_error
  | Quarantined of resolve_error

let check_drift t id =
  match mark t id with
  | None -> Error (Unknown_mark id)
  | Some m -> (
      match resolve t id with
      | Ok res ->
          if String.equal res.Mark.res_excerpt m.Mark.excerpt then
            Ok Unchanged
          else Ok (Changed { was = m.Mark.excerpt; now = res.Mark.res_excerpt })
      | Error e -> Ok (Unresolvable e))

let refresh_excerpt t id =
  match mark t id with
  | None -> Error (Unknown_mark id)
  | Some m -> (
      match resolve t id with
      | Error _ as e -> e
      | Ok res ->
          let updated = { m with Mark.excerpt = res.Mark.res_excerpt } in
          Hashtbl.replace t.marks id updated;
          notify t (Mark_put updated);
          Ok updated)

let to_xml t =
  Xml.Node.element "marks"
    ~attrs:[ ("count", string_of_int (mark_count t)) ]
    (List.map Mark.to_xml (marks t))

let of_xml t root =
  match root with
  | Xml.Node.Element { name = "marks"; _ } ->
      (* All-or-nothing: stage into a side table so a mid-file error (bad
         mark, duplicate id) leaves the manager exactly as it was. *)
      let staged = Hashtbl.create 64 in
      let rec load = function
        | [] ->
            Hashtbl.iter
              (fun id m ->
                Hashtbl.add t.marks id m;
                notify t (Mark_put m))
              staged;
            Ok ()
        | node :: rest -> (
            match Mark.of_xml node with
            | Error _ as e -> e
            | Ok m ->
                let id = m.Mark.mark_id in
                if Hashtbl.mem t.marks id || Hashtbl.mem staged id then
                  Error (Printf.sprintf "mark %S already exists" id)
                else begin
                  Hashtbl.add staged id m;
                  load rest
                end)
      in
      load (Xml.Node.find_children "mark" root)
  | _ -> Error "expected a <marks> root element"

let save t path = Xml.Print.to_file_atomic path (to_xml t)

let load_into t path =
  match Xml.Parse.file path with
  | Error e -> Error (Xml.Parse.error_to_string e)
  | Ok root -> of_xml t (Xml.Node.strip_whitespace root)
