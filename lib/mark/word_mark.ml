module Wp = Si_wordproc.Wordproc
open Fields

type target = Bookmark of string | Span of Wp.span
type address = { file_name : string; target : target }

let type_name = "word"

let fields_of_address a =
  ("fileName", a.file_name)
  ::
  (match a.target with
  | Bookmark name -> [ ("bookmark", name) ]
  | Span s ->
      [
        ("para", string_of_int s.Wp.para);
        ("offset", string_of_int s.Wp.offset);
        ("length", string_of_int s.Wp.length);
      ])

let address_of_fields fields =
  let* file_name = get fields "fileName" in
  match get_opt fields "bookmark" with
  | Some name -> Ok { file_name; target = Bookmark name }
  | None ->
      let* para = get_int fields "para" in
      let* offset = get_int fields "offset" in
      let* length = get_int fields "length" in
      if para < 1 || offset < 0 || length < 0 then Error "bad span"
      else Ok { file_name; target = Span { Wp.para; offset; length } }

let capture_span doc ~file_name span =
  if Wp.span_valid doc span then
    Ok (fields_of_address { file_name; target = Span span })
  else Error "span out of bounds"

let capture_bookmark doc ~file_name name =
  match Wp.bookmark doc name with
  | Some _ -> Ok (fields_of_address { file_name; target = Bookmark name })
  | None -> Error (Printf.sprintf "no bookmark %S" name)

let resolve_address open_document a =
  let* doc = open_document a.file_name in
  let* span =
    match a.target with
    | Span s -> Ok s
    | Bookmark name -> (
        match Wp.bookmark doc name with
        | Some s -> Ok s
        | None ->
            Error (Printf.sprintf "no bookmark %S in %s" name a.file_name))
  in
  match Wp.extract doc span with
  | None ->
      Error
        (Printf.sprintf "span ¶%d %d+%d invalid in %s" span.Wp.para
           span.Wp.offset span.Wp.length a.file_name)
  | Some excerpt ->
      let paragraph =
        Option.value (Wp.block_text doc span.Wp.para) ~default:""
      in
      let doc_title =
        if Wp.title doc = "" then a.file_name else Wp.title doc
      in
      Ok
        {
          Mark.res_excerpt = excerpt;
          res_context = Printf.sprintf "%s\n\n%s" doc_title paragraph;
          res_display =
            Printf.sprintf "%s ¶%d: %s" doc_title span.Wp.para excerpt;
          res_source = Printf.sprintf "%s ¶%d" a.file_name span.Wp.para;
        }

let known_fields = [ "fileName"; "bookmark"; "para"; "offset"; "length" ]

let lint_address fields =
  Fields.lint ~known:known_fields
    ~parse:(fun fs -> Result.map ignore (address_of_fields fs))
    fields

let mark_module ?(module_name = "word") ~open_document () =
  {
    Manager.module_name;
    handles_type = type_name;
    validate =
      (fun fields -> Result.map (fun _ -> ()) (address_of_fields fields));
    resolve =
      (fun fields ->
        let* a = address_of_fields fields in
        resolve_address open_document a);
  }
