(** Word marks: [fileName] plus either a bookmark name or a paragraph
    character span. Word documents are among SLIMPad's supported base
    types (paper §3). *)

type target =
  | Bookmark of string
  | Span of Si_wordproc.Wordproc.span

type address = { file_name : string; target : target }

val type_name : string
(** ["word"] *)

val fields_of_address : address -> (string * string) list
val address_of_fields : (string * string) list -> (address, string) result

val known_fields : string list
(** The address field names this module's codec understands. *)

val lint_address : (string * string) list -> string list
(** All address well-formedness problems ({!Fields.lint}): codec parse
    failure, duplicate fields, unknown fields. Empty means well-formed. *)

val mark_module :
  ?module_name:string ->
  open_document:(string -> (Si_wordproc.Wordproc.t, string) result) ->
  unit -> Manager.mark_module
(** Resolution: excerpt = the span's text; context = the whole paragraph
    (with the document title); display = ["title ¶n: excerpt"]. Bookmark
    targets resolve through the document's bookmark table. *)

val capture_span :
  Si_wordproc.Wordproc.t -> file_name:string -> Si_wordproc.Wordproc.span ->
  ((string * string) list, string) result

val capture_bookmark :
  Si_wordproc.Wordproc.t -> file_name:string -> string ->
  ((string * string) list, string) result
