type t = {
  workbooks : (string, Si_spreadsheet.Workbook.t) Hashtbl.t;
  xml_docs : (string, Si_xmlk.Node.t) Hashtbl.t;
  text_docs : (string, Si_textdoc.Textdoc.t) Hashtbl.t;
  word_docs : (string, Si_wordproc.Wordproc.t) Hashtbl.t;
  decks : (string, Si_slides.Slides.t) Hashtbl.t;
  pdfs : (string, Si_pdfdoc.Pdfdoc.t) Hashtbl.t;
  pages : (string, Si_xmlk.Node.t) Hashtbl.t;
}

let create () =
  {
    workbooks = Hashtbl.create 8;
    xml_docs = Hashtbl.create 8;
    text_docs = Hashtbl.create 8;
    word_docs = Hashtbl.create 8;
    decks = Hashtbl.create 8;
    pdfs = Hashtbl.create 8;
    pages = Hashtbl.create 8;
  }

let add_workbook t name doc = Hashtbl.replace t.workbooks name doc
let add_xml t name doc = Hashtbl.replace t.xml_docs name doc
let add_text t name doc = Hashtbl.replace t.text_docs name doc
let add_word t name doc = Hashtbl.replace t.word_docs name doc
let add_slides t name doc = Hashtbl.replace t.decks name doc
let add_pdf t name doc = Hashtbl.replace t.pdfs name doc

let add_html t name source =
  Hashtbl.replace t.pages name (Si_htmldoc.Htmldoc.parse source)

let opener kind table name =
  match Hashtbl.find_opt table name with
  | Some doc -> Ok doc
  | None -> Error (Printf.sprintf "no open %s document %S" kind name)

let open_workbook t = opener "spreadsheet" t.workbooks
let open_xml t = opener "XML" t.xml_docs
let open_text t = opener "text" t.text_docs
let open_word t = opener "word-processor" t.word_docs
let open_slides t = opener "presentation" t.decks
let open_pdf t = opener "PDF" t.pdfs
let open_html t = opener "HTML" t.pages

let document_names t =
  let names kind table =
    Hashtbl.fold (fun name _ acc -> (kind, name) :: acc) table []
  in
  List.concat
    [
      names "excel" t.workbooks; names "xml" t.xml_docs;
      names "text" t.text_docs; names "word" t.word_docs;
      names "slides" t.decks; names "pdf" t.pdfs; names "html" t.pages;
    ]
  |> List.sort compare

type opener_wrap = {
  wrap :
    'a. (string -> ('a, string) result) -> string -> ('a, string) result;
}

let install_modules ?wrap t mgr =
  (* The wrap slips under every module's opener, so one combinator (e.g. a
     fault injector) governs access to every kind of base document. *)
  let w opener =
    match wrap with None -> opener | Some { wrap } -> wrap opener
  in
  Manager.register_exn mgr
    (Excel_mark.mark_module ~open_workbook:(w (open_workbook t)) ());
  Manager.register_exn mgr
    (Xml_mark.mark_module ~open_document:(w (open_xml t)) ());
  Manager.register_exn mgr
    (Text_mark.mark_module ~open_document:(w (open_text t)) ());
  Manager.register_exn mgr
    (Word_mark.mark_module ~open_document:(w (open_word t)) ());
  Manager.register_exn mgr
    (Slides_mark.mark_module ~open_presentation:(w (open_slides t)) ());
  Manager.register_exn mgr
    (Pdf_mark.mark_module ~open_document:(w (open_pdf t)) ());
  Manager.register_exn mgr
    (Html_mark.mark_module ~open_page:(w (open_html t)) ());
  (* Static address linters ride along: purely syntactic, they never
     open a document, so they take no opener (and no wrap). *)
  Manager.register_address_linter mgr ~mark_type:"excel"
    Excel_mark.lint_address;
  Manager.register_address_linter mgr ~mark_type:"xml" Xml_mark.lint_address;
  Manager.register_address_linter mgr ~mark_type:"text" Text_mark.lint_address;
  Manager.register_address_linter mgr ~mark_type:"word" Word_mark.lint_address;
  Manager.register_address_linter mgr ~mark_type:"slides"
    Slides_mark.lint_address;
  Manager.register_address_linter mgr ~mark_type:"pdf" Pdf_mark.lint_address;
  Manager.register_address_linter mgr ~mark_type:"html" Html_mark.lint_address
