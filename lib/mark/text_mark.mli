(** Text marks: [fileName], [offset], [length], plus the selected excerpt.

    The excerpt travels in the address fields so resolution can re-anchor
    the span when the underlying file has been edited (the base document
    substrate's {!Si_textdoc.Textdoc.reanchor}). *)

type address = {
  file_name : string;
  span : Si_textdoc.Textdoc.span;
  selected : string;  (** excerpt at creation, used for re-anchoring *)
}

val type_name : string
(** ["text"] *)

val fields_of_address : address -> (string * string) list
val address_of_fields : (string * string) list -> (address, string) result

val known_fields : string list
(** The address field names this module's codec understands. *)

val lint_address : (string * string) list -> string list
(** All address well-formedness problems ({!Fields.lint}): codec parse
    failure, duplicate fields, unknown fields. Empty means well-formed. *)

val mark_module :
  ?module_name:string ->
  ?context_lines:int ->
  open_document:(string -> (Si_textdoc.Textdoc.t, string) result) ->
  unit -> Manager.mark_module
(** Resolution: excerpt = current text of the (possibly re-anchored) span;
    context = surrounding lines ([context_lines] each side, default 2);
    display = ["file:line: excerpt"]. Resolution fails only when the span
    is invalid {e and} the remembered excerpt is nowhere in the file. *)

val capture :
  Si_textdoc.Textdoc.t -> file_name:string -> Si_textdoc.Textdoc.span ->
  ((string * string) list, string) result
