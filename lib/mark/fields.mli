(** Helpers for mark-address field codecs.

    Fields are the [(string * string) list] inside {!Mark.t}; every mark
    module parses and emits them through these. *)

val get : (string * string) list -> string -> (string, string) result
val get_opt : (string * string) list -> string -> string option
val get_int : (string * string) list -> string -> (int, string) result
val get_float : (string * string) list -> string -> (float, string) result

val ( let* ) :
  ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result

val lint :
  known:string list ->
  parse:((string * string) list -> (unit, string) result) ->
  (string * string) list ->
  string list
(** Generic address well-formedness check used by the mark modules'
    [lint_address] hooks: reports the codec's parse error (if any),
    duplicated field names, and fields not in [known]. Returns a list of
    human-readable problems; empty means well-formed. *)
