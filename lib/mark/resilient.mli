(** Resilient base-source access.

    The paper's premise is that superimposed information lives on base
    documents "outside the box" (§1, §4.2): owned by other applications,
    possibly closed, moved, or restructured. The plain {!Manager.resolve}
    turns any base-source hiccup into a hard error; this layer treats
    base-source failure as a first-class, managed state instead:

    - a per-base-source {e circuit breaker} (closed → open after N
      consecutive failures → half-open probe after a cool-down measured in
      rejected attempts — the codebase is deterministic, so virtual time is
      counted in calls, not seconds);
    - {e retry} with capped exponential backoff and deterministic jitter,
      so a transient fault is retried a bounded, reproducible number of
      times;
    - a per-call {e attempt/budget} cap, so a pad refresh over a thousand
      marks cannot stall on one dead source;
    - {e graceful degradation}: when the breaker is open or retries are
      exhausted, resolution returns a typed {!outcome.Degraded} carrying
      the excerpt cached at mark-creation time plus the underlying
      {!fault} — never an exception, never data loss. *)

(** {1 Policy} *)

type config = {
  failure_threshold : int;
      (** Consecutive failures that trip a closed breaker open. *)
  cooldown : int;
      (** Calls fast-failed while open before the next call may probe
          (half-open). Virtual time, measured in attempts. *)
  max_attempts : int;  (** Resolution attempts per call while closed. *)
  backoff_base : int;  (** First retry delay, in virtual backoff units. *)
  backoff_cap : int;  (** Ceiling for the exponential delay. *)
  call_budget : int;
      (** Total units (attempts + backoff delays) one call may spend. *)
  quarantine_probes : int;
      (** Consecutive failed half-open probes after which the source's
          marks are reported {!Manager.drift.Quarantined}. *)
  jitter : int -> int;
      (** [jitter bound] in [\[0, bound)], added to each backoff delay.
          Must be deterministic for reproducible schedules; see
          {!deterministic_jitter}. *)
}

val deterministic_jitter : seed:int -> int -> int
(** A fresh deterministic jitter stream (splitmix64, the same generator as
    [Si_workload.Rng]). Two streams with the same seed replay the same
    schedule. *)

val default_config : unit -> config
(** threshold 3, cooldown 8, 3 attempts, backoff 1..8 capped, budget 16,
    2 probes, jitter seeded at 2001. Each call returns a config with a
    fresh jitter stream, so separate {!create}s replay identically. *)

(** {1 Outcomes} *)

type fault =
  | Attempts_exhausted of {
      source : string;
      detail : string;  (** the last underlying error *)
      attempts : int;
      backoffs : int list;  (** the delays actually scheduled, in order *)
    }
  | Breaker_open of { source : string; cooldown_left : int }
      (** Fast-failed without touching the base source. *)
  | Budget_exhausted of { source : string; attempts : int; spent : int }

type outcome =
  | Fresh of Mark.resolution  (** The base source answered. *)
  | Degraded of { excerpt : string; fault : fault }
      (** The base source did not; [excerpt] is the content cached at
          mark-creation time (zero data loss). *)

val fault_to_string : fault -> string

(** {1 The layer} *)

type t

val create : ?config:config -> unit -> t
(** Fresh breakers, all closed. *)

val config : t -> config

val resolve :
  ?module_name:string -> t -> Manager.t -> string ->
  (outcome, Manager.resolve_error) result
(** Like {!Manager.resolve} but managed: breaker consulted first, then
    bounded retries, then degradation. [Error] is reserved for
    superimposed-layer problems ([Unknown_mark], [No_module]) — base-source
    trouble always comes back [Ok (Degraded _)]. *)

val check_drift :
  t -> Manager.t -> string -> (Manager.drift, Manager.resolve_error) result
(** Like {!Manager.check_drift}, through the managed path. A mark whose
    source has failed [quarantine_probes] consecutive half-open probes is
    reported [Quarantined] rather than [Unresolvable]: the source is not
    just flickering, it has stayed dead across a whole probe window. *)

val wrap_module : t -> Manager.mark_module -> Manager.mark_module
(** A mark module whose [resolve] goes through this layer's breaker and
    retry policy (same module name and type). At this level there is no
    stored mark, hence no cached excerpt: degraded outcomes surface as
    [Error (fault_to_string fault)]. *)

(** {1 Observability} *)

type breaker_state = Closed | Open | Half_open

type breaker_info = {
  source : string;
  state : breaker_state;
  consecutive_failures : int;
  total_failures : int;
  total_successes : int;
  rejected : int;  (** calls fast-failed while the breaker was open *)
  probe_failures : int;  (** consecutive failed half-open probes *)
}

val health : t -> breaker_info list
(** One entry per base source seen so far, sorted by source. *)

val breaker_for_source : t -> string -> breaker_info option
val quarantined : t -> string -> bool
(** Whether a source is past the quarantine threshold. *)

val reset : t -> unit
(** Forget all breaker state (e.g. after the operator fixed the source). *)

val state_to_string : breaker_state -> string
