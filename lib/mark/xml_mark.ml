module Xml = Si_xmlk
open Fields

type address = { file_name : string; path : Xml.Path.t; selected : string }

let type_name = "xml"

let fields_of_address a =
  [ ("fileName", a.file_name); ("xmlPath", Xml.Path.to_string a.path) ]
  @ if a.selected = "" then [] else [ ("selected", a.selected) ]

let address_of_fields fields =
  let* file_name = get fields "fileName" in
  let* path_text = get fields "xmlPath" in
  match Xml.Path.of_string path_text with
  | Ok path ->
      Ok
        {
          file_name;
          path;
          selected = Option.value (get_opt fields "selected") ~default:"";
        }
  | Error msg -> Error (Printf.sprintf "bad xmlPath %S: %s" path_text msg)

let capture ~root ~file_name node =
  match Xml.Path.path_of ~root node with
  | Some path ->
      Ok
        (fields_of_address
           { file_name; path; selected = Xml.Node.text_content node })
  | None -> Error "selected node is not part of the document"

(* When the stored path no longer resolves (the document was restructured),
   re-anchor on the remembered content: among elements whose text equals
   the selection, prefer ones whose element name matches the stale path's
   last step. *)
let reanchor root a =
  if a.selected = "" then None
  else
    let wanted_name =
      match List.rev a.path.Xml.Path.steps with
      | { Xml.Path.name = Some n; _ } :: _ -> Some n
      | _ -> None
    in
    let candidates =
      Xml.Path.all_element_paths root
      |> List.filter (fun (_, node) ->
             String.equal (Xml.Node.text_content node) a.selected)
    in
    let named =
      match wanted_name with
      | None -> []
      | Some n ->
          List.filter (fun (_, node) -> Xml.Node.name node = Some n) candidates
    in
    match (named, candidates) with
    | (p, _) :: _, _ -> Some p
    | [], (p, _) :: _ -> Some p
    | [], [] -> None

let resolve_address open_document a =
  let* root = open_document a.file_name in
  (* The effective path. A restructured document can leave the stored path
     resolving to a different element, so a positional hit whose content
     disagrees with the remembered selection only stands if the selection
     is not found anywhere else (in-place edits are legitimate: drift
     detection reports them). *)
  let content_of = function
    | Xml.Path.Resolved_element node -> Xml.Node.text_content node
    | Xml.Path.Resolved_attribute (_, v) -> v
    | Xml.Path.Resolved_text text -> text
  in
  let reanchored () =
    match reanchor root a with
    | Some path ->
        Option.map (fun r -> (path, r)) (Xml.Path.resolve root path)
    | None -> None
  in
  let resolution_opt =
    match Xml.Path.resolve root a.path with
    | Some r when a.selected = "" || content_of r = a.selected ->
        Some (a.path, r)
    | Some r -> (
        match reanchored () with
        | Some _ as moved -> moved
        | None -> Some (a.path, r))
    | None -> reanchored ()
  in
  match resolution_opt with
  | None ->
      Error
        (Printf.sprintf "path %s does not resolve in %s (and the selection \
                         was not found elsewhere)"
           (Xml.Path.to_string a.path) a.file_name)
  | Some (effective_path, resolution) ->
      let source =
        Printf.sprintf "%s#%s" a.file_name (Xml.Path.to_string effective_path)
      in
      let excerpt, display =
        match resolution with
        | Xml.Path.Resolved_element node ->
            (Xml.Node.text_content node, Xml.Print.to_string_pretty node)
        | Xml.Path.Resolved_attribute (_, v) -> (v, v)
        | Xml.Path.Resolved_text text -> (text, text)
      in
      let context =
        (* Highlight by showing the parent element's subtree. *)
        let parent_path =
          Option.value (Xml.Path.parent effective_path) ~default:Xml.Path.root
        in
        match Xml.Path.resolve_element root parent_path with
        | Some parent -> Xml.Print.to_string_pretty parent
        | None -> Xml.Print.to_string_pretty root
      in
      Ok
        {
          Mark.res_excerpt = excerpt;
          res_context = context;
          res_display = display;
          res_source = source;
        }

let known_fields = [ "fileName"; "xmlPath"; "selected" ]

let lint_address fields =
  Fields.lint ~known:known_fields
    ~parse:(fun fs -> Result.map ignore (address_of_fields fs))
    fields

let mark_module ?(module_name = "xml") ~open_document () =
  {
    Manager.module_name;
    handles_type = type_name;
    validate =
      (fun fields -> Result.map (fun _ -> ()) (address_of_fields fields));
    resolve =
      (fun fields ->
        let* a = address_of_fields fields in
        resolve_address open_document a);
  }
