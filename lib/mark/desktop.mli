(** A desktop of open base applications.

    The paper's base layer is "outside the box": documents owned by other
    applications. This module models the running desktop — a set of named,
    open documents of each supported kind — and installs one mark module
    per kind into a {!Manager.t} (Fig 7). Examples, the CLI, and the
    benchmarks all build on it; tests that need finer control construct
    mark modules directly with custom openers. *)

type t

val create : unit -> t

(** {1 Documents}

    [add_*] registers an open document under a file name (replacing any
    previous one — the base application saved a new version). [open_*]
    is what the mark modules call. *)

val add_workbook : t -> string -> Si_spreadsheet.Workbook.t -> unit
val add_xml : t -> string -> Si_xmlk.Node.t -> unit
val add_text : t -> string -> Si_textdoc.Textdoc.t -> unit
val add_word : t -> string -> Si_wordproc.Wordproc.t -> unit
val add_slides : t -> string -> Si_slides.Slides.t -> unit
val add_pdf : t -> string -> Si_pdfdoc.Pdfdoc.t -> unit
val add_html : t -> string -> string -> unit
(** [add_html t name source] parses the HTML source. *)

val open_workbook : t -> string -> (Si_spreadsheet.Workbook.t, string) result
val open_xml : t -> string -> (Si_xmlk.Node.t, string) result
val open_text : t -> string -> (Si_textdoc.Textdoc.t, string) result
val open_word : t -> string -> (Si_wordproc.Wordproc.t, string) result
val open_slides : t -> string -> (Si_slides.Slides.t, string) result
val open_pdf : t -> string -> (Si_pdfdoc.Pdfdoc.t, string) result
val open_html : t -> string -> (Si_xmlk.Node.t, string) result

val document_names : t -> (string * string) list
(** [(kind, name)] pairs, sorted. *)

(** {1 Mark modules} *)

type opener_wrap = {
  wrap :
    'a. (string -> ('a, string) result) -> string -> ('a, string) result;
}
(** A combinator slipped under every mark module's opener — the hook the
    deterministic fault-injection harness ([Si_workload.Faults]) plugs
    into, and the seam for any other cross-cutting access policy. *)

val install_modules : ?wrap:opener_wrap -> t -> Manager.t -> unit
(** Registers the seven standard mark modules (excel, xml, text, word,
    slides, pdf, html), each resolving against this desktop, plus their
    static address linters ({!Manager.register_address_linter}) — those
    are purely syntactic and bypass [wrap]. When [wrap] is given, every
    module's opener goes through it.
    @raise Invalid_argument if one of those module names is taken. *)
