(* Resilient base-source access: circuit breakers, bounded retries with
   deterministic backoff, per-call budgets, and degraded-mode resolution
   falling back to the excerpt cached at mark-creation time.

   The codebase is deterministic (no wall clock in the data path), so all
   "time" here is virtual and measured in attempts: a breaker's cool-down
   elapses as calls are rejected, and backoff delays are bookkeeping units
   charged against the per-call budget rather than sleeps. *)

let retry_count = Si_obs.Registry.counter "resilient.retry"
let breaker_open_count = Si_obs.Registry.counter "resilient.breaker_open"
let fresh_count = Si_obs.Registry.counter "resilient.fresh"
let degraded_count = Si_obs.Registry.counter "resilient.degraded"

type config = {
  failure_threshold : int;
  cooldown : int;
  max_attempts : int;
  backoff_base : int;
  backoff_cap : int;
  call_budget : int;
  quarantine_probes : int;
  jitter : int -> int;
}

(* The same splitmix64 stream as Si_workload.Rng — reimplemented here
   because the workload library sits above this one in the dependency
   order. Two streams with the same seed replay the same jitter. *)
let deterministic_jitter ~seed =
  let state = ref (Int64.of_int seed) in
  fun bound ->
    if bound <= 0 then 0
    else begin
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      let z = !state in
      let z =
        Int64.mul
          (Int64.logxor z (Int64.shift_right_logical z 30))
          0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul
          (Int64.logxor z (Int64.shift_right_logical z 27))
          0x94D049BB133111EBL
      in
      let z = Int64.logxor z (Int64.shift_right_logical z 31) in
      Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int bound))
    end

let default_config () =
  {
    failure_threshold = 3;
    cooldown = 8;
    max_attempts = 3;
    backoff_base = 1;
    backoff_cap = 8;
    call_budget = 16;
    quarantine_probes = 2;
    jitter = deterministic_jitter ~seed:2001;
  }

type fault =
  | Attempts_exhausted of {
      source : string;
      detail : string;
      attempts : int;
      backoffs : int list;
    }
  | Breaker_open of { source : string; cooldown_left : int }
  | Budget_exhausted of { source : string; attempts : int; spent : int }

type outcome =
  | Fresh of Mark.resolution
  | Degraded of { excerpt : string; fault : fault }

let fault_to_string = function
  | Attempts_exhausted { source; detail; attempts; _ } ->
      Printf.sprintf "%s failed %d attempt(s): %s" source attempts detail
  | Breaker_open { source; cooldown_left } ->
      Printf.sprintf "%s circuit open (%d call(s) until probe)" source
        cooldown_left
  | Budget_exhausted { source; attempts; spent } ->
      Printf.sprintf "%s exhausted call budget (%d attempt(s), %d unit(s))"
        source attempts spent

type breaker_state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type breaker = {
  b_source : string;
  mutable b_state : breaker_state;
  mutable b_consecutive : int;
  mutable b_cooldown_left : int;
  mutable b_probe_failures : int;
  mutable b_failures : int;
  mutable b_successes : int;
  mutable b_rejected : int;
}

type t = { cfg : config; breakers : (string, breaker) Hashtbl.t }

let create ?config () =
  let cfg = match config with Some c -> c | None -> default_config () in
  { cfg; breakers = Hashtbl.create 8 }

let config t = t.cfg

let breaker t source =
  match Hashtbl.find_opt t.breakers source with
  | Some b -> b
  | None ->
      let b =
        {
          b_source = source;
          b_state = Closed;
          b_consecutive = 0;
          b_cooldown_left = 0;
          b_probe_failures = 0;
          b_failures = 0;
          b_successes = 0;
          b_rejected = 0;
        }
      in
      Hashtbl.add t.breakers source b;
      b

let record_success b =
  b.b_successes <- b.b_successes + 1;
  b.b_consecutive <- 0;
  b.b_probe_failures <- 0;
  b.b_state <- Closed

let record_failure t b =
  b.b_failures <- b.b_failures + 1;
  b.b_consecutive <- b.b_consecutive + 1;
  match b.b_state with
  | Half_open ->
      (* A failed probe reopens the breaker for another cool-down. *)
      b.b_probe_failures <- b.b_probe_failures + 1;
      b.b_state <- Open;
      b.b_cooldown_left <- t.cfg.cooldown
  | Closed when b.b_consecutive >= t.cfg.failure_threshold ->
      b.b_state <- Open;
      b.b_cooldown_left <- t.cfg.cooldown
  | Closed | Open -> ()

(* One managed call against [source]. [f ()] drives the base application;
   the result is either the value or the fault that kept it away. *)
let guarded t ~source f =
  let c = t.cfg in
  let b = breaker t source in
  let probe () =
    (* Half-open: a single unretried attempt decides the breaker. *)
    match f () with
    | Ok v ->
        record_success b;
        Ok v
    | Error detail ->
        record_failure t b;
        Error (Attempts_exhausted { source; detail; attempts = 1; backoffs = [] })
  in
  match b.b_state with
  | Open when b.b_cooldown_left > 0 ->
      Si_obs.Counter.incr breaker_open_count;
      b.b_cooldown_left <- b.b_cooldown_left - 1;
      b.b_rejected <- b.b_rejected + 1;
      Error (Breaker_open { source; cooldown_left = b.b_cooldown_left })
  | Open ->
      b.b_state <- Half_open;
      probe ()
  | Half_open -> probe ()
  | Closed ->
      (* Retry loop: every attempt costs one budget unit, every scheduled
         backoff delay costs its length. *)
      let rec go attempt spent backoffs =
        if spent + 1 > c.call_budget then
          Error
            (Budget_exhausted { source; attempts = attempt - 1; spent })
        else
          match f () with
          | Ok v ->
              record_success b;
              Ok v
          | Error detail ->
              record_failure t b;
              if b.b_state = Open || attempt >= c.max_attempts then
                (* Tripped mid-call (stop hammering a dying source) or out
                   of attempts. *)
                Error
                  (Attempts_exhausted
                     { source; detail; attempts = attempt;
                       backoffs = List.rev backoffs })
              else
                let base =
                  min c.backoff_cap (c.backoff_base lsl (attempt - 1))
                in
                let delay = base + c.jitter (base + 1) in
                Si_obs.Counter.incr retry_count;
                go (attempt + 1) (spent + 1 + delay) (delay :: backoffs)
      in
      go 1 0 []

let resolve_plain ?module_name t mgr id =
  match Manager.mark mgr id with
  | None -> Error (Manager.Unknown_mark id)
  | Some m -> (
      match Manager.find_module ?module_name mgr m.Mark.mark_type with
      | Error detail ->
          Error (Manager.No_module { mark_type = m.Mark.mark_type; detail })
      | Ok mm -> (
          let source = Mark.source m in
          match guarded t ~source (fun () -> mm.Manager.resolve m.Mark.fields)
          with
          | Ok res ->
              Si_obs.Counter.incr fresh_count;
              Ok (Fresh res)
          | Error fault ->
              Si_obs.Counter.incr degraded_count;
              Ok (Degraded { excerpt = m.Mark.excerpt; fault })))

let resolve ?module_name t mgr id =
  if Si_obs.Span.on () then
    Si_obs.Span.with_ ~layer:"resilient" ~op:"resolve" (fun () ->
        resolve_plain ?module_name t mgr id)
  else resolve_plain ?module_name t mgr id

let quarantined t source =
  match Hashtbl.find_opt t.breakers source with
  | Some b -> b.b_probe_failures >= t.cfg.quarantine_probes
  | None -> false

let check_drift t mgr id =
  match Manager.mark mgr id with
  | None -> Error (Manager.Unknown_mark id)
  | Some m -> (
      match resolve t mgr id with
      | Error e -> Ok (Manager.Unresolvable e)
      | Ok (Fresh res) ->
          if String.equal res.Mark.res_excerpt m.Mark.excerpt then
            Ok Manager.Unchanged
          else
            Ok
              (Manager.Changed
                 { was = m.Mark.excerpt; now = res.Mark.res_excerpt })
      | Ok (Degraded { fault; _ }) ->
          let source = Mark.source m in
          let e =
            Manager.Resolution_failed
              { source; detail = fault_to_string fault }
          in
          Ok
            (if quarantined t source then Manager.Quarantined e
             else Manager.Unresolvable e))

let wrap_module t (mm : Manager.mark_module) =
  {
    mm with
    Manager.resolve =
      (fun fields ->
        let source =
          match List.assoc_opt "fileName" fields with
          | Some f -> f
          | None -> "<" ^ mm.Manager.handles_type ^ ">"
        in
        match guarded t ~source (fun () -> mm.Manager.resolve fields) with
        | Ok _ as ok -> ok
        | Error fault -> Error (fault_to_string fault));
  }

type breaker_info = {
  source : string;
  state : breaker_state;
  consecutive_failures : int;
  total_failures : int;
  total_successes : int;
  rejected : int;
  probe_failures : int;
}

let info b =
  {
    source = b.b_source;
    state = b.b_state;
    consecutive_failures = b.b_consecutive;
    total_failures = b.b_failures;
    total_successes = b.b_successes;
    rejected = b.b_rejected;
    probe_failures = b.b_probe_failures;
  }

let health t =
  Hashtbl.fold (fun _ b acc -> info b :: acc) t.breakers []
  |> List.sort (fun a b -> String.compare a.source b.source)

let breaker_for_source t source =
  Option.map info (Hashtbl.find_opt t.breakers source)

let reset t = Hashtbl.reset t.breakers
