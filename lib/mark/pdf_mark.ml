module Pd = Si_pdfdoc.Pdfdoc
open Fields

type address = { file_name : string; region : Pd.region }

let type_name = "pdf"

let fields_of_address a =
  let r = a.region.Pd.rect in
  [
    ("fileName", a.file_name);
    ("page", string_of_int a.region.Pd.page);
    ("x", Printf.sprintf "%.2f" r.Pd.x);
    ("y", Printf.sprintf "%.2f" r.Pd.y);
    ("w", Printf.sprintf "%.2f" r.Pd.w);
    ("h", Printf.sprintf "%.2f" r.Pd.h);
  ]

let address_of_fields fields =
  let* file_name = get fields "fileName" in
  let* page = get_int fields "page" in
  let* x = get_float fields "x" in
  let* y = get_float fields "y" in
  let* w = get_float fields "w" in
  let* h = get_float fields "h" in
  if page < 1 then Error "page numbers start at 1"
  else if w < 0. || h < 0. then Error "negative region"
  else Ok { file_name; region = { Pd.page; rect = { Pd.x; y; w; h } } }

let capture doc ~file_name ~page_number selected =
  match Pd.bounding_region doc ~page_number selected with
  | Some region -> Ok (fields_of_address { file_name; region })
  | None -> Error "empty selection or missing page"

let resolve_address open_document a =
  let* doc = open_document a.file_name in
  match Pd.nth_page doc a.region.Pd.page with
  | None ->
      Error (Printf.sprintf "no page %d in %s" a.region.Pd.page a.file_name)
  | Some page -> (
      match Pd.spans_in_region doc a.region with
      | [] ->
          Error
            (Printf.sprintf "region selects nothing on page %d of %s"
               a.region.Pd.page a.file_name)
      | selected ->
          let excerpt =
            String.concat "\n"
              (List.map (fun s -> s.Pd.span_text) selected)
          in
          let doc_title =
            if Pd.title doc = "" then a.file_name else Pd.title doc
          in
          Ok
            {
              Mark.res_excerpt = excerpt;
              res_context = Pd.page_text page;
              res_display =
                Printf.sprintf "%s p.%d: %s" doc_title a.region.Pd.page
                  excerpt;
              res_source =
                Printf.sprintf "%s p.%d" a.file_name a.region.Pd.page;
            })

let known_fields = [ "fileName"; "page"; "x"; "y"; "w"; "h" ]

let lint_address fields =
  Fields.lint ~known:known_fields
    ~parse:(fun fs -> Result.map ignore (address_of_fields fs))
    fields

let mark_module ?(module_name = "pdf") ~open_document () =
  {
    Manager.module_name;
    handles_type = type_name;
    validate =
      (fun fields -> Result.map (fun _ -> ()) (address_of_fields fields));
    resolve =
      (fun fields ->
        let* a = address_of_fields fields in
        resolve_address open_document a);
  }
