(** PDF marks: [fileName], [page], and a rectangular region
    ([x]/[y]/[w]/[h]) — an Acrobat-style highlight. PDF documents are
    among SLIMPad's supported base types (paper §3). *)

type address = { file_name : string; region : Si_pdfdoc.Pdfdoc.region }

val type_name : string
(** ["pdf"] *)

val fields_of_address : address -> (string * string) list
val address_of_fields : (string * string) list -> (address, string) result

val known_fields : string list
(** The address field names this module's codec understands. *)

val lint_address : (string * string) list -> string list
(** All address well-formedness problems ({!Fields.lint}): codec parse
    failure, duplicate fields, unknown fields. Empty means well-formed. *)

val mark_module :
  ?module_name:string ->
  open_document:(string -> (Si_pdfdoc.Pdfdoc.t, string) result) ->
  unit -> Manager.mark_module
(** Resolution: excerpt = text of spans intersecting the region; context =
    the whole page's text; display = ["title p.N: excerpt"]. An empty
    region (no spans) is an error — the highlight selects nothing. *)

val capture :
  Si_pdfdoc.Pdfdoc.t -> file_name:string ->
  page_number:int -> Si_pdfdoc.Pdfdoc.text_span list ->
  ((string * string) list, string) result
(** Fields for a selection of spans: stores their bounding region. *)
