module Xml = Si_xmlk

type t = {
  mark_id : string;
  mark_type : string;
  fields : (string * string) list;
  excerpt : string;
}

let make ~id ~mark_type ~fields ?(excerpt = "") () =
  { mark_id = id; mark_type; fields; excerpt }

let field t name = List.assoc_opt name t.fields

let field_exn t name =
  match field t name with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Mark %s has no field %S" t.mark_id name)

(* The base source a mark lives on. Every standard module addresses its
   document through a "fileName" field; marks without one are grouped per
   type. Resilience (breakers, health reports) keys on this. *)
let source t =
  match field t "fileName" with
  | Some f -> f
  | None -> "<" ^ t.mark_type ^ ">"

let equal a b =
  String.equal a.mark_id b.mark_id
  && String.equal a.mark_type b.mark_type
  && List.sort compare a.fields = List.sort compare b.fields
  && String.equal a.excerpt b.excerpt

let pp ppf t =
  Format.fprintf ppf "<mark %s : %s%s>" t.mark_id t.mark_type
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf " %s=%S" k v) t.fields))

type resolution = {
  res_excerpt : string;
  res_context : string;
  res_display : string;
  res_source : string;
}

type behaviour = Navigate | Extract_content | Display_in_place

let apply_behaviour behaviour res =
  match behaviour with
  | Navigate -> res.res_context
  | Extract_content -> res.res_excerpt
  | Display_in_place -> res.res_display

(* WAL record encoding (shared field-list codec from Si_wal.Record).
   Layout: tag, id, type, excerpt, then alternating field name/value. *)

let record_tag = "m+"

let to_record t =
  Si_wal.Record.encode_fields
    (record_tag :: t.mark_id :: t.mark_type :: t.excerpt
    :: List.concat_map (fun (k, v) -> [ k; v ]) t.fields)

let of_record payload =
  match Si_wal.Record.decode_fields payload with
  | Error _ as e -> e
  | Ok (tag :: id :: mark_type :: excerpt :: rest) when tag = record_tag ->
      let rec pairs acc = function
        | [] -> Ok (List.rev acc)
        | k :: v :: rest -> pairs ((k, v) :: acc) rest
        | [ k ] -> Error (Printf.sprintf "mark field %S has no value" k)
      in
      Result.map
        (fun fields -> make ~id ~mark_type ~fields ~excerpt ())
        (pairs [] rest)
  | Ok (tag :: _) -> Error (Printf.sprintf "not a mark record (tag %S)" tag)
  | Ok _ -> Error "truncated mark record"

let to_xml t =
  Xml.Node.element "mark"
    ~attrs:[ ("id", t.mark_id); ("type", t.mark_type) ]
    (List.map
       (fun (k, v) ->
         Xml.Node.element "field" ~attrs:[ ("name", k) ] [ Xml.Node.text v ])
       t.fields
    @
    if t.excerpt = "" then []
    else [ Xml.Node.element "excerpt" [ Xml.Node.text t.excerpt ] ])

let of_xml node =
  match (node, Xml.Node.attr "id" node, Xml.Node.attr "type" node) with
  | Xml.Node.Element { name = "mark"; _ }, Some id, Some mark_type ->
      let fields =
        Xml.Node.find_children "field" node
        |> List.filter_map (fun f ->
               Option.map
                 (fun name -> (name, Xml.Node.text_content f))
                 (Xml.Node.attr "name" f))
      in
      let excerpt =
        match Xml.Node.find_child "excerpt" node with
        | Some e -> Xml.Node.text_content e
        | None -> ""
      in
      Ok (make ~id ~mark_type ~fields ~excerpt ())
  | Xml.Node.Element { name = "mark"; _ }, _, _ ->
      Error "mark missing id or type attribute"
  | _ -> Error "expected a <mark> element"
