module Td = Si_textdoc.Textdoc
open Fields

type address = { file_name : string; span : Td.span; selected : string }

let type_name = "text"

let fields_of_address a =
  [
    ("fileName", a.file_name);
    ("offset", string_of_int a.span.Td.offset);
    ("length", string_of_int a.span.Td.length);
    ("selected", a.selected);
  ]

let address_of_fields fields =
  let* file_name = get fields "fileName" in
  let* offset = get_int fields "offset" in
  let* length = get_int fields "length" in
  if offset < 0 || length < 0 then Error "negative span"
  else
    let selected = Option.value (get_opt fields "selected") ~default:"" in
    Ok { file_name; span = { Td.offset; length }; selected }

let capture doc ~file_name span =
  match Td.extract doc span with
  | Some selected -> Ok (fields_of_address { file_name; span; selected })
  | None -> Error "span out of bounds"

(* The effective span: the stored one if it still carries the remembered
   text, otherwise the nearest occurrence of that text. *)
let locate doc a =
  match Td.extract doc a.span with
  | Some current when a.selected = "" || current = a.selected -> Some a.span
  | Some _ | None ->
      if a.selected = "" then None
      else Td.reanchor doc ~excerpt:a.selected ~stale_offset:a.span.Td.offset

let resolve_address open_document context_lines a =
  let* doc = open_document a.file_name in
  match locate doc a with
  | None ->
      Error
        (Printf.sprintf "span %d+%d invalid in %s and excerpt not found"
           a.span.Td.offset a.span.Td.length a.file_name)
  | Some span ->
      let excerpt = Td.extract_exn doc span in
      let line =
        match Td.position_of_offset doc span.Td.offset with
        | Some p -> p.Td.line
        | None -> 0
      in
      Ok
        {
          Mark.res_excerpt = excerpt;
          res_context = Td.context doc span ~lines_around:context_lines;
          res_display = Printf.sprintf "%s:%d: %s" a.file_name line excerpt;
          res_source = Printf.sprintf "%s:%d" a.file_name line;
        }

let known_fields = [ "fileName"; "offset"; "length"; "selected" ]

let lint_address fields =
  Fields.lint ~known:known_fields
    ~parse:(fun fs -> Result.map ignore (address_of_fields fs))
    fields

let mark_module ?(module_name = "text") ?(context_lines = 2) ~open_document ()
    =
  {
    Manager.module_name;
    handles_type = type_name;
    validate =
      (fun fields -> Result.map (fun _ -> ()) (address_of_fields fields));
    resolve =
      (fun fields ->
        let* a = address_of_fields fields in
        resolve_address open_document context_lines a);
  }
