module Xml = Si_xmlk
module Hd = Si_htmldoc.Htmldoc
open Fields

type target = Anchor of string | Node_path of Xml.Path.t | Selector of string
type address = { file_name : string; target : target }

let type_name = "html"

let fields_of_address a =
  ("fileName", a.file_name)
  ::
  (match a.target with
  | Anchor id -> [ ("anchor", id) ]
  | Node_path p -> [ ("nodePath", Xml.Path.to_string p) ]
  | Selector s -> [ ("selector", s) ])

let address_of_fields fields =
  let* file_name = get fields "fileName" in
  match get_opt fields "anchor" with
  | Some id when id <> "" -> Ok { file_name; target = Anchor id }
  | Some _ -> Error "empty anchor"
  | None ->
  match get_opt fields "selector" with
  | Some sel -> (
      match Si_htmldoc.Selector.parse sel with
      | Ok _ -> Ok { file_name; target = Selector sel }
      | Error msg -> Error (Printf.sprintf "bad selector %S: %s" sel msg))
  | None -> (
      let* path_text = get fields "nodePath" in
      match Xml.Path.of_string path_text with
      | Ok p -> Ok { file_name; target = Node_path p }
      | Error msg -> Error (Printf.sprintf "bad nodePath %S: %s" path_text msg))

let capture_anchor root ~file_name id =
  if List.mem_assoc id (Hd.anchors root) then
    Ok (fields_of_address { file_name; target = Anchor id })
  else Error (Printf.sprintf "no anchor %S in the page" id)

let capture_selector root ~file_name sel =
  match Si_htmldoc.Selector.parse sel with
  | Error msg -> Error (Printf.sprintf "bad selector %S: %s" sel msg)
  | Ok parsed -> (
      match Si_htmldoc.Selector.select_first root parsed with
      | Some _ -> Ok (fields_of_address { file_name; target = Selector sel })
      | None -> Error (Printf.sprintf "selector %S matches nothing" sel))

let capture_node ~root ~file_name node =
  match Xml.Path.path_of ~root node with
  | Some p -> Ok (fields_of_address { file_name; target = Node_path p })
  | None -> Error "selected node is not part of the page"

let resolve_address open_page a =
  let* root = open_page a.file_name in
  let* node =
    match a.target with
    | Anchor id -> (
        match List.assoc_opt id (Hd.anchors root) with
        | Some n -> Ok n
        | None ->
            Error (Printf.sprintf "no anchor %S in %s" id a.file_name))
    | Node_path p -> (
        match Xml.Path.resolve_element root p with
        | Some n -> Ok n
        | None ->
            Error
              (Printf.sprintf "path %s does not resolve in %s"
                 (Xml.Path.to_string p) a.file_name))
    | Selector sel -> (
        match Si_htmldoc.Selector.query root sel with
        | Ok (n :: _) -> Ok n
        | Ok [] ->
            Error
              (Printf.sprintf "selector %S matches nothing in %s" sel
                 a.file_name)
        | Error msg -> Error msg)
  in
  let page_title = Option.value (Hd.title root) ~default:a.file_name in
  let fragment =
    match a.target with
    | Anchor id -> "#" ^ id
    | Node_path p -> "#" ^ Xml.Path.to_string p
    | Selector sel -> "?" ^ sel
  in
  Ok
    {
      Mark.res_excerpt = Hd.to_text node;
      res_context = Printf.sprintf "%s\n\n%s" page_title (Hd.to_text root);
      res_display = Xml.Print.to_string node;
      res_source = a.file_name ^ fragment;
    }

let known_fields = [ "fileName"; "anchor"; "nodePath"; "selector" ]

let lint_address fields =
  Fields.lint ~known:known_fields
    ~parse:(fun fs -> Result.map ignore (address_of_fields fs))
    fields

let mark_module ?(module_name = "html") ~open_page () =
  {
    Manager.module_name;
    handles_type = type_name;
    validate =
      (fun fields -> Result.map (fun _ -> ()) (address_of_fields fields));
    resolve =
      (fun fields ->
        let* a = address_of_fields fields in
        resolve_address open_page a);
  }
