(** Portable capture bundles: pads "in captivity", shipped as one file.

    The paper's bundles package superimposed information over base
    sources a reader may not hold; this module packages a whole pad —
    triples + metamodel, every mark module's marks, the
    mark-creation-time cached excerpts, optionally the base documents
    the marks address — into one deterministic, CRC-framed artifact
    for sharing, migration, and archival (paper §5 interoperability).

    {2 Format}

    A bundle {e is} a {!Si_wal.Binary} snapshot container (the PR 6
    codec: 8-byte magic, u32-le section count, per-section
    name/length/CRC framing) carrying the standard snapshot sections
    plus bundle-specific ones:

    {v
    offset 0   "SIBF\x00\x00\x00\x01"      container magic + version
    offset 8   u32-le section count
    per section:
      u32-le name length | name | u32-le payload length
      u32-le crc32(payload) | payload
    sections, in order:
      bundle-meta    Record fields ["sibundle"; version; workspace-id;
                     triples; marks; bases]
      atoms          snapshot-local atom table (Trim compact codec)
      triples        sorted triple rows over those atoms
      marks          <marks> XML (all modules, excerpts included)
      journal        <journal> XML (provenance; never applied)
      excerpts       Record fields [id; excerpt; id; excerpt; ...]
      report         Record fields [module; source; reason; ...]
                     (present only when capture recorded problems)
      replication    Record fields [term; seq] (present only when the
                     source pad has a replication watermark)
      base:<t>:<n>   Record fields [disk-file-name; contents], one per
                     captured base document, sorted by section name
                     (present only under --with-bases)
    v}

    Because the container and the [atoms]/[triples]/[marks]/[journal]/
    [replication] sections are exactly the WAL snapshot's — and
    snapshot decoding ignores unknown sections — a bundle doubles as
    the replication stack's snapshot-transfer format: it loads through
    {!Si_slimpad.Slimpad.of_snapshot_bytes}, installs into an archive
    as a restore base ({!to_archive}), and bootstraps a follower
    ({!Si_slimpad.Slimpad.open_replica}'s [bootstrap]).

    Triples are sorted and atom ids are section-local, so equal pads
    produce byte-identical [atoms]/[triples]/[marks] sections across
    processes, machines, and compiler versions ({!content_digest}).

    {2 Discipline}

    Capture is {e greedy}: a base document that fails to read is
    recorded in the capture report (and in the artifact's [report]
    section) but never aborts the artifact. Apply is {e conservative}:
    install-only — triples are added, marks are installed only under
    ids the target does not hold, nothing is overwritten; cached
    excerpts and base documents restore only on request; failures in
    one mark never block the rest. Applying through a journaled pad
    writes every install into the WAL, so a restore is crash-safe. *)

val schema_version : int
(** The version this build writes. *)

val min_schema_version : int
(** The oldest version this build still applies. *)

(** {1 Reports} *)

type problem = {
  p_module : string;  (** Mark module / subsystem that failed. *)
  p_source : string;  (** Base source, mark id, or section name. *)
  p_reason : string;
}

val problem_to_string : problem -> string
(** ["module: source: reason"]. *)

type capture_report = {
  captured_triples : int;
  captured_marks : int;
  captured_bases : int;
  capture_problems : problem list;
      (** Per-module failures (base documents that would not read);
          the artifact was still produced without them. *)
}

type apply_report = {
  added_triples : int;
  skipped_triples : int;  (** Already present in the target. *)
  installed_marks : int;
  skipped_marks : int;  (** Target already holds the id. *)
  restored_excerpts : int;
  restored_bases : int;
  skipped_bases : int;  (** Base file already present on disk. *)
  apply_problems : problem list;
}

(** {1 Base-document access}

    Capture and apply never touch the filesystem layout themselves;
    the caller supplies the mapping. {!Layout} provides the standard
    workspace one. *)

type base_reader =
  kind:string -> name:string -> (string * string, string) result
(** Read the base document a mark addresses: [kind] is the mark type,
    [name] the logical document name (the mark's [fileName] field).
    Returns [(disk file name, contents)]. *)

type base_writer =
  kind:string ->
  name:string ->
  filename:string ->
  string ->
  (bool, string) result
(** Restore a captured base document; [Ok false] means it was skipped
    (already present — apply never overwrites). *)

module Layout : sig
  val disk_name : kind:string -> name:string -> string
  (** The on-disk file name for a logical document: rich documents
      carry a serialization suffix ([.workbook.xml], [.doc.xml],
      [.slides.xml], [.pdf.xml]); text/HTML/XML names are already file
      names. *)

  val reader : dir:string -> base_reader
  val writer : dir:string -> base_writer
  (** Workspace-directory reader/writer. The writer refuses file names
      that are not plain basenames (a hostile bundle cannot escape the
      workspace) and skips files that already exist. *)
end

(** {1 Capture} *)

val capture :
  ?workspace_id:string ->
  ?bases:base_reader ->
  Si_slimpad.Slimpad.t ->
  string * capture_report
(** Package the pad: one deterministic artifact (the bytes) plus the
    report. [workspace_id] stamps the metadata section (default [""]);
    [bases] captures each distinct base document some mark addresses —
    read failures become report problems, never errors. Total. *)

val capture_to_file :
  ?workspace_id:string ->
  ?bases:base_reader ->
  Si_slimpad.Slimpad.t ->
  path:string ->
  (capture_report, string) result
(** {!capture}, then write the artifact atomically (temp + rename). *)

(** {1 Inspection} *)

type meta = {
  version : int;
  workspace_id : string;
  triple_count : int;
  mark_count : int;
  base_count : int;
  watermark : (int * int) option;  (** Replication [(term, seq)]. *)
}

val meta_of : string -> (meta, string) result
(** Decode the metadata of bundle bytes. Errors on container damage, a
    missing/malformed [bundle-meta] section, or a version outside
    [[min_schema_version, schema_version]]. *)

val report_of : string -> (capture_report, string) result
(** The capture report embedded in the artifact. *)

val verify : string -> problem list
(** Offline verification, never an exception and never a partial stop:
    container magic/framing/CRCs, schema-version range, section
    decodability (triples, marks, journal, excerpts, report, bases),
    and dangling excerpt entries naming marks the bundle does not
    carry. [[]] means clean. Powers lint rule SL308. *)

val content_digest : string -> (string, string) result
(** Hex digest over the [atoms]/[triples]/[marks] sections — the
    superimposed content, independent of metadata, journal history,
    watermark, and base payloads. Equal pads bundle to equal digests
    on any machine or compiler version. *)

val app_digest : Si_slimpad.Slimpad.t -> string
(** The {!content_digest} a capture of this pad would have — what a
    round-tripped workspace is compared against. *)

(** {1 Apply} *)

val apply :
  ?excerpts:bool ->
  ?bases:base_writer ->
  Si_slimpad.Slimpad.t ->
  string ->
  (apply_report, string) result
(** Install the bundle into the pad: every triple not already present
    is added, every mark under a fresh id is installed — through the
    pad's ordinary mutation path, so a journaled target writes each
    install to its WAL. [excerpts] (default [false]) restores the
    cached excerpts onto installed marks; without it they install
    blank and re-resolve from base documents on demand. [bases]
    restores captured base documents through the writer. The journal
    section is provenance only and is never applied. [Error] only on
    container/metadata damage; per-mark and per-base failures land in
    [apply_problems]. *)

val apply_file :
  ?excerpts:bool ->
  ?bases:base_writer ->
  Si_slimpad.Slimpad.t ->
  path:string ->
  (apply_report, string) result

(** {1 Replication integration} *)

val to_archive :
  archive:string -> string -> (Si_wal.Segment.base, string) result
(** Install bundle bytes into a shipping archive as a
    [base-<term>-<seq>.base] restore point at the bundle's replication
    watermark (at [(0, 0)] when it has none), creating the directory
    when missing. {!Si_wal.Segment.restore_plan} and
    {!Si_slimpad.Slimpad.restore_at} then treat the bundle exactly
    like a leader-cut base snapshot. *)

(** {1 File I/O} *)

val read_file : string -> (string, string) result
val write_file : path:string -> string -> (unit, string) result
(** Atomic (temp + rename), like every other persist in the tree. *)
