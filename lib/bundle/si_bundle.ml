(* Capture bundles: a pad packaged as one deterministic, CRC-framed
   artifact. The container is the WAL binary snapshot codec with extra
   sections — snapshot decoding ignores sections it does not know, so
   a bundle is directly loadable as a snapshot (replica bootstrap,
   archive bases) while carrying metadata, the capture report, cached
   excerpts, and optional base documents on top.

   Capture is greedy (per-module failures go into the report, the
   artifact is always produced); apply is conservative (install-only,
   nothing overwritten, opt-in excerpt/base restore, one bad mark
   never blocks the rest). *)

module Slimpad = Si_slimpad.Slimpad
module Dmi = Si_slim.Dmi
module Trim = Si_triple.Trim
module Manager = Si_mark.Manager
module Mark = Si_mark.Mark
module Wbin = Si_wal.Binary
module Record = Si_wal.Record
module Xml = Si_xmlk

let schema_version = 1
let min_schema_version = 1

(* --- observability --------------------------------------------------- *)

let capture_count = Si_obs.Registry.counter "bundle.capture"
let capture_bytes = Si_obs.Registry.counter "bundle.capture.bytes"
let capture_latency = Si_obs.Registry.histogram "bundle.capture"
let apply_count = Si_obs.Registry.counter "bundle.apply"
let apply_bytes = Si_obs.Registry.counter "bundle.apply.bytes"
let apply_latency = Si_obs.Registry.histogram "bundle.apply"

let timed hist ~op f =
  if Si_obs.Span.on () then Si_obs.Span.timed hist ~layer:"bundle" ~op f
  else f ()

(* --- section names --------------------------------------------------- *)

let meta_section = "bundle-meta"
let atoms_section = "atoms"
let triples_section = "triples"
let marks_section = "marks"
let journal_section = "journal"
let excerpts_section = "excerpts"
let report_section = "report"
let replication_section = "replication"
let base_prefix = "base:"
let format_tag = "sibundle"

(* --- reports --------------------------------------------------------- *)

type problem = { p_module : string; p_source : string; p_reason : string }

let problem ~m ~source reason =
  { p_module = m; p_source = source; p_reason = reason }

let problem_to_string p =
  Printf.sprintf "%s: %s: %s" p.p_module p.p_source p.p_reason

type capture_report = {
  captured_triples : int;
  captured_marks : int;
  captured_bases : int;
  capture_problems : problem list;
}

type apply_report = {
  added_triples : int;
  skipped_triples : int;
  installed_marks : int;
  skipped_marks : int;
  restored_excerpts : int;
  restored_bases : int;
  skipped_bases : int;
  apply_problems : problem list;
}

(* --- base-document layout -------------------------------------------- *)

type base_reader =
  kind:string -> name:string -> (string * string, string) result

type base_writer =
  kind:string ->
  name:string ->
  filename:string ->
  string ->
  (bool, string) result

let protect_io f =
  match f () with v -> Ok v | exception Sys_error e -> Error e

let read_file path =
  protect_io (fun () -> In_channel.with_open_bin path In_channel.input_all)

let write_file ~path contents =
  protect_io (fun () ->
      let temp = path ^ Xml.Print.temp_suffix in
      let oc = open_out_bin temp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc contents);
      Sys.rename temp path)

module Layout = struct
  (* Mirrors the workspace convention: rich documents live on disk
     with a serialization suffix but keep their logical name on the
     desktop (so mark fileName fields stay stable); text/HTML/XML
     logical names already are file names. *)
  let disk_name ~kind ~name =
    match kind with
    | "excel" -> name ^ ".workbook.xml"
    | "word" -> name ^ ".doc.xml"
    | "slides" -> name ^ ".slides.xml"
    | "pdf" -> name ^ ".pdf.xml"
    | _ -> name

  let reader ~dir ~kind ~name =
    let file = disk_name ~kind ~name in
    Result.map (fun contents -> (file, contents))
      (read_file (Filename.concat dir file))

  let writer ~dir ~kind:_ ~name:_ ~filename contents =
    (* A bundle is untrusted input: only plain basenames may land in
       the workspace, never a path that climbs out of it. *)
    if Filename.basename filename <> filename || filename = "" then
      Error (Printf.sprintf "%S is not a plain file name" filename)
    else
      let path = Filename.concat dir filename in
      if Sys.file_exists path then Ok false
      else Result.map (fun () -> true) (write_file ~path contents)
end

(* --- capture --------------------------------------------------------- *)

let meta_payload ~workspace_id ~triples ~marks ~bases =
  Record.encode_fields
    [
      format_tag;
      string_of_int schema_version;
      workspace_id;
      string_of_int triples;
      string_of_int marks;
      string_of_int bases;
    ]

let report_payload problems =
  Record.encode_fields
    (List.concat_map
       (fun p -> [ p.p_module; p.p_source; p.p_reason ])
       problems)

let excerpts_payload marks =
  List.concat_map
    (fun (m : Mark.t) ->
      if m.excerpt = "" then [] else [ m.mark_id; m.excerpt ])
    marks

(* The distinct (mark type, logical document name) pairs the marks
   address, in mark order — what --with-bases captures. *)
let base_targets marks =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (m : Mark.t) ->
      match Mark.field m "fileName" with
      | None -> None
      | Some name ->
          let key = (m.mark_type, name) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some key
          end)
    marks

let capture_sections ?(workspace_id = "") ?bases app =
  let trim = Dmi.trim (Slimpad.dmi app) in
  let marks_mgr = Slimpad.marks app in
  let marks = Manager.marks marks_mgr in
  let problems = ref [] in
  let base_sections =
    match bases with
    | None -> []
    | Some read ->
        List.filter_map
          (fun (kind, name) ->
            match read ~kind ~name with
            | Ok (filename, contents) ->
                Some
                  ( base_prefix ^ kind ^ ":" ^ name,
                    Record.encode_fields [ filename; contents ] )
            | Error reason ->
                problems := problem ~m:kind ~source:name reason :: !problems;
                None)
          (base_targets marks)
        |> List.sort compare
  in
  let problems = List.rev !problems in
  let report =
    {
      captured_triples = Trim.size trim;
      captured_marks = List.length marks;
      captured_bases = List.length base_sections;
      capture_problems = problems;
    }
  in
  let sections =
    ( meta_section,
      meta_payload ~workspace_id ~triples:report.captured_triples
        ~marks:report.captured_marks ~bases:report.captured_bases )
    :: Trim.binary_sections trim
    @ [
        (marks_section, Xml.Print.to_string (Manager.to_xml marks_mgr));
        ( journal_section,
          Xml.Print.to_string (Dmi.journal_to_xml (Slimpad.dmi app)) );
      ]
    @ (match excerpts_payload marks with
      | [] -> []
      | pairs -> [ (excerpts_section, Record.encode_fields pairs) ])
    @ (match problems with
      | [] -> []
      | ps -> [ (report_section, report_payload ps) ])
    @ (match Slimpad.rep_meta app with
      | None -> []
      | Some (term, seq) ->
          [
            ( replication_section,
              Record.encode_fields [ string_of_int term; string_of_int seq ]
            );
          ])
    @ base_sections
  in
  (sections, report)

let capture ?workspace_id ?bases app =
  timed capture_latency ~op:"bundle.capture" (fun () ->
      let sections, report = capture_sections ?workspace_id ?bases app in
      let bytes = Wbin.encode sections in
      Si_obs.Counter.incr capture_count;
      Si_obs.Counter.add capture_bytes (String.length bytes);
      (bytes, report))

let capture_to_file ?workspace_id ?bases app ~path =
  let bytes, report = capture ?workspace_id ?bases app in
  Result.map (fun () -> report) (write_file ~path bytes)

(* --- inspection ------------------------------------------------------ *)

type meta = {
  version : int;
  workspace_id : string;
  triple_count : int;
  mark_count : int;
  base_count : int;
  watermark : (int * int) option;
}

let watermark_of sections =
  match Wbin.section replication_section sections with
  | None -> None
  | Some raw -> (
      match Record.decode_fields raw with
      | Ok [ term; seq ] -> (
          match (int_of_string_opt term, int_of_string_opt seq) with
          | Some term, Some seq -> Some (term, seq)
          | _ -> None)
      | Ok _ | Error _ -> None)

let meta_of_sections sections =
  match Wbin.section meta_section sections with
  | None ->
      Error
        "no bundle-meta section: a snapshot container, not a capture bundle"
  | Some raw -> (
      match Record.decode_fields raw with
      | Error e -> Error ("bundle-meta: " ^ e)
      | Ok [ tag; version; workspace_id; triples; marks; bases ] -> (
          if tag <> format_tag then
            Error (Printf.sprintf "bundle-meta: unknown format tag %S" tag)
          else
            match
              ( int_of_string_opt version,
                int_of_string_opt triples,
                int_of_string_opt marks,
                int_of_string_opt bases )
            with
            | Some version, Some triple_count, Some mark_count, Some base_count
              ->
                if version < min_schema_version || version > schema_version
                then
                  Error
                    (Printf.sprintf
                       "bundle schema version %d is outside the supported \
                        range %d..%d"
                       version min_schema_version schema_version)
                else
                  Ok
                    {
                      version;
                      workspace_id;
                      triple_count;
                      mark_count;
                      base_count;
                      watermark = watermark_of sections;
                    }
            | _ -> Error "bundle-meta: non-numeric counts")
      | Ok _ -> Error "bundle-meta: expected six fields")

let decode bytes =
  match Wbin.decode bytes with
  | Error e -> Error ("bundle: " ^ e)
  | Ok sections ->
      Result.map (fun meta -> (meta, sections)) (meta_of_sections sections)

let meta_of bytes = Result.map fst (decode bytes)

let problems_of_report raw =
  match Record.decode_fields raw with
  | Error e -> Error ("report: " ^ e)
  | Ok fields ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | m :: source :: reason :: rest ->
            go (problem ~m ~source reason :: acc) rest
        | _ -> Error "report: truncated problem entry"
      in
      go [] fields

let report_of bytes =
  match decode bytes with
  | Error _ as e -> e
  | Ok (meta, sections) ->
      let problems =
        match Wbin.section report_section sections with
        | None -> Ok []
        | Some raw -> problems_of_report raw
      in
      Result.map
        (fun capture_problems ->
          {
            captured_triples = meta.triple_count;
            captured_marks = meta.mark_count;
            captured_bases = meta.base_count;
            capture_problems;
          })
        problems

(* Every <mark> child decoded on its own, so one malformed mark is one
   problem, not a lost section (Manager.of_xml is all-or-nothing by
   design; bundles want the salvageable rest). *)
let marks_of_section raw =
  match Xml.Parse.node raw with
  | Error e -> Error ("marks: " ^ Xml.Parse.error_to_string e)
  | Ok root -> (
      match Xml.Node.strip_whitespace root with
      | Xml.Node.Element { name = "marks"; _ } as r ->
          Ok
            (List.map
               (fun node -> (node, Mark.of_xml node))
               (Xml.Node.find_children "mark" r))
      | _ -> Error "marks: expected a <marks> root element")

let excerpt_table_of raw =
  match Record.decode_fields raw with
  | Error e -> Error ("excerpts: " ^ e)
  | Ok fields ->
      let table = Hashtbl.create 32 in
      let rec go = function
        | [] -> Ok table
        | id :: excerpt :: rest ->
            Hashtbl.replace table id excerpt;
            go rest
        | [ _ ] -> Error "excerpts: odd field count"
      in
      go fields

let base_sections_of sections =
  List.filter_map
    (fun (name, payload) ->
      if not (String.length name > String.length base_prefix
              && String.sub name 0 (String.length base_prefix) = base_prefix)
      then None
      else
        let rest =
          String.sub name (String.length base_prefix)
            (String.length name - String.length base_prefix)
        in
        match String.index_opt rest ':' with
        | None -> Some (name, "", rest, payload)
        | Some i ->
            Some
              ( name,
                String.sub rest 0 i,
                String.sub rest (i + 1) (String.length rest - i - 1),
                payload ))
    sections

(* --- offline verification (SL308's engine) --------------------------- *)

let verify bytes =
  match Wbin.decode bytes with
  | Error e -> [ problem ~m:"container" ~source:"header" e ]
  | Ok sections -> (
      match meta_of_sections sections with
      | Error e -> [ problem ~m:"container" ~source:meta_section e ]
      | Ok _ ->
          let problems = ref [] in
          let flag ~m ~source reason =
            problems := problem ~m ~source reason :: !problems
          in
          (match Si_triple.Trim.triples_of_binary_sections sections with
          | Ok _ -> ()
          | Error e -> flag ~m:"triples" ~source:triples_section e);
          let mark_ids = Hashtbl.create 32 in
          (match Wbin.section marks_section sections with
          | None -> flag ~m:"marks" ~source:marks_section "section missing"
          | Some raw -> (
              match marks_of_section raw with
              | Error e -> flag ~m:"marks" ~source:marks_section e
              | Ok marks ->
                  List.iter
                    (fun (_, decoded) ->
                      match decoded with
                      | Ok (m : Mark.t) ->
                          Hashtbl.replace mark_ids m.mark_id ()
                      | Error e ->
                          flag ~m:"marks" ~source:marks_section e)
                    marks));
          (match Wbin.section journal_section sections with
          | None -> ()
          | Some raw -> (
              match Xml.Parse.node raw with
              | Ok _ -> ()
              | Error e ->
                  flag ~m:"journal" ~source:journal_section
                    (Xml.Parse.error_to_string e)));
          (match Wbin.section excerpts_section sections with
          | None -> ()
          | Some raw -> (
              match excerpt_table_of raw with
              | Error e -> flag ~m:"excerpts" ~source:excerpts_section e
              | Ok table ->
                  Hashtbl.iter
                    (fun id _ ->
                      if not (Hashtbl.mem mark_ids id) then
                        flag ~m:"excerpts" ~source:id
                          "cached excerpt refers to a mark the bundle does \
                           not carry")
                    table));
          (match Wbin.section report_section sections with
          | None -> ()
          | Some raw -> (
              match problems_of_report raw with
              | Ok _ -> ()
              | Error e -> flag ~m:"report" ~source:report_section e));
          List.iter
            (fun (section, _kind, _name, payload) ->
              match Record.decode_fields payload with
              | Ok [ filename; _contents ] ->
                  if Filename.basename filename <> filename || filename = ""
                  then
                    flag ~m:"bases" ~source:section
                      (Printf.sprintf "unsafe base file name %S" filename)
              | Ok _ ->
                  flag ~m:"bases" ~source:section
                    "expected [file name; contents] fields"
              | Error e -> flag ~m:"bases" ~source:section e)
            (base_sections_of sections);
          List.sort compare !problems)

(* --- content digest -------------------------------------------------- *)

(* Atom ids are section-local and triples sorted, so equal pads hash
   equal on any machine or compiler version; journal, metadata,
   watermark, and base payloads deliberately stay outside the hash. *)
let digest_of ~atoms ~triples ~marks =
  Digest.to_hex
    (Digest.string (atoms ^ "\x00" ^ triples ^ "\x00" ^ marks))

let content_digest bytes =
  match Wbin.decode bytes with
  | Error e -> Error ("bundle: " ^ e)
  | Ok sections -> (
      match
        ( Wbin.section atoms_section sections,
          Wbin.section triples_section sections,
          Wbin.section marks_section sections )
      with
      | Some atoms, Some triples, Some marks ->
          Ok (digest_of ~atoms ~triples ~marks)
      | _ -> Error "bundle: missing atoms/triples/marks sections")

let app_digest app =
  let sections = Trim.binary_sections (Dmi.trim (Slimpad.dmi app)) in
  let atoms =
    Option.value (Wbin.section atoms_section sections) ~default:""
  in
  let triples =
    Option.value (Wbin.section triples_section sections) ~default:""
  in
  let marks = Xml.Print.to_string (Manager.to_xml (Slimpad.marks app)) in
  digest_of ~atoms ~triples ~marks

(* --- apply ----------------------------------------------------------- *)

let apply ?(excerpts = false) ?bases app bytes =
  timed apply_latency ~op:"bundle.apply" (fun () ->
      match decode bytes with
      | Error _ as e -> e
      | Ok (_meta, sections) -> (
          match Si_triple.Trim.triples_of_binary_sections sections with
          | Error e -> Error ("bundle: " ^ e)
          | Ok triples ->
              Si_obs.Counter.incr apply_count;
              Si_obs.Counter.add apply_bytes (String.length bytes);
              let problems = ref [] in
              let flag ~m ~source reason =
                problems := problem ~m ~source reason :: !problems
              in
              let trim = Dmi.trim (Slimpad.dmi app) in
              let added = ref 0 and dup = ref 0 in
              List.iter
                (fun t -> if Trim.add trim t then incr added else incr dup)
                triples;
              let excerpt_table =
                if not excerpts then Hashtbl.create 0
                else
                  match Wbin.section excerpts_section sections with
                  | None -> Hashtbl.create 0
                  | Some raw -> (
                      match excerpt_table_of raw with
                      | Ok table -> table
                      | Error e ->
                          flag ~m:"excerpts" ~source:excerpts_section e;
                          Hashtbl.create 0)
              in
              let mgr = Slimpad.marks app in
              let installed = ref 0
              and skipped = ref 0
              and restored_exc = ref 0 in
              (match Wbin.section marks_section sections with
              | None -> flag ~m:"marks" ~source:marks_section "section missing"
              | Some raw -> (
                  match marks_of_section raw with
                  | Error e -> flag ~m:"marks" ~source:marks_section e
                  | Ok marks ->
                      List.iter
                        (fun (_, decoded) ->
                          match decoded with
                          | Error e ->
                              flag ~m:"marks" ~source:marks_section e
                          | Ok (m : Mark.t) -> (
                              match Manager.mark mgr m.mark_id with
                              | Some _ ->
                                  (* Install-only: the target's mark
                                     wins, excerpt included. *)
                                  incr skipped
                              | None ->
                                  let excerpt =
                                    if not excerpts then ""
                                    else
                                      match
                                        Hashtbl.find_opt excerpt_table
                                          m.mark_id
                                      with
                                      | Some e -> e
                                      | None -> m.excerpt
                                  in
                                  if excerpt <> "" then incr restored_exc;
                                  Manager.put_mark mgr
                                    (Mark.make ~id:m.mark_id
                                       ~mark_type:m.mark_type
                                       ~fields:m.fields ~excerpt ());
                                  incr installed))
                        marks));
              let restored_bases = ref 0 and skipped_bases = ref 0 in
              (match bases with
              | None -> ()
              | Some write ->
                  List.iter
                    (fun (section, kind, name, payload) ->
                      match Record.decode_fields payload with
                      | Ok [ filename; contents ] -> (
                          match
                            write ~kind ~name ~filename contents
                          with
                          | Ok true -> incr restored_bases
                          | Ok false -> incr skipped_bases
                          | Error e -> flag ~m:kind ~source:name e)
                      | Ok _ ->
                          flag ~m:"bases" ~source:section
                            "expected [file name; contents] fields"
                      | Error e -> flag ~m:"bases" ~source:section e)
                    (base_sections_of sections));
              Ok
                {
                  added_triples = !added;
                  skipped_triples = !dup;
                  installed_marks = !installed;
                  skipped_marks = !skipped;
                  restored_excerpts = !restored_exc;
                  restored_bases = !restored_bases;
                  skipped_bases = !skipped_bases;
                  apply_problems = List.rev !problems;
                }))

let apply_file ?excerpts ?bases app ~path =
  Result.bind (read_file path) (apply ?excerpts ?bases app)

(* --- replication integration ----------------------------------------- *)

let to_archive ~archive bytes =
  match decode bytes with
  | Error _ as e -> e
  | Ok (meta, _) ->
      let term, seq = Option.value meta.watermark ~default:(0, 0) in
      Si_wal.Segment.import_base ~dir:archive ~term ~seq bytes
