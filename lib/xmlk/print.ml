let escape = Node.escape
let xml_decl = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>"

let add_open_tag buf (e : Node.element) ~self_closing =
  Buffer.add_char buf '<';
  Buffer.add_string buf e.name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape v);
      Buffer.add_char buf '"')
    e.attrs;
  Buffer.add_string buf (if self_closing then "/>" else ">")

let rec add_compact buf = function
  | Node.Text s -> Buffer.add_string buf (escape s)
  | Node.Cdata s ->
      Buffer.add_string buf "<![CDATA[";
      Buffer.add_string buf s;
      Buffer.add_string buf "]]>"
  | Node.Comment s ->
      Buffer.add_string buf "<!--";
      Buffer.add_string buf s;
      Buffer.add_string buf "-->"
  | Node.Pi (t, c) ->
      Buffer.add_string buf "<?";
      Buffer.add_string buf t;
      Buffer.add_char buf ' ';
      Buffer.add_string buf c;
      Buffer.add_string buf "?>"
  | Node.Element e ->
      if e.children = [] then add_open_tag buf e ~self_closing:true
      else begin
        add_open_tag buf e ~self_closing:false;
        List.iter (add_compact buf) e.children;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.name;
        Buffer.add_char buf '>'
      end

let to_string ?(decl = false) node =
  let buf = Buffer.create 256 in
  if decl then Buffer.add_string buf xml_decl;
  add_compact buf node;
  Buffer.contents buf

(* Mixed content (any text or CDATA child) must be printed compactly:
   breaking the line inside it would add whitespace to the text itself. *)
let has_text_child (e : Node.element) =
  List.exists
    (function Node.Text _ | Node.Cdata _ -> true | _ -> false)
    e.children

let to_string_pretty ?(decl = false) ?(indent = 2) node =
  let buf = Buffer.create 256 in
  if decl then begin
    Buffer.add_string buf xml_decl;
    Buffer.add_char buf '\n'
  end;
  let pad level = Buffer.add_string buf (String.make (level * indent) ' ') in
  let rec go level node =
    pad level;
    match node with
    | Node.Element e when e.children <> [] && not (has_text_child e) ->
        add_open_tag buf e ~self_closing:false;
        Buffer.add_char buf '\n';
        List.iter
          (fun c -> if not (Node.is_whitespace c) then go (level + 1) c)
          e.children;
        pad level;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.name;
        Buffer.add_char buf '>';
        Buffer.add_char buf '\n'
    | other ->
        add_compact buf other;
        Buffer.add_char buf '\n'
  in
  go 0 node;
  Buffer.contents buf

let to_file ?(pretty = true) path node =
  let contents =
    if pretty then to_string_pretty ~decl:true node
    else to_string ~decl:true node
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

(* Crash-safe variant: the document is written next to the target under a
   recognizable suffix and renamed into place, so readers only ever see
   either the previous complete file or the new complete file. A crash
   mid-write leaves a torn ".si-tmp" file that loaders ignore. *)
let temp_suffix = ".si-tmp"

let temp_path path = path ^ temp_suffix

let is_temp_path path =
  let ls = String.length temp_suffix and l = String.length path in
  l >= ls && String.sub path (l - ls) ls = temp_suffix

let to_file_atomic ?(pretty = true) path node =
  let contents =
    if pretty then to_string_pretty ~decl:true node
    else to_string ~decl:true node
  in
  let tmp = temp_path path in
  match
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc contents;
        Out_channel.flush oc);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      (* Best effort: don't leave the torn temp file behind. *)
      (try if Sys.file_exists tmp then Sys.remove tmp with Sys_error _ -> ());
      Error (Printf.sprintf "cannot write %s: %s" path msg)
