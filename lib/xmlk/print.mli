(** XML serialization. *)

val to_string : ?decl:bool -> Node.t -> string
(** Compact, single-line serialization. [decl] (default [false]) prepends the
    [<?xml version="1.0" encoding="UTF-8"?>] declaration. Round-trips with
    {!Parse.node} up to whitespace-free input. *)

val to_string_pretty : ?decl:bool -> ?indent:int -> Node.t -> string
(** Indented serialization (default [indent] 2). Elements with mixed content
    (any text or CDATA child) are kept on one line, so re-parsing followed by
    {!Node.strip_whitespace} restores the original tree. *)

val to_file : ?pretty:bool -> string -> Node.t -> unit
(** Write a document, with declaration, to a file. *)

val to_file_atomic : ?pretty:bool -> string -> Node.t -> (unit, string) result
(** Like {!to_file}, but crash-safe: the document is first written to
    [path ^ temp_suffix] and then renamed over [path], so a crash mid-write
    never leaves a torn target file — only a torn temp file, which loaders
    ignore (see {!is_temp_path}). I/O failures come back as [Error] instead
    of a raised [Sys_error]. *)

val temp_suffix : string
(** [".si-tmp"] — the suffix of in-flight atomic writes. *)

val temp_path : string -> string
(** The temp file {!to_file_atomic} uses for a given target path. *)

val is_temp_path : string -> bool
(** Whether a path is a (possibly torn, leftover) atomic-write temp file. *)

val escape : string -> string
(** Escape the characters [<], [>], [&] and double quote for use in
    attribute values and text. *)
