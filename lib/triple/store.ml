module type S = sig
  type t

  val create : unit -> t
  val name : string
  val add : t -> Triple.t -> bool
  val remove : t -> Triple.t -> bool
  val mem : t -> Triple.t -> bool
  val size : t -> int
  val clear : t -> unit

  val select :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t ->
    Triple.t list

  val count :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t -> int

  val exists :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t -> bool

  val iter : (Triple.t -> unit) -> t -> unit
  val fold : (Triple.t -> 'a -> 'a) -> t -> 'a -> 'a
  val to_list : t -> Triple.t list
  val add_all : t -> Triple.t list -> unit
end

let matches ?subject ?predicate ?object_ (t : Triple.t) =
  (match subject with None -> true | Some s -> String.equal s t.subject)
  && (match predicate with
     | None -> true
     | Some p -> String.equal p t.predicate)
  && match object_ with None -> true | Some o -> Triple.obj_equal o t.object_

module List_store = struct
  type t = { mutable triples : Triple.t list; mutable count : int }

  let name = "list"
  let create () = { triples = []; count = 0 }
  let mem t triple = List.exists (Triple.equal triple) t.triples

  let add t triple =
    if mem t triple then false
    else begin
      t.triples <- triple :: t.triples;
      t.count <- t.count + 1;
      true
    end

  let remove t triple =
    if mem t triple then begin
      t.triples <- List.filter (fun x -> not (Triple.equal triple x)) t.triples;
      t.count <- t.count - 1;
      true
    end
    else false

  let size t = t.count

  let clear t =
    t.triples <- [];
    t.count <- 0

  let select ?subject ?predicate ?object_ t =
    List.filter (matches ?subject ?predicate ?object_) t.triples

  let count ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> t.count
    | _ ->
        List.fold_left
          (fun n tr -> if matches ?subject ?predicate ?object_ tr then n + 1 else n)
          0 t.triples

  let exists ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> t.count > 0
    | _ -> List.exists (matches ?subject ?predicate ?object_) t.triples

  let iter f t = List.iter f t.triples
  let fold f t init = List.fold_left (fun acc x -> f x acc) init t.triples
  let to_list t = t.triples
  let add_all t triples = List.iter (fun x -> ignore (add t x)) triples
end

module Indexed_store = struct
  (* Primary set plus five secondary indexes: one per field, and two
     compound pair indexes (subject+predicate and predicate+object) so that
     the hot bound-SP / bound-PO lookups hit an exact bucket instead of
     post-filtering a single-key bucket. Index buckets may contain stale
     entries after a removal (and duplicates after a remove + re-add);
     they are cleaned lazily at query time. Each bucket remembers the
     removal stamp at which it was last cleaned, so stores that never (or
     rarely) remove pay nothing on select. *)
  type bucket = { mutable items : Triple.t list; mutable cleaned_at : int }

  type t = {
    all : (Triple.t, unit) Hashtbl.t;
    by_subject : (string, bucket) Hashtbl.t;
    by_predicate : (string, bucket) Hashtbl.t;
    by_object : (Triple.obj, bucket) Hashtbl.t;
    by_sp : (string * string, bucket) Hashtbl.t;
    by_po : (string * Triple.obj, bucket) Hashtbl.t;
    mutable removal_stamp : int;
  }

  let name = "indexed"

  let create () =
    {
      all = Hashtbl.create 256;
      by_subject = Hashtbl.create 64;
      by_predicate = Hashtbl.create 64;
      by_object = Hashtbl.create 64;
      by_sp = Hashtbl.create 64;
      by_po = Hashtbl.create 64;
      removal_stamp = 0;
    }

  let mem t triple = Hashtbl.mem t.all triple

  let bucket t table key =
    match Hashtbl.find_opt table key with
    | Some b -> b
    | None ->
        let b = { items = []; cleaned_at = t.removal_stamp } in
        Hashtbl.add table key b;
        b

  let add t triple =
    if mem t triple then false
    else begin
      Hashtbl.add t.all triple ();
      let push table key =
        let b = bucket t table key in
        b.items <- triple :: b.items
      in
      push t.by_subject triple.Triple.subject;
      push t.by_predicate triple.Triple.predicate;
      push t.by_object triple.Triple.object_;
      push t.by_sp (triple.Triple.subject, triple.Triple.predicate);
      push t.by_po (triple.Triple.predicate, triple.Triple.object_);
      true
    end

  let remove t triple =
    if mem t triple then begin
      Hashtbl.remove t.all triple;
      (* Indexes (including the pair indexes) are cleaned lazily in
         [live_bucket]. *)
      t.removal_stamp <- t.removal_stamp + 1;
      true
    end
    else false

  let size t = Hashtbl.length t.all

  let clear t =
    Hashtbl.reset t.all;
    Hashtbl.reset t.by_subject;
    Hashtbl.reset t.by_predicate;
    Hashtbl.reset t.by_object;
    Hashtbl.reset t.by_sp;
    Hashtbl.reset t.by_po;
    (* The stamp must stay monotone, never rewind: [live_bucket]'s fast
       path is "cleaned_at = removal_stamp means exact", so winding the
       stamp back to 0 would let a bucket cleaned at stamp n before the
       clear alias a fresh post-clear stamp and serve its stale items as
       exact. Purge-on-clear = reset every index table AND advance the
       stamp past all outstanding cleaned_at values. *)
    t.removal_stamp <- t.removal_stamp + 1

  (* Live triples of a bucket. Fast path: no removal since the bucket was
     last cleaned, so its items are exact. Slow path: filter out stale
     entries and deduplicate (a triple removed and later re-added appears
     twice — the stale copy is indistinguishable from the live one), then
     write the clean list back. *)
  let live_bucket t table key =
    match Hashtbl.find_opt table key with
    | None -> []
    | Some b ->
        if b.cleaned_at = t.removal_stamp then b.items
        else begin
          let seen = Hashtbl.create 16 in
          let live =
            List.filter
              (fun triple ->
                Hashtbl.mem t.all triple
                && not (Hashtbl.mem seen triple)
                && begin
                     Hashtbl.add seen triple ();
                     true
                   end)
              b.items
          in
          b.items <- live;
          b.cleaned_at <- t.removal_stamp;
          live
        end

  let select ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> Hashtbl.fold (fun k () acc -> k :: acc) t.all []
    | Some s, Some p, Some o ->
        let tr = Triple.make s p o in
        if Hashtbl.mem t.all tr then [ tr ] else []
    | Some s, Some p, None -> live_bucket t t.by_sp (s, p)
    | Some s, None, Some o ->
        List.filter
          (fun (tr : Triple.t) -> Triple.obj_equal o tr.object_)
          (live_bucket t t.by_subject s)
    | Some s, None, None -> live_bucket t t.by_subject s
    | None, Some p, Some o -> live_bucket t t.by_po (p, o)
    | None, Some p, None -> live_bucket t t.by_predicate p
    | None, None, Some o -> live_bucket t t.by_object o

  let count ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> Hashtbl.length t.all
    | Some s, Some p, Some o ->
        if Hashtbl.mem t.all (Triple.make s p o) then 1 else 0
    | Some s, Some p, None -> List.length (live_bucket t t.by_sp (s, p))
    | Some s, None, Some o ->
        List.fold_left
          (fun n (tr : Triple.t) ->
            if Triple.obj_equal o tr.object_ then n + 1 else n)
          0
          (live_bucket t t.by_subject s)
    | Some s, None, None -> List.length (live_bucket t t.by_subject s)
    | None, Some p, Some o -> List.length (live_bucket t t.by_po (p, o))
    | None, Some p, None -> List.length (live_bucket t t.by_predicate p)
    | None, None, Some o -> List.length (live_bucket t t.by_object o)

  let exists ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> Hashtbl.length t.all > 0
    | Some s, Some p, Some o -> Hashtbl.mem t.all (Triple.make s p o)
    | Some s, Some p, None -> live_bucket t t.by_sp (s, p) <> []
    | Some s, None, Some o ->
        List.exists
          (fun (tr : Triple.t) -> Triple.obj_equal o tr.object_)
          (live_bucket t t.by_subject s)
    | Some s, None, None -> live_bucket t t.by_subject s <> []
    | None, Some p, Some o -> live_bucket t t.by_po (p, o) <> []
    | None, Some p, None -> live_bucket t t.by_predicate p <> []
    | None, None, Some o -> live_bucket t t.by_object o <> []

  let iter f t = Hashtbl.iter (fun k () -> f k) t.all
  let fold f t init = Hashtbl.fold (fun k () acc -> f k acc) t.all init
  let to_list t = Hashtbl.fold (fun k () acc -> k :: acc) t.all []
  let add_all t triples = List.iter (fun x -> ignore (add t x)) triples
end

module Locked (Base : S) = struct
  type t = { base : Base.t; lock : Si_check.Lock.t }

  let name = "locked-" ^ Base.name

  let create () =
    { base = Base.create (); lock = Si_check.Lock.create ~class_:"store.locked" }

  let locked t f = Si_check.Lock.with_lock t.lock (fun () -> f t.base)

  let add t triple = locked t (fun s -> Base.add s triple)
  let remove t triple = locked t (fun s -> Base.remove s triple)
  let mem t triple = locked t (fun s -> Base.mem s triple)
  let size t = locked t Base.size
  let clear t = locked t Base.clear

  let select ?subject ?predicate ?object_ t =
    locked t (fun s -> Base.select ?subject ?predicate ?object_ s)

  let count ?subject ?predicate ?object_ t =
    locked t (fun s -> Base.count ?subject ?predicate ?object_ s)

  let exists ?subject ?predicate ?object_ t =
    locked t (fun s -> Base.exists ?subject ?predicate ?object_ s)

  (* Iteration holds the lock for its whole duration: callbacks must not
     re-enter the store. *)
  let iter f t = locked t (Base.iter f)
  let fold f t init = locked t (fun s -> Base.fold f s init)
  let to_list t = locked t Base.to_list
  let add_all t triples = locked t (fun s -> Base.add_all s triples)
end

module Locked_indexed = Locked (Indexed_store)

let columnar_compact_count = Si_obs.Registry.counter "store.columnar.compact"
let columnar_compact_latency = Si_obs.Registry.histogram "store.columnar.compact"

module Columnar_store = struct
  (* Triples held column-wise as parallel int arrays over {!Atom} ids:
     one column per field, objects packed as [id * 2 + tag] (tag 0 =
     resource, 1 = literal) so a whole object compares as one int. A
     parallel [rows] column keeps the canonical materialized [Triple.t]
     per row, built once at add time from the atom table, so selects
     emit without re-allocating and every string a select returns is the
     canonical interned instance.

     Removal tombstones a row ([subs.(r) <- -1]); when tombstones pass
     half the occupancy the store compacts — rewrites the columns dense
     and rebuilds the indexes — so scans stay cache-dense. Indexes are
     int-keyed: single-field and (subject, predicate) / (predicate,
     object) pair buckets of row indices, each with an eagerly
     maintained live count, so [count] on any indexed combination is
     O(1) — no bucket walk, the big win over {!Indexed_store}'s
     [List.length (live_bucket ...)]. Bucket item lists are cleaned
     lazily, the next time a select walks them.

     Read-only entry points resolve strings with [Atom.find], never
     [Atom.intern]: probing for a string that was never stored (as
     [Trim.new_id] does in a loop) must not grow the process-wide atom
     table. Single-domain, like {!Indexed_store}; wrap in {!Locked} or
     {!Sharded} to share. *)

  type bucket = {
    mutable items : int list;  (* row indices; stale entries linger *)
    mutable live : int;  (* exact, maintained eagerly on add/remove *)
  }

  (* Single-field indexes are int-keyed hashtables over atom ids. NOT
     dense arrays indexed by id, tempting as that reads: atom ids are
     process-global and only grow, so a dense array must span up to the
     largest id the store touches — and a ten-triple store created late
     in a process's life can touch an id in the millions, turning every
     small fresh store (a mapping target, a snapshot being recovered)
     into a multi-megabyte allocation. A hashtable costs ~30 ns more
     per probe and stays proportional to what the store actually
     holds. *)
  module Aidx = struct
    type nonrec t = { table : (int, bucket) Hashtbl.t }

    let create n = { table = Hashtbl.create (max 16 n) }
    let get t i = Hashtbl.find_opt t.table i

    let bucket t i =
      match Hashtbl.find_opt t.table i with
      | Some b -> b
      | None ->
          let b = { items = []; live = 0 } in
          Hashtbl.add t.table i b;
          b

    let reset t = Hashtbl.reset t.table
  end

  type t = {
    mutable subs : int array;  (* atom id; -1 tombstones the row *)
    mutable preds : int array;
    mutable objs : int array;  (* atom id * 2 + tag *)
    mutable rows : Triple.t array;  (* canonical materialization *)
    mutable len : int;  (* rows in use, tombstones included *)
    mutable live : int;
    (* Primary set: flat open-addressing table over row indexes. A slot
       is -1 (empty), -2 (deleted), or a live row index; the key of a
       slot is read straight out of the columns, so a membership probe
       is one hash mix plus int compares against cache-dense arrays —
       no key tuple is ever allocated or structurally hashed. Load is
       kept at or below 1/2, rehashed to 1/4 on growth. *)
    mutable slots : int array;
    mutable slot_dead : int;  (* deleted slots awaiting a rehash *)
    by_s : Aidx.t;  (* indexed by subject atom id *)
    by_p : Aidx.t;  (* indexed by predicate atom id *)
    by_o : Aidx.t;  (* indexed by packed object *)
    by_sp : (int, bucket) Hashtbl.t;  (* keyed by [key_sp] *)
    by_po : (int, bucket) Hashtbl.t;  (* keyed by [key_po] *)
    (* The pair indexes are built lazily, on the first pair-bound query
       ([ensure_pairs]): bulk loads and write-heavy phases never pay
       for them, and once built they are maintained eagerly like the
       single-field indexes. Compaction and [clear] drop them back to
       unbuilt. *)
    mutable pairs_built : bool;
  }

  (* Pair-index keys packed into one int: no tuple allocation per probe
     and the int hash is a single mix instead of a structural traversal.
     Atom ids are bounded far below 2^30 by memory (every atom costs
     tens of bytes), so [sid lsl 31] and [pid lsl 32] cannot collide
     into each other's bits within OCaml's 63-bit ints. *)
  let key_sp sid pid = (sid lsl 31) lor pid
  let key_po pid packed = (pid lsl 32) lor packed

  let name = "columnar"
  let dummy = Triple.make "" "" (Triple.Resource "")

  (* Smallest power of two holding [n] keys at load <= 1/4. *)
  let slot_capacity n =
    let rec up c = if c >= 4 * n then c else up (2 * c) in
    up 64

  let create_sized n =
    let cap = max 16 n in
    {
      subs = Array.make cap (-1);
      preds = Array.make cap (-1);
      objs = Array.make cap (-1);
      rows = Array.make cap dummy;
      len = 0;
      live = 0;
      slots = Array.make (slot_capacity n) (-1);
      slot_dead = 0;
      by_s = Aidx.create n;
      by_p = Aidx.create n;
      by_o = Aidx.create n;
      by_sp = Hashtbl.create (max 64 n);
      by_po = Hashtbl.create (max 64 n);
      pairs_built = false;
    }

  let create () = create_sized 0

  (* One multiply-xor round per field; the final mask keeps the result
     a valid non-negative index. *)
  let hash3 s p o =
    let mix h k =
      let h = (h lxor k) * 0x9E3779B97F4A7C1 in
      h lxor (h lsr 29)
    in
    mix (mix (mix 0x2545F4914F6CDD1 s) p) o land max_int

  (* Row index holding (s, p, o), or -1. *)
  let probe_find t s p o =
    let mask = Array.length t.slots - 1 in
    let i = ref (hash3 s p o land mask) in
    let found = ref (-3) in
    while !found = -3 do
      let row = t.slots.(!i) in
      if row = -1 then found := -1
      else if
        row >= 0 && t.subs.(row) = s && t.preds.(row) = p && t.objs.(row) = o
      then found := row
      else i := (!i + 1) land mask
    done;
    !found

  (* Insert [row] under (s, p, o), reusing the first deleted slot on its
     probe path; the caller has established the key is absent. *)
  let probe_insert t s p o row =
    let mask = Array.length t.slots - 1 in
    let i = ref (hash3 s p o land mask) in
    let target = ref (-1) in
    while !target = -1 do
      let r = t.slots.(!i) in
      if r = -1 then target := !i
      else if r = -2 then begin
        target := !i;
        t.slot_dead <- t.slot_dead - 1
      end
      else i := (!i + 1) land mask
    done;
    t.slots.(!target) <- row

  let probe_remove t s p o =
    let mask = Array.length t.slots - 1 in
    let i = ref (hash3 s p o land mask) in
    let stop = ref false in
    while not !stop do
      let row = t.slots.(!i) in
      if row = -1 then stop := true (* absent; caller resolved it first *)
      else if
        row >= 0 && t.subs.(row) = s && t.preds.(row) = p && t.objs.(row) = o
      then begin
        t.slots.(!i) <- -2;
        t.slot_dead <- t.slot_dead + 1;
        stop := true
      end
      else i := (!i + 1) land mask
    done

  (* Rebuild the slot table from the live columns (all keys distinct, so
     plain empty-slot probes suffice). Also how deleted slots are
     purged. *)
  let rehash_slots t =
    let cap = slot_capacity t.live in
    let slots = Array.make cap (-1) in
    let mask = cap - 1 in
    for row = 0 to t.len - 1 do
      let s = t.subs.(row) in
      if s >= 0 then begin
        let i = ref (hash3 s t.preds.(row) t.objs.(row) land mask) in
        while slots.(!i) <> -1 do
          i := (!i + 1) land mask
        done;
        slots.(!i) <- row
      end
    done;
    t.slots <- slots;
    t.slot_dead <- 0

  let ensure_slot_room t =
    if 2 * (t.live + t.slot_dead + 1) > Array.length t.slots then
      rehash_slots t

  let pack_tag id = function Triple.Resource _ -> 2 * id | Triple.Literal _ -> (2 * id) + 1

  (* Write path: interns. *)
  let pack_obj o =
    pack_tag (Atom.intern (match o with Triple.Resource v | Triple.Literal v -> v)) o

  (* Read path: a never-interned string cannot be stored, so a miss
     means "matches nothing". *)
  let find_packed o =
    match Atom.find (match o with Triple.Resource v | Triple.Literal v -> v) with
    | Some id -> Some (pack_tag id o)
    | None -> None

  let unpack_obj packed =
    let v = Atom.to_string (packed lsr 1) in
    if packed land 1 = 0 then Triple.Resource v else Triple.Literal v

  let canonical sid pid packed =
    Triple.make (Atom.to_string sid) (Atom.to_string pid) (unpack_obj packed)

  let bucket table key =
    match Hashtbl.find_opt table key with
    | Some b -> b
    | None ->
        let b = { items = []; live = 0 } in
        Hashtbl.add table key b;
        b

  let push table key row =
    let b = bucket table key in
    b.items <- row :: b.items;
    b.live <- b.live + 1

  let apush idx key row =
    let b = Aidx.bucket idx key in
    b.items <- row :: b.items;
    b.live <- b.live + 1

  let forget table key =
    match Hashtbl.find_opt table key with
    | Some (b : bucket) -> b.live <- b.live - 1
    | None -> assert false (* every stored row was pushed at add time *)

  let aforget idx key =
    match Aidx.get idx key with
    | Some (b : bucket) -> b.live <- b.live - 1
    | None -> assert false (* every stored row was pushed at add time *)

  (* Callers guarantee the key is absent ([add] checks membership,
     [compact_run] starts from a reset table) and the slot table has
     room ([add] grows it first, bulk loads pre-size it). *)
  let reindex t row sid pid packed =
    probe_insert t sid pid packed row;
    apush t.by_s sid row;
    apush t.by_p pid row;
    apush t.by_o packed row;
    if t.pairs_built then begin
      push t.by_sp (key_sp sid pid) row;
      push t.by_po (key_po pid packed) row
    end

  let grow_columns t =
    let cap = max 16 (2 * Array.length t.subs) in
    let extend dflt col =
      let fresh = Array.make cap dflt in
      Array.blit col 0 fresh 0 t.len;
      fresh
    in
    t.subs <- extend (-1) t.subs;
    t.preds <- extend (-1) t.preds;
    t.objs <- extend (-1) t.objs;
    t.rows <- extend dummy t.rows

  (* Rewrite the columns dense (dropping tombstones) and rebuild every
     index; row order is preserved, row indices are not. *)
  let compact_run t =
    let cap = max 16 t.live in
    let subs = Array.make cap (-1) in
    let preds = Array.make cap (-1) in
    let objs = Array.make cap (-1) in
    let rows = Array.make cap dummy in
    t.slots <- Array.make (slot_capacity t.live) (-1);
    t.slot_dead <- 0;
    Aidx.reset t.by_s;
    Aidx.reset t.by_p;
    Aidx.reset t.by_o;
    Hashtbl.reset t.by_sp;
    Hashtbl.reset t.by_po;
    t.pairs_built <- false;
    let next = ref 0 in
    for i = 0 to t.len - 1 do
      if t.subs.(i) >= 0 then begin
        let r = !next in
        subs.(r) <- t.subs.(i);
        preds.(r) <- t.preds.(i);
        objs.(r) <- t.objs.(i);
        rows.(r) <- t.rows.(i);
        incr next
      end
    done;
    t.subs <- subs;
    t.preds <- preds;
    t.objs <- objs;
    t.rows <- rows;
    t.len <- !next;
    for r = 0 to t.len - 1 do
      reindex t r t.subs.(r) t.preds.(r) t.objs.(r)
    done

  let compact t =
    Si_obs.Counter.incr columnar_compact_count;
    if Si_obs.Span.on () then
      Si_obs.Span.timed columnar_compact_latency ~layer:"store"
        ~op:"columnar.compact" (fun () -> compact_run t)
    else compact_run t

  let maybe_compact t =
    let dead = t.len - t.live in
    if dead > 64 && 2 * dead > t.len then compact t

  let add t (triple : Triple.t) =
    let sid = Atom.intern triple.subject in
    let pid = Atom.intern triple.predicate in
    let packed = pack_obj triple.object_ in
    if probe_find t sid pid packed >= 0 then false
    else begin
      if t.len = Array.length t.subs then grow_columns t;
      ensure_slot_room t;
      let row = t.len in
      t.subs.(row) <- sid;
      t.preds.(row) <- pid;
      t.objs.(row) <- packed;
      t.rows.(row) <- canonical sid pid packed;
      t.len <- row + 1;
      t.live <- t.live + 1;
      reindex t row sid pid packed;
      true
    end

  let resolve t (triple : Triple.t) =
    match (Atom.find triple.subject, Atom.find triple.predicate) with
    | Some sid, Some pid -> (
        match find_packed triple.object_ with
        | Some packed ->
            let row = probe_find t sid pid packed in
            if row >= 0 then Some row else None
        | None -> None)
    | _ -> None

  let mem t triple = resolve t triple <> None

  let remove t (triple : Triple.t) =
    match resolve t triple with
    | None -> false
    | Some row ->
        let sid = t.subs.(row) and pid = t.preds.(row) and packed = t.objs.(row) in
        probe_remove t sid pid packed;
        t.subs.(row) <- -1;
        t.live <- t.live - 1;
        aforget t.by_s sid;
        aforget t.by_p pid;
        aforget t.by_o packed;
        if t.pairs_built then begin
          forget t.by_sp (key_sp sid pid);
          forget t.by_po (key_po pid packed)
        end;
        maybe_compact t;
        true

  let size t = t.live

  let clear t =
    t.subs <- Array.make 16 (-1);
    t.preds <- Array.make 16 (-1);
    t.objs <- Array.make 16 (-1);
    t.rows <- Array.make 16 dummy;
    t.len <- 0;
    t.live <- 0;
    t.slots <- Array.make (slot_capacity 0) (-1);
    t.slot_dead <- 0;
    Aidx.reset t.by_s;
    Aidx.reset t.by_p;
    Aidx.reset t.by_o;
    Hashtbl.reset t.by_sp;
    Hashtbl.reset t.by_po;
    t.pairs_built <- false

  (* Live row indices of a bucket, purging stale entries as we pass. *)
  let live_items t (b : bucket) =
    if b.live = 0 then begin
      if b.items <> [] then b.items <- [];
      []
    end
    else begin
      let stale = ref false in
      let keep =
        List.filter
          (fun r ->
            if t.subs.(r) >= 0 then true
            else begin
              stale := true;
              false
            end)
          b.items
      in
      if !stale then b.items <- keep;
      keep
    end

  let bucket_triples t table key =
    match Hashtbl.find_opt table key with
    | None -> []
    | Some b -> List.map (fun r -> t.rows.(r)) (live_items t b)

  let bucket_live table key =
    match Hashtbl.find_opt table key with
    | None -> 0
    | Some (b : bucket) -> b.live

  let abucket_triples t idx key =
    match Aidx.get idx key with
    | None -> []
    | Some b -> List.map (fun r -> t.rows.(r)) (live_items t b)

  let abucket_live idx key =
    match Aidx.get idx key with None -> 0 | Some (b : bucket) -> b.live

  (* First pair-bound query after a bulk load, compaction, or [clear]:
     build both pair indexes in one pass over the live rows. *)
  let ensure_pairs t =
    if not t.pairs_built then begin
      t.pairs_built <- true;
      for row = 0 to t.len - 1 do
        let sid = t.subs.(row) in
        if sid >= 0 then begin
          push t.by_sp (key_sp sid t.preds.(row)) row;
          push t.by_po (key_po t.preds.(row) t.objs.(row)) row
        end
      done
    end

  let all_rows t =
    let acc = ref [] in
    for r = t.len - 1 downto 0 do
      if t.subs.(r) >= 0 then acc := t.rows.(r) :: !acc
    done;
    !acc

  (* The subject+object (predicate free) combination has no pair index;
     it walks the subject bucket comparing packed object ints. *)
  let s_o_rows t sid packed =
    match Aidx.get t.by_s sid with
    | None -> []
    | Some b ->
        List.filter_map
          (fun r -> if t.objs.(r) = packed then Some t.rows.(r) else None)
          (live_items t b)

  (* Resolve the bound fields once, up front; any unresolvable bound
     string means the whole selection matches nothing. *)
  let select ?subject ?predicate ?object_ t =
    match
      ( Option.map Atom.find subject,
        Option.map Atom.find predicate,
        Option.map find_packed object_ )
    with
    | (Some None, _, _ | _, Some None, _ | _, _, Some None) -> []
    | None, None, None -> all_rows t
    | Some (Some s), Some (Some p), Some (Some o) ->
        let row = probe_find t s p o in
        if row >= 0 then [ t.rows.(row) ] else []
    | Some (Some s), Some (Some p), None ->
        ensure_pairs t;
        bucket_triples t t.by_sp (key_sp s p)
    | Some (Some s), None, Some (Some o) -> s_o_rows t s o
    | Some (Some s), None, None -> abucket_triples t t.by_s s
    | None, Some (Some p), Some (Some o) ->
        ensure_pairs t;
        bucket_triples t t.by_po (key_po p o)
    | None, Some (Some p), None -> abucket_triples t t.by_p p
    | None, None, Some (Some o) -> abucket_triples t t.by_o o

  let count ?subject ?predicate ?object_ t =
    match
      ( Option.map Atom.find subject,
        Option.map Atom.find predicate,
        Option.map find_packed object_ )
    with
    | (Some None, _, _ | _, Some None, _ | _, _, Some None) -> 0
    | None, None, None -> t.live
    | Some (Some s), Some (Some p), Some (Some o) ->
        if probe_find t s p o >= 0 then 1 else 0
    | Some (Some s), Some (Some p), None ->
        ensure_pairs t;
        bucket_live t.by_sp (key_sp s p)
    | Some (Some s), None, Some (Some o) -> (
        match Aidx.get t.by_s s with
        | None -> 0
        | Some b ->
            List.fold_left
              (fun n r -> if t.objs.(r) = o then n + 1 else n)
              0 (live_items t b))
    | Some (Some s), None, None -> abucket_live t.by_s s
    | None, Some (Some p), Some (Some o) ->
        ensure_pairs t;
        bucket_live t.by_po (key_po p o)
    | None, Some (Some p), None -> abucket_live t.by_p p
    | None, None, Some (Some o) -> abucket_live t.by_o o

  let exists ?subject ?predicate ?object_ t =
    match
      ( Option.map Atom.find subject,
        Option.map Atom.find predicate,
        Option.map find_packed object_ )
    with
    | (Some None, _, _ | _, Some None, _ | _, _, Some None) -> false
    | None, None, None -> t.live > 0
    | Some (Some s), Some (Some p), Some (Some o) -> probe_find t s p o >= 0
    | Some (Some s), Some (Some p), None ->
        ensure_pairs t;
        bucket_live t.by_sp (key_sp s p) > 0
    | Some (Some s), None, Some (Some o) -> (
        match Aidx.get t.by_s s with
        | None -> false
        | Some b -> List.exists (fun r -> t.objs.(r) = o) (live_items t b))
    | Some (Some s), None, None -> abucket_live t.by_s s > 0
    | None, Some (Some p), Some (Some o) ->
        ensure_pairs t;
        bucket_live t.by_po (key_po p o) > 0
    | None, Some (Some p), None -> abucket_live t.by_p p > 0
    | None, None, Some (Some o) -> abucket_live t.by_o o > 0

  let iter f t =
    for r = 0 to t.len - 1 do
      if t.subs.(r) >= 0 then f t.rows.(r)
    done

  let fold f t init =
    let acc = ref init in
    for r = 0 to t.len - 1 do
      if t.subs.(r) >= 0 then acc := f t.rows.(r) !acc
    done;
    !acc

  let to_list = all_rows
  let add_all t triples = List.iter (fun x -> ignore (add t x)) triples

  (* Bulk load for snapshot recovery. The store takes ownership of the
     three column arrays — the decoder fills them and hands them over,
     so nothing is copied and no per-row tuple is ever allocated — and
     every table is pre-sized for the full row count (no growth
     doublings, no rehashes). Input rows come from a decoded snapshot
     of a set, so duplicates are not expected — but the payload is
     untrusted, so the primary-set probe stays and a duplicate row is
     compacted away in place (the write cursor trails the read cursor,
     and every position behind the read cursor has been consumed). *)
  let of_packed_columns subs preds objs =
    let n = Array.length subs in
    if Array.length preds <> n || Array.length objs <> n then
      invalid_arg "Columnar_store.of_packed_columns: column lengths differ";
    let t =
      {
        subs;
        preds;
        objs;
        rows = Array.make (max 16 n) dummy;
        len = 0;
        live = 0;
        slots = Array.make (slot_capacity n) (-1);
        slot_dead = 0;
        by_s = Aidx.create n;
        by_p = Aidx.create n;
        by_o = Aidx.create n;
        by_sp = Hashtbl.create (max 64 n);
        by_po = Hashtbl.create (max 64 n);
        pairs_built = false;
      }
    in
    for r = 0 to n - 1 do
      let sid = t.subs.(r) and pid = t.preds.(r) and packed = t.objs.(r) in
      if probe_find t sid pid packed < 0 then begin
        let row = t.len in
        t.subs.(row) <- sid;
        t.preds.(row) <- pid;
        t.objs.(row) <- packed;
        t.rows.(row) <- canonical sid pid packed;
        t.len <- row + 1;
        t.live <- row + 1;
        reindex t row sid pid packed
      end
    done;
    t
end

module Sharded (B : S) = struct
  (* [shard_count] base stores, each behind its own mutex, with triples
     placed by a hash of their subject. Writes and subject-bound reads touch
     exactly one shard, so concurrent domains working on different subjects
     proceed in parallel instead of serializing on one global lock.
     Operations that cannot be routed by subject (predicate- or object-bound
     selects, [size], [to_list], ...) visit the shards one at a time, locking
     each in turn; they see a consistent snapshot of every individual shard
     but not of the store as a whole — same caveat as any store without a
     global lock. Locks are never nested, so the store cannot deadlock. *)
  let shard_count = 8

  type t = { shards : B.t array; locks : Si_check.Lock.t array }

  let name = "sharded-" ^ B.name

  let create () =
    {
      shards = Array.init shard_count (fun _ -> B.create ());
      locks =
        Array.init shard_count (fun _ ->
            Si_check.Lock.create ~class_:"store.shard");
    }

  let shard_of subject = Hashtbl.hash subject land max_int mod shard_count

  let with_shard t i f =
    Si_check.Lock.with_lock t.locks.(i) (fun () -> f t.shards.(i))

  let add t triple =
    with_shard t (shard_of triple.Triple.subject) (fun s -> B.add s triple)

  let remove t triple =
    with_shard t (shard_of triple.Triple.subject) (fun s -> B.remove s triple)

  let mem t triple =
    with_shard t (shard_of triple.Triple.subject) (fun s -> B.mem s triple)

  let fold_shards t f init =
    let acc = ref init in
    for i = 0 to shard_count - 1 do
      acc := with_shard t i (fun s -> f !acc s)
    done;
    !acc

  let size t = fold_shards t (fun n s -> n + B.size s) 0
  let clear t = fold_shards t (fun () s -> B.clear s) ()

  let select ?subject ?predicate ?object_ t =
    match subject with
    | Some s ->
        with_shard t (shard_of s) (fun sh ->
            B.select ~subject:s ?predicate ?object_ sh)
    | None ->
        List.concat
          (List.init shard_count (fun i ->
               with_shard t i (fun sh -> B.select ?predicate ?object_ sh)))

  let count ?subject ?predicate ?object_ t =
    match subject with
    | Some s ->
        with_shard t (shard_of s) (fun sh ->
            B.count ~subject:s ?predicate ?object_ sh)
    | None ->
        fold_shards t (fun n sh -> n + B.count ?predicate ?object_ sh) 0

  let exists ?subject ?predicate ?object_ t =
    match subject with
    | Some s ->
        with_shard t (shard_of s) (fun sh ->
            B.exists ~subject:s ?predicate ?object_ sh)
    | None ->
        let rec scan i =
          i < shard_count
          && (with_shard t i (fun sh -> B.exists ?predicate ?object_ sh)
             || scan (i + 1))
        in
        scan 0

  (* Per-shard locking: callbacks must not re-enter the store. *)
  let iter f t = fold_shards t (fun () s -> B.iter f s) ()
  let fold f t init = fold_shards t (fun acc s -> B.fold f s acc) init

  let to_list t =
    List.concat
      (List.init shard_count (fun i -> with_shard t i (fun s -> B.to_list s)))

  let add_all t triples = List.iter (fun x -> ignore (add t x)) triples
end

module Sharded_store = struct
  include Sharded (Indexed_store)

  (* Predates the functor; keeps its original registered name. *)
  let name = "sharded"
end

module Sharded_columnar = Sharded (Columnar_store)

let implementations =
  [
    (List_store.name, (module List_store : S));
    (Indexed_store.name, (module Indexed_store : S));
    (Locked_indexed.name, (module Locked_indexed : S));
    (Columnar_store.name, (module Columnar_store : S));
    (Sharded_store.name, (module Sharded_store : S));
    (Sharded_columnar.name, (module Sharded_columnar : S));
  ]
