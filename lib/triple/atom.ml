(* Process-wide string interning. One snapshot record — the id->string
   array, its live length, and an open-addressed id probe table — is
   published through a single [Atomic.t], so readers never take a lock:
   they load the snapshot once and work on immutable-for-them data.
   Appends serialize on a mutex and publish a fresh snapshot record.

   Readers may race an in-place append (the writer fills [strings.(len)]
   and a probe slot before publishing [len + 1]); both races are benign:
   slots at index >= the reader's [len] are ignored by the range check,
   so a concurrent intern is simply not yet visible — the same answer a
   fully serialized execution interleaving the read first would give. *)

let intern_count = Si_obs.Registry.counter "atom.intern"
let intern_latency = Si_obs.Registry.histogram "atom.intern"

type snap = {
  strings : string array;  (* ids 0 .. len-1 are valid *)
  len : int;
  probe : int array;  (* open addressing: 0 = empty, else id + 1 *)
  mask : int;  (* probe capacity - 1, capacity a power of two *)
}

let empty =
  { strings = [||]; len = 0; probe = Array.make 16 0; mask = 15 }

let state = Atomic.make empty
let lock = Si_check.Lock.create ~class_:"atom.table"

let size () = (Atomic.get state).len

let to_string id =
  let s = Atomic.get state in
  if id < 0 || id >= s.len then
    invalid_arg (Printf.sprintf "Atom.to_string: unknown atom id %d" id)
  else s.strings.(id)

(* Probe [snap] for [str]; [None] when absent. Entries are never
   deleted, so the scan can stop at the first empty slot. *)
let lookup snap str =
  let h = Hashtbl.hash str in
  let rec scan i guard =
    if guard < 0 then None
    else
      let v = snap.probe.(i land snap.mask) in
      if v = 0 then None
      else
        let id = v - 1 in
        if id < snap.len && String.equal snap.strings.(id) str then Some id
        else scan (i + 1) (guard - 1)
  in
  scan h (snap.mask + 1)

let find str = lookup (Atomic.get state) str

(* Canonical instance when interned: selects that compare against store
   strings then hit [String.equal]'s physical-equality fast path. *)
let canon str =
  match find str with None -> str | Some id -> (Atomic.get state).strings.(id)

let insert_slot probe mask id str =
  let rec scan i =
    let j = i land mask in
    if probe.(j) = 0 then probe.(j) <- id + 1 else scan (i + 1)
  in
  scan (Hashtbl.hash str)

(* Called under [lock]. Grow by doubling; the old snapshot's arrays are
   never touched, so readers holding it stay consistent. *)
let grown s =
  let cap = max 16 (2 * Array.length s.strings) in
  let strings = Array.make cap "" in
  Array.blit s.strings 0 strings 0 s.len;
  let pcap = 2 * (s.mask + 1) in
  let probe = Array.make pcap 0 in
  let mask = pcap - 1 in
  for id = 0 to s.len - 1 do
    insert_slot probe mask id strings.(id)
  done;
  { s with strings; probe; mask }

let append str =
  Si_check.Lock.with_lock lock (fun () ->
      let s = Atomic.get state in
      (* Re-check: another domain may have interned it first. *)
      match lookup s str with
      | Some id -> id
      | None ->
          let s =
            if s.len >= Array.length s.strings || 2 * s.len >= s.mask + 1
            then grown s
            else s
          in
          let id = s.len in
          s.strings.(id) <- str;
          insert_slot s.probe s.mask id str;
          Si_obs.Counter.incr intern_count;
          Atomic.set state { s with len = id + 1 };
          id)

let intern str =
  match find str with
  | Some id -> id
  | None ->
      if Si_obs.Span.on () then
        Si_obs.Span.timed intern_latency ~layer:"atom" ~op:"intern" (fun () ->
            append str)
      else append str
