(** Journaled TRIM: a {!Trim.t} whose every mutation is appended to a
    {!Si_wal.Log} before being acknowledged.

    Where {!Trim.save} rewrites the whole triple set per call, a durable
    manager pays O(1) per mutation: each effective add/remove/clear
    becomes one WAL record (group-committed per the log's sync policy),
    and {!checkpoint} cuts a snapshot so the log never grows without
    bound. {!open_} recovers the store from [snapshot + tail], so a
    process crash loses at most the un-flushed batch — nothing once
    {!sync} has returned. *)

type t

type opened = {
  durable : t;
  replayed : int;  (** Tail records applied on top of the snapshot. *)
  truncated_bytes : int;  (** Torn-tail bytes dropped during recovery. *)
  reset_log : bool;  (** A stale log from an interrupted compaction was discarded. *)
}

val open_ :
  ?store:(module Store.S) ->
  ?policy:Si_wal.Log.sync_policy ->
  string ->
  (opened, string) result
(** [open_ path] opens (creating if needed) the log at [path] and
    rebuilds the manager it describes. Corruption before the tail —
    including a record that fails to decode — is a hard error, never a
    partial replay. *)

val trim : t -> Trim.t
(** The live manager. Mutate it through the normal {!Trim} API; every
    effective mutation is journaled via {!Trim.on_mutate} (installing
    another observer on this trim would disconnect the journal). *)

val log : t -> Si_wal.Log.t

val sync : t -> (unit, string) result
(** Flush batched records; on success everything acknowledged so far
    survives a process crash. Also surfaces any append error that
    occurred since the last call — appends happen inside the observer
    hook and cannot return one directly. *)

val checkpoint : t -> (unit, string) result
(** Compact: write the current triple set as a snapshot and truncate
    the log. Idempotent with respect to the recovered state. Snapshots
    are cut in the {!Trim.to_binary} form (counter and span
    [wal.snapshot.binary]); recovery sniffs the payload, so logs whose
    last checkpoint is an old XML snapshot replay unchanged. *)

val close : t -> (unit, string) result

(** {1 Record codec}

    One WAL record per mutation, encoded with {!Si_wal.Record.encode_fields}:
    tag ["+"] / ["-"] followed by subject, predicate, object kind
    (["r"]|["l"]) and value; ["x"] for clear. Shared with the slimpad
    journaled store, which interleaves these with mark and journal
    records. *)

val encode_op : Trim.op -> string
val decode_op : string -> (Trim.op, string) result

val apply_op : Trim.t -> Trim.op -> unit
(** Replay one decoded operation (no-ops are ignored). *)
