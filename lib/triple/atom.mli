(** Process-wide string interning: string ↔ int atom ids.

    The columnar store keys its columns and indexes on atom ids instead
    of strings, turning hot-path comparisons into int equality. The
    table only ever grows — ids are dense, starting at 0, and stay valid
    for the life of the process.

    Reads ([find], [to_string], [canon]) are lock-free: they load one
    immutable snapshot (published through an [Atomic.t]) and probe it,
    O(1) in both directions. Appends serialize on a private mutex.
    Racing a concurrent intern, a reader either sees the new atom or a
    miss — the same answers a serialized interleaving would give.

    Query and store {e read} paths must use {!find} (which never
    inserts): probing with a string that was never stored — as
    [Trim.new_id] does in a loop — must not grow the table. *)

val intern : string -> int
(** The atom id for this string, interning it first if needed. Counter
    [atom.intern] counts first-time internings. *)

val find : string -> int option
(** The atom id if the string has been interned, without interning it.
    The read-path lookup. *)

val to_string : int -> string
(** The string for an id, O(1) from the snapshot array. The result is
    the canonical instance: two [to_string] calls for the same id are
    physically equal.
    @raise Invalid_argument on an id never returned by {!intern}. *)

val canon : string -> string
(** The canonical interned instance when there is one, the argument
    itself otherwise. Comparing a canonicalized needle against store
    output hits [String.equal]'s physical-equality fast path. *)

val size : unit -> int
(** Number of atoms interned so far (= the next id to be assigned). *)
