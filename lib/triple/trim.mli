(** TRIM — the Triple Manager (paper §4.4).

    "To manage triples, we use the TRIM (Triple Manager) sub-component,
    which handles basic operations over the triple representation. Through
    TRIM, the DMI can create, remove, persist (through XML files), query,
    and create simple views over the underlying triples."

    A [Trim.t] wraps one of the {!Store} implementations (chosen at
    creation) and adds id generation, reachability views and XML
    persistence. *)

type t

val create : ?store:(module Store.S) -> unit -> t
(** Defaults to {!Store.Columnar_store} — the atom-interned compact
    representation. Pass {!Store.Indexed_store} for the previous
    string-keyed behaviour; semantics are identical (the conformance
    suite holds every implementation to the same answers). *)

val create_lightweight : unit -> t
(** Uses {!Store.List_store} — the paper's small-footprint prototype
    choice. *)

val store_name : t -> string

(** {1 Basic operations} *)

val add : t -> Triple.t -> bool
val remove : t -> Triple.t -> bool
val mem : t -> Triple.t -> bool
val size : t -> int
val clear : t -> unit
val to_list : t -> Triple.t list
val add_all : t -> Triple.t list -> unit

val select :
  ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t ->
  Triple.t list
(** Selection query: fix one or more fields. *)

val count_select :
  ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t -> int
(** [count_select ... t] is [List.length (select ... t)] without
    materializing the triples — indexed stores answer from bucket sizes.
    Used by {!Si_query.Query.optimize} for real cardinality estimates. *)

val exists :
  ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t -> bool
(** [exists ... t] is [select ... t <> []] without allocating the result
    list; stores short-circuit on the first match. [exists ~subject] is
    the fast emptiness probe {!new_id} uses. *)

val object_of : t -> subject:string -> predicate:string -> Triple.obj option
(** Convenience: the object of the (unique) matching triple; [None] when
    absent, the first one when several match. *)

val literal_of : t -> subject:string -> predicate:string -> string option
val resource_of : t -> subject:string -> predicate:string -> string option
val objects_of : t -> subject:string -> predicate:string -> Triple.obj list

val set : t -> subject:string -> predicate:string -> Triple.obj -> unit
(** Functional-property update: removes existing triples with this subject
    and predicate, then adds the new one. *)

val remove_subject : t -> string -> int
(** Remove every triple whose subject is the resource; returns how many. *)

(** {1 Transactions}

    Multi-triple updates (a DMI operation touches several triples) can be
    made all-or-nothing: inside [transaction], every [add]/[remove] on
    this manager is recorded, and if the body returns [Error] or raises,
    the store is rolled back to its state at entry. *)

val transaction :
  t -> (unit -> ('a, 'e) result) -> (('a, 'e) result, exn) result
(** [Ok (Ok v)] — committed; [Ok (Error e)] — body failed, rolled back;
    [Error exn] — body raised, rolled back (the exception is returned,
    not re-raised). Transactions do not nest:
    @raise Invalid_argument when called inside an active transaction. *)

val in_transaction : t -> bool

(** {1 Mutation observation}

    The hook behind journaled persistence ({!Durable} and the slimpad
    WAL mode): every effective store mutation — through any public entry
    point, including transaction rollbacks (which emit the inverse
    operations) and [add_all] — is reported exactly once, after it has
    been applied. No-op calls (adding a present triple, removing an
    absent one) are not reported. *)

type op =
  | Op_add of Triple.t
  | Op_remove of Triple.t
  | Op_clear  (** The store was emptied wholesale. *)

val on_mutate : t -> (op -> unit) -> unit
(** Install the observer (at most one; a second call replaces the
    first). The observer must not mutate this manager. *)

(** {1 Id generation} *)

val new_id : ?prefix:string -> t -> string
(** Fresh resource id, unique within this manager (and not currently a
    subject in the store). Default prefix ["r"]. *)

(** {1 Views}

    "A view is specified by selecting a resource (such as a Bundle id),
    where all triples that can be reached from this resource are
    returned." *)

val view : t -> string -> Triple.t list
(** All triples reachable from the resource: its own triples, plus
    (transitively) the triples of every resource appearing as an object.
    Cycle-safe. Order: breadth-first from the root. *)

val reachable_resources : t -> string -> string list
(** The resources visited by {!view}, root first, breadth-first. *)

(** {1 Introspection} *)

val subjects : t -> string list
(** Distinct subjects, sorted. *)

val predicates : t -> string list
(** Distinct predicates, sorted. *)

(** {1 Persistence (XML files, as in the paper)} *)

val to_xml : t -> Si_xmlk.Node.t
val of_xml : ?store:(module Store.S) -> Si_xmlk.Node.t -> (t, string) result

val triples_of_xml : Si_xmlk.Node.t -> (Triple.t list, string) result
(** The raw triple list of a [<triples>] element, in document order and
    {e preserving duplicates} — unlike {!of_xml}, which loads into a
    store and therefore dedups. Lint uses this to spot duplicate triples
    in persisted files. *)

val save : t -> string -> (unit, string) result
(** Crash-safe: written via a temp file renamed into place
    ({!Si_xmlk.Print.to_file_atomic}); a crash mid-write never leaves a
    torn store file. I/O trouble is an [Error], not an exception. *)

val load : ?store:(module Store.S) -> string -> (t, string) result

(** {1 Binary persistence (the compact hot-path format)}

    XML stays the export/interop format; WAL snapshots default to this
    binary form — a {!Si_wal.Binary} container holding an [atoms]
    section (a snapshot-local string table: ids are positions within
    the section, independent of the process-wide {!Atom} table) and a
    [triples] section of three u32 columns per row, objects packed as
    [local_id * 2 + tag] (tag 1 = literal). Triples are sorted as in
    {!to_xml}, so equal stores produce equal bytes. *)

val to_binary : t -> string
(** The full container: header plus [atoms] and [triples] sections. *)

val of_binary : ?store:(module Store.S) -> string -> (t, string) result
(** Inverse of {!to_binary}. Any malformation — bad container, a
    section missing, an atom id out of range, a short row — is an
    [Error], never a partial load. *)

val triples_of_binary : string -> (Triple.t list, string) result
(** The raw row list of a binary snapshot, in stored order, without
    loading a store. Offline tooling (lint) uses this. *)

val binary_sections : t -> (string * string) list
(** The [(name, payload)] sections {!to_binary} frames — exposed so
    composite snapshots (the slimpad WAL) can append their own sections
    to the same container. *)

val binary_sections_of_triples : Triple.t list -> (string * string) list
(** Like {!binary_sections} for a bare triple list. *)

val triples_of_binary_sections :
  (string * string) list -> (Triple.t list, string) result
(** Decode the [atoms] + [triples] sections out of an already-decoded
    container. *)

val equal_contents : t -> t -> bool
(** Same triple set, regardless of store implementation. *)
