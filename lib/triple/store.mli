(** Triple-store interface and its implementations.

    TRIM's storage layer. The paper's prototype favoured a lightweight
    structure ({!List_store}); §6 reports that "some data sets are quite
    large and we are developing alternative implementation mechanisms" —
    {!Indexed_store} is that alternative: hash indexes on each field plus
    compound subject+predicate and predicate+object pair indexes, so the
    hot bound-SP / bound-PO lookups resolve to an exact bucket.
    {!Sharded_store} spreads an indexed store over subject-hashed shards
    for concurrent multi-domain workloads. All implementations expose the
    same set semantics (duplicate triples are not stored twice). *)

module type S = sig
  type t

  val create : unit -> t
  val name : string
  (** Implementation name, for benchmarks and logs. *)

  val add : t -> Triple.t -> bool
  (** [false] when the triple was already present. *)

  val remove : t -> Triple.t -> bool
  (** [false] when the triple was absent. *)

  val mem : t -> Triple.t -> bool
  val size : t -> int
  val clear : t -> unit

  val select :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t ->
    Triple.t list
  (** The paper's TRIM query: "selection, where one or more of the triple
      fields is fixed, and the result is a set of triples". With no field
      fixed, returns everything. Order is unspecified. *)

  val count :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t -> int
  (** [count ?subject ?predicate ?object_ t] is
      [List.length (select ?subject ?predicate ?object_ t)] without
      materializing the result list. Indexed implementations answer from
      bucket sizes; the query optimizer uses this for real cardinality
      estimates. *)

  val exists :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t -> bool
  (** [exists ?subject ?predicate ?object_ t] is
      [select ?subject ?predicate ?object_ t <> []] without materializing
      or walking the whole result: implementations short-circuit on the
      first match. The hot case is [exists ~subject] (is this id in
      use?). *)

  val iter : (Triple.t -> unit) -> t -> unit
  val fold : (Triple.t -> 'a -> 'a) -> t -> 'a -> 'a
  val to_list : t -> Triple.t list
  val add_all : t -> Triple.t list -> unit
end

module List_store : S
(** Unindexed, list-backed. O(n) everything; tiny footprint — the
    "keep it lightweight" choice for small superimposed layers. *)

module Indexed_store : S
(** Hash-indexed on each field and on the (subject, predicate) and
    (predicate, object) pairs. A [select] with bound subject+predicate or
    predicate+object hits its pair bucket directly with no post-filter;
    other combinations use the most selective single-field index. Buckets
    are cleaned lazily after removals (stale and duplicate entries are
    purged the next time the bucket is read), so removal-free workloads
    never pay a cleaning cost. *)

module Locked (Base : S) : S
(** [Base] behind a mutex: every operation is atomic with respect to
    other domains, so one store can back concurrently shared superimposed
    information (the §2 "collectively maintained, situated awareness"
    setting, multi-domain edition). Composite read-modify-write sequences
    still need external coordination (see {!Trim.transaction}). The name
    is ["locked-" ^ Base.name]. *)

module Locked_indexed : S
(** [Locked (Indexed_store)], the implementation shared stores should
    use when contention is low. *)

(** Triples stored column-wise as parallel int arrays over {!Atom} ids:
    subject / predicate / packed-object columns plus a canonical
    materialized row column. Single-field and pair indexes are
    int-keyed hashtables of row buckets, and every bucket carries an
    eager live count, so every indexed [count] is O(1) and
    every comparison on the select path is int equality over cache-dense
    arrays — the compact representation behind the E15 speedups.
    Removals tombstone rows; the store compacts itself when tombstones
    pass half the occupancy (counter and span [store.columnar.compact]).
    Single-domain, like {!Indexed_store}; wrap in {!Locked} or
    {!Sharded} to share across domains. *)
module Columnar_store : sig
  include S

  val of_packed_columns : int array -> int array -> int array -> t
  (** [of_packed_columns subs preds objs] is the bulk constructor for
      snapshot recovery: three equal-length columns of already-interned
      {!Atom} ids — subject, predicate, and the object packed as
      [id * 2 + tag] (tag 1 = literal). The store takes ownership of
      the arrays (callers must not reuse them), and the primary set and
      indexes are pre-sized for the row count and filled in one pass —
      no growth doublings or rehashes — which is what makes binary
      snapshot recovery beat XML by the E15 margin. Duplicate rows are
      dropped.
      @raise Invalid_argument when the column lengths differ. *)
end

module Sharded (B : S) : S
(** A [B] per shard, subject-hashed, each shard behind its own mutex.
    Writes and subject-bound reads lock exactly one shard, so domains
    working on different subjects proceed in parallel instead of
    serializing on one global lock ({!Locked_indexed}'s bottleneck).
    Cross-shard reads (predicate- or object-bound [select], [size],
    [to_list]) lock shards one at a time: each shard is observed
    atomically, the whole-store view is not. Locks never nest, so the
    store cannot deadlock. The name is ["sharded-" ^ B.name]. *)

module Sharded_store : S
(** [Sharded (Indexed_store)] under its original registered name,
    ["sharded"]. *)

module Sharded_columnar : S
(** [Sharded (Columnar_store)]: the concurrent face of the columnar
    representation. *)

val implementations : (string * (module S)) list
(** [list], [indexed], [locked-indexed], [columnar], [sharded], and
    [sharded-columnar]. *)
