module Xml = Si_xmlk
module Log = Si_wal.Log
module Record = Si_wal.Record

let snapshot_binary_count = Si_obs.Registry.counter "wal.snapshot.binary"
let snapshot_binary_latency = Si_obs.Registry.histogram "wal.snapshot.binary"

type t = {
  trim : Trim.t;
  log : Log.t;
  mutable trouble : string option;
      (* First append failure since the last [sync]; appends run inside
         the Trim observer and have no result channel of their own. *)
}

type opened = {
  durable : t;
  replayed : int;
  truncated_bytes : int;
  reset_log : bool;
}

(* ------------------------------------------------------------- codec *)

let obj_fields = function
  | Triple.Resource r -> [ "r"; r ]
  | Triple.Literal l -> [ "l"; l ]

let encode_op = function
  | Trim.Op_add tr ->
      Record.encode_fields
        (("+" :: [ tr.Triple.subject; tr.Triple.predicate ])
        @ obj_fields tr.Triple.object_)
  | Trim.Op_remove tr ->
      Record.encode_fields
        (("-" :: [ tr.Triple.subject; tr.Triple.predicate ])
        @ obj_fields tr.Triple.object_)
  | Trim.Op_clear -> Record.encode_fields [ "x" ]

let triple_of_fields s p kind v =
  match kind with
  | "r" -> Ok (Triple.make s p (Triple.Resource v))
  | "l" -> Ok (Triple.make s p (Triple.Literal v))
  | _ -> Error (Printf.sprintf "unknown object kind %S" kind)

let decode_op payload =
  match Record.decode_fields payload with
  | Error _ as e -> e
  | Ok [ "x" ] -> Ok Trim.Op_clear
  | Ok [ "+"; s; p; kind; v ] ->
      Result.map (fun tr -> Trim.Op_add tr) (triple_of_fields s p kind v)
  | Ok [ "-"; s; p; kind; v ] ->
      Result.map (fun tr -> Trim.Op_remove tr) (triple_of_fields s p kind v)
  | Ok (tag :: _) -> Error (Printf.sprintf "unknown triple op tag %S" tag)
  | Ok [] -> Error "empty operation record"

let apply_op trim = function
  | Trim.Op_add tr -> ignore (Trim.add trim tr)
  | Trim.Op_remove tr -> ignore (Trim.remove trim tr)
  | Trim.Op_clear -> Trim.clear trim

(* ------------------------------------------------------- open / close *)

(* Snapshots are cut in the binary form; recovery sniffs, so a log
   whose last checkpoint predates the binary codec replays its XML
   snapshot unchanged. *)
let snapshot_of_trim trim =
  Si_obs.Counter.incr snapshot_binary_count;
  if Si_obs.Span.on () then
    Si_obs.Span.timed snapshot_binary_latency ~layer:"wal"
      ~op:"snapshot.binary" (fun () -> Trim.to_binary trim)
  else Trim.to_binary trim

let trim_of_snapshot ?store payload =
  if Si_wal.Binary.is_binary payload then Trim.of_binary ?store payload
  else
    match Xml.Parse.node payload with
    | Error e -> Error (Xml.Parse.error_to_string e)
    | Ok root -> Trim.of_xml ?store (Xml.Node.strip_whitespace root)

let open_ ?store ?policy path =
  match Log.open_ ?policy path with
  | Error e -> Error (Log.error_to_string e)
  | Ok (log, recovery) -> (
      let closing e =
        ignore (Log.close log);
        Error e
      in
      let trim_result =
        match recovery.Log.snapshot with
        | None -> Ok (Trim.create ?store ())
        | Some xml -> trim_of_snapshot ?store xml
      in
      match trim_result with
      | Error e -> closing (Printf.sprintf "wal: bad snapshot payload: %s" e)
      | Ok trim -> (
          let rec replay i = function
            | [] -> Ok i
            | payload :: rest -> (
                match decode_op payload with
                | Ok op ->
                    apply_op trim op;
                    replay (i + 1) rest
                | Error e ->
                    Error
                      (Printf.sprintf "wal: undecodable record %d: %s" i e))
          in
          match replay 0 recovery.Log.records with
          | Error e -> closing e
          | Ok replayed ->
              let t = { trim; log; trouble = None } in
              Trim.on_mutate trim (fun op ->
                  match Log.append t.log (encode_op op) with
                  | Ok () -> ()
                  | Error e ->
                      if t.trouble = None then
                        t.trouble <- Some (Log.error_to_string e));
              Ok
                {
                  durable = t;
                  replayed;
                  truncated_bytes = recovery.Log.truncated_bytes;
                  reset_log = recovery.Log.reset_log;
                }))

let trim t = t.trim
let log t = t.log

let check_trouble t =
  match t.trouble with
  | Some e ->
      t.trouble <- None;
      Error e
  | None -> Ok ()

let lift = Result.map_error Log.error_to_string

let sync t =
  match check_trouble t with Error _ as e -> e | Ok () -> lift (Log.sync t.log)

let checkpoint t =
  match check_trouble t with
  | Error _ as e -> e
  | Ok () -> lift (Log.cut_snapshot t.log (snapshot_of_trim t.trim))

let close t =
  match check_trouble t with
  | Error e ->
      ignore (Log.close t.log);
      Error e
  | Ok () -> lift (Log.close t.log)
