module Xml = Si_xmlk

(* Instrumentation: counters are unconditional (one atomic add);
   spans/latency histograms only engage while Si_obs.Span tracing is
   on, and the [if Span.on ()] at each call-site keeps the disabled
   path closure-free. *)
let insert_count = Si_obs.Registry.counter "triple.insert"
let remove_count = Si_obs.Registry.counter "triple.remove"
let select_count = Si_obs.Registry.counter "triple.select"
let transaction_count = Si_obs.Registry.counter "triple.transaction"
let clear_count = Si_obs.Registry.counter "triple.clear"
let insert_latency = Si_obs.Registry.histogram "triple.insert"
let select_latency = Si_obs.Registry.histogram "triple.select"
let transaction_latency = Si_obs.Registry.histogram "triple.transaction"

type pack = Pack : (module Store.S with type t = 'a) * 'a -> pack

(* The undo log records inverse operations, newest first. *)
type undo = Undo_add of Triple.t | Undo_remove of Triple.t

type op = Op_add of Triple.t | Op_remove of Triple.t | Op_clear

type t = {
  pack : pack;
  mutable counter : int;
  mutable txn : undo list option;  (* Some log while a transaction runs *)
  mutable observer : (op -> unit) option;
}

let create ?(store = (module Store.Columnar_store : Store.S)) () =
  let (module S) = store in
  {
    pack = Pack ((module S), S.create ());
    counter = 0;
    txn = None;
    observer = None;
  }

let on_mutate t f = t.observer <- Some f
let notify t op = match t.observer with Some f -> f op | None -> ()

let create_lightweight () = create ~store:(module Store.List_store) ()

let store_name t =
  let (Pack ((module S), _)) = t.pack in
  S.name

let record t undo =
  match t.txn with
  | Some log -> t.txn <- Some (undo :: log)
  | None -> ()

let add_plain t triple =
  let (Pack ((module S), s)) = t.pack in
  let added = S.add s triple in
  if added then begin
    record t (Undo_add triple);
    notify t (Op_add triple)
  end;
  added

let add t triple =
  Si_obs.Counter.incr insert_count;
  if Si_obs.Span.on () then
    Si_obs.Span.timed insert_latency ~layer:"triple" ~op:"insert" (fun () ->
        add_plain t triple)
  else add_plain t triple

let remove t triple =
  Si_obs.Counter.incr remove_count;
  let (Pack ((module S), s)) = t.pack in
  let removed = S.remove s triple in
  if removed then begin
    record t (Undo_remove triple);
    notify t (Op_remove triple)
  end;
  removed

let in_transaction t = t.txn <> None

(* Rollback goes through the store directly (the undo ops must not be
   re-recorded), but the observer still has to see the inverse
   mutations, or a journal fed by it would diverge from the store. *)
let rollback t log =
  let (Pack ((module S), s)) = t.pack in
  List.iter
    (function
      | Undo_add triple ->
          if S.remove s triple then notify t (Op_remove triple)
      | Undo_remove triple ->
          if S.add s triple then notify t (Op_add triple))
    log

let transaction_plain t body =
  if in_transaction t then
    invalid_arg "Trim.transaction: transactions do not nest";
  t.txn <- Some [];
  let finish () =
    match t.txn with
    | Some log ->
        t.txn <- None;
        log
    | None -> []
  in
  match body () with
  | Ok _ as result ->
      ignore (finish ());
      Ok result
  | Error _ as result ->
      rollback t (finish ());
      Ok result
  | exception exn ->
      rollback t (finish ());
      Error exn

let transaction t body =
  Si_obs.Counter.incr transaction_count;
  if Si_obs.Span.on () then
    Si_obs.Span.timed transaction_latency ~layer:"triple" ~op:"transaction"
      (fun () -> transaction_plain t body)
  else transaction_plain t body

let mem t triple =
  let (Pack ((module S), s)) = t.pack in
  S.mem s triple

let size t =
  let (Pack ((module S), s)) = t.pack in
  S.size s

let clear t =
  Si_obs.Counter.incr clear_count;
  let (Pack ((module S), s)) = t.pack in
  S.clear s;
  notify t Op_clear

let to_list t =
  let (Pack ((module S), s)) = t.pack in
  S.to_list s

let add_all t triples =
  match t.observer with
  | Some _ ->
      (* The observer must see each effective insertion, so take the
         per-triple path (the bulk store op is List.iter add anyway). *)
      List.iter (fun triple -> ignore (add t triple)) triples
  | None ->
      let (Pack ((module S), s)) = t.pack in
      S.add_all s triples

let select ?subject ?predicate ?object_ t =
  Si_obs.Counter.incr select_count;
  let (Pack ((module S), s)) = t.pack in
  if Si_obs.Span.on () then
    Si_obs.Span.timed select_latency ~layer:"triple" ~op:"select" (fun () ->
        S.select ?subject ?predicate ?object_ s)
  else S.select ?subject ?predicate ?object_ s

let count_select ?subject ?predicate ?object_ t =
  let (Pack ((module S), s)) = t.pack in
  S.count ?subject ?predicate ?object_ s

let exists ?subject ?predicate ?object_ t =
  let (Pack ((module S), s)) = t.pack in
  S.exists ?subject ?predicate ?object_ s

let objects_of t ~subject ~predicate =
  List.map
    (fun (tr : Triple.t) -> tr.object_)
    (select ~subject ~predicate t)

let object_of t ~subject ~predicate =
  match objects_of t ~subject ~predicate with [] -> None | o :: _ -> Some o

let literal_of t ~subject ~predicate =
  match object_of t ~subject ~predicate with
  | Some (Triple.Literal s) -> Some s
  | Some (Triple.Resource _) | None -> None

let resource_of t ~subject ~predicate =
  match object_of t ~subject ~predicate with
  | Some (Triple.Resource r) -> Some r
  | Some (Triple.Literal _) | None -> None

let set t ~subject ~predicate object_ =
  List.iter (fun tr -> ignore (remove t tr)) (select ~subject ~predicate t);
  ignore (add t (Triple.make subject predicate object_))

let remove_subject t subject =
  let doomed = select ~subject t in
  List.iter (fun tr -> ignore (remove t tr)) doomed;
  List.length doomed

let new_id ?(prefix = "r") t =
  let rec fresh () =
    t.counter <- t.counter + 1;
    let id = Printf.sprintf "%s%d" prefix t.counter in
    if not (exists ~subject:id t) then id else fresh ()
  in
  fresh ()

(* Breadth-first closure from a root resource. *)
let traverse t root =
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  let triples = ref [] in
  let queue = Queue.create () in
  Hashtbl.add seen root ();
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let subject = Queue.pop queue in
    order := subject :: !order;
    let outgoing = select ~subject t in
    triples := List.rev_append outgoing !triples;
    List.iter
      (fun (tr : Triple.t) ->
        match tr.object_ with
        | Triple.Resource r ->
            if not (Hashtbl.mem seen r) then begin
              Hashtbl.add seen r ();
              Queue.add r queue
            end
        | Triple.Literal _ -> ())
      outgoing
  done;
  (List.rev !order, List.rev !triples)

let view t root = snd (traverse t root)
let reachable_resources t root = fst (traverse t root)

let subjects t =
  List.sort_uniq String.compare
    (List.map (fun (tr : Triple.t) -> tr.subject) (to_list t))

let predicates t =
  List.sort_uniq String.compare
    (List.map (fun (tr : Triple.t) -> tr.predicate) (to_list t))

(* ------------------------------------------------------------------ XML *)

let triple_to_xml (tr : Triple.t) =
  let obj =
    match tr.object_ with
    | Triple.Resource r -> Xml.Node.element "r" [ Xml.Node.text r ]
    | Triple.Literal l -> Xml.Node.element "l" [ Xml.Node.text l ]
  in
  Xml.Node.element "t"
    ~attrs:[ ("s", tr.subject); ("p", tr.predicate) ]
    [ obj ]

let to_xml t =
  let sorted = List.sort Triple.compare (to_list t) in
  Xml.Node.element "triples"
    ~attrs:[ ("count", string_of_int (size t)) ]
    (List.map triple_to_xml sorted)

let triple_of_xml node =
  match (Xml.Node.attr "s" node, Xml.Node.attr "p" node, Xml.Node.children node)
  with
  | Some s, Some p, children -> (
      let payload = List.filter Xml.Node.is_element children in
      match payload with
      | [ Xml.Node.Element { name = "r"; _ } as r ] ->
          Ok (Triple.make s p (Triple.Resource (Xml.Node.text_content r)))
      | [ Xml.Node.Element { name = "l"; _ } as l ] ->
          Ok (Triple.make s p (Triple.Literal (Xml.Node.text_content l)))
      | _ -> Error "a <t> element needs exactly one <r> or <l> child")
  | _ -> Error "a <t> element needs s and p attributes"

let triples_of_xml root =
  match root with
  | Xml.Node.Element { name = "triples"; _ } ->
      let rec load acc = function
        | [] -> Ok (List.rev acc)
        | node :: rest -> (
            match triple_of_xml node with
            | Ok triple -> load (triple :: acc) rest
            | Error _ as e -> e)
      in
      load [] (Xml.Node.find_children "t" root)
  | _ -> Error "expected a <triples> root element"

let of_xml ?store root =
  match root with
  | Xml.Node.Element { name = "triples"; _ } ->
      let t = create ?store () in
      let rec load = function
        | [] -> Ok t
        | node :: rest -> (
            match triple_of_xml node with
            | Ok triple ->
                ignore (add t triple);
                load rest
            | Error _ as e -> e)
      in
      load (Xml.Node.find_children "t" root)
  | _ -> Error "expected a <triples> root element"

let save t path = Xml.Print.to_file_atomic path (to_xml t)

let load ?store path =
  match Xml.Parse.file path with
  | Error e -> Error (Xml.Parse.error_to_string e)
  | Ok root -> of_xml ?store (Xml.Node.strip_whitespace root)

let equal_contents a b =
  size a = size b
  && List.equal Triple.equal
       (List.sort Triple.compare (to_list a))
       (List.sort Triple.compare (to_list b))

(* --------------------------------------------------------------- binary *)

(* The compact persistence form: an [atoms] section (a string table
   local to this snapshot — ids here are positions in the section, not
   process-wide {!Atom} ids, so the bytes are position-independent) and
   a [triples] section of three u32 columns per row referencing it,
   objects packed as [local_id * 2 + tag] (tag 1 = literal). Triples are
   sorted like {!to_xml}'s output, so equal stores encode to equal
   bytes. *)

module Wrec = Si_wal.Record
module Wbin = Si_wal.Binary

let atoms_section = "atoms"
let triples_section = "triples"

let binary_sections_of_triples triples =
  (* The rows must come out in {!Triple.compare} order (equal stores →
     equal bytes). Sorting the materialized triples directly is cheap
     precisely because the store interns: triples out of the default
     columnar store carry canonical atom strings, so every equal field
     is physically equal and the string compares inside
     {!Triple.compare} short-circuit on pointer identity — the sort
     runs near int-compare speed over the long equal-subject and
     equal-predicate runs. Everything here is sized to this snapshot,
     never to the process-wide atom table (a long-lived process
     accumulates atoms from every store it ever touched). *)
  let sorted = List.sort Triple.compare triples in
  let n = List.length triples in
  (* Local ids are assigned in first-occurrence order over the sorted
     rows (subject, predicate, object within each row). Keys are
     structural, so non-canonical duplicates in foreign triple lists
     still collapse to one atom. *)
  let local_of = Hashtbl.create (max 16 (2 * n)) in
  let natoms = ref 0 in
  let atom_body = Buffer.create 1024 in
  let local s =
    match Hashtbl.find_opt local_of s with
    | Some l -> l
    | None ->
        let l = !natoms in
        incr natoms;
        Hashtbl.add local_of s l;
        Wrec.add_u32 atom_body (String.length s);
        Buffer.add_string atom_body s;
        l
  in
  let rows = Buffer.create ((12 * n) + 4) in
  List.iter
    (fun (tr : Triple.t) ->
      let s = local tr.subject in
      let p = local tr.predicate in
      let packed =
        match tr.object_ with
        | Triple.Resource r -> 2 * local r
        | Triple.Literal l -> (2 * local l) + 1
      in
      Wrec.add_u32 rows s;
      Wrec.add_u32 rows p;
      Wrec.add_u32 rows packed)
    sorted;
  let atoms = Buffer.create (Buffer.length atom_body + 4) in
  Wrec.add_u32 atoms !natoms;
  Buffer.add_buffer atoms atom_body;
  let body = Buffer.create (Buffer.length rows + 4) in
  Wrec.add_u32 body n;
  Buffer.add_buffer body rows;
  [
    (atoms_section, Buffer.contents atoms);
    (triples_section, Buffer.contents body);
  ]

let binary_sections t = binary_sections_of_triples (to_list t)

let atoms_of_section s =
  let total = String.length s in
  if total < 4 then Error "atoms section shorter than its count header"
  else begin
    let count = Wrec.get_u32 s 0 in
    let atoms = Array.make count "" in
    let rec go i pos =
      if i = count then
        if pos = total then Ok atoms
        else
          Error
            (Printf.sprintf "%d trailing byte(s) after last atom" (total - pos))
      else if pos + 4 > total then Error "truncated atom length"
      else begin
        let len = Wrec.get_u32 s pos in
        if pos + 4 + len > total then
          Error (Printf.sprintf "atom length %d overruns section" len)
        else begin
          atoms.(i) <- String.sub s (pos + 4) len;
          go (i + 1) (pos + 4 + len)
        end
      end
    in
    go 0 4
  end

(* Validated decode of the two sections into the atom-string table,
   the raw rows body, and the row count: both sections' byte counts are
   exact. Row ids are range-checked by [iter_rows]. *)
let decode_sections sections =
  match
    (Wbin.section atoms_section sections, Wbin.section triples_section sections)
  with
  | None, _ -> Error "binary snapshot has no atoms section"
  | _, None -> Error "binary snapshot has no triples section"
  | Some atoms_payload, Some body -> (
      match atoms_of_section atoms_payload with
      | Error e -> Error e
      | Ok atoms ->
          let total = String.length body in
          if total < 4 then
            Error "triples section shorter than its count header"
          else begin
            let count = Wrec.get_u32 body 0 in
            if total - 4 <> 12 * count then
              Error
                (Printf.sprintf
                   "triples section carries %d byte(s) for %d row(s) (want %d)"
                   (total - 4) count (12 * count))
            else Ok (atoms, body, count)
          end)

(* Calls [f row s p packed] for every row, after checking that each
   referenced atom id is in range — so callbacks can index the atoms
   array unchecked. *)
let iter_rows atoms body count f =
  let natoms = Array.length atoms in
  let rec go row =
    if row = count then Ok ()
    else begin
      let base = 4 + (12 * row) in
      let s = Wrec.get_u32 body base in
      let p = Wrec.get_u32 body (base + 4) in
      let packed = Wrec.get_u32 body (base + 8) in
      let bad =
        if s >= natoms then s
        else if p >= natoms then p
        else if packed lsr 1 >= natoms then packed lsr 1
        else -1
      in
      if bad >= 0 then Error (Printf.sprintf "atom id %d out of range" bad)
      else begin
        f row s p packed;
        go (row + 1)
      end
    end
  in
  go 0

let triples_of_binary_sections sections =
  match decode_sections sections with
  | Error e -> Error e
  | Ok (atoms, body, count) -> (
      let acc = ref [] in
      let emit _ s p packed =
        let o = atoms.(packed lsr 1) in
        let obj =
          if packed land 1 = 0 then Triple.Resource o else Triple.Literal o
        in
        acc := Triple.make atoms.(s) atoms.(p) obj :: !acc
      in
      match iter_rows atoms body count emit with
      | Error e -> Error e
      | Ok () -> Ok (List.rev !acc))

let to_binary t = Wbin.encode (binary_sections t)

let triples_of_binary payload =
  match Wbin.decode payload with
  | Error e -> Error ("binary snapshot: " ^ e)
  | Ok sections -> triples_of_binary_sections sections

let of_binary ?store payload =
  match Wbin.decode payload with
  | Error e -> Error ("binary snapshot: " ^ e)
  | Ok sections -> (
      match store with
      | Some _ -> (
          match triples_of_binary_sections sections with
          | Error e -> Error e
          | Ok triples ->
              let t = create ?store () in
              add_all t triples;
              Ok t)
      | None -> (
          (* Default (columnar) store: intern each distinct atom once
             and decode the rows straight into global-id columns the
             store takes ownership of — the recovery path never
             materializes a triple list, allocates a per-row tuple, or
             probes a string hashtable per row. *)
          match decode_sections sections with
          | Error e -> Error e
          | Ok (atoms, body, count) -> (
              let glob = Array.map Atom.intern atoms in
              let subs = Array.make count 0 in
              let preds = Array.make count 0 in
              let objs = Array.make count 0 in
              let fill row s p packed =
                subs.(row) <- glob.(s);
                preds.(row) <- glob.(p);
                objs.(row) <- (2 * glob.(packed lsr 1)) + (packed land 1)
              in
              match iter_rows atoms body count fill with
              | Error e -> Error e
              | Ok () ->
                  let s = Store.Columnar_store.of_packed_columns subs preds objs in
                  Ok
                    {
                      pack = Pack ((module Store.Columnar_store), s);
                      counter = 0;
                      txn = None;
                      observer = None;
                    })))
