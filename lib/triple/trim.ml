module Xml = Si_xmlk

(* Instrumentation: counters are unconditional (one atomic add);
   spans/latency histograms only engage while Si_obs.Span tracing is
   on, and the [if Span.on ()] at each call-site keeps the disabled
   path closure-free. *)
let insert_count = Si_obs.Registry.counter "triple.insert"
let remove_count = Si_obs.Registry.counter "triple.remove"
let select_count = Si_obs.Registry.counter "triple.select"
let transaction_count = Si_obs.Registry.counter "triple.transaction"
let clear_count = Si_obs.Registry.counter "triple.clear"
let insert_latency = Si_obs.Registry.histogram "triple.insert"
let select_latency = Si_obs.Registry.histogram "triple.select"
let transaction_latency = Si_obs.Registry.histogram "triple.transaction"

type pack = Pack : (module Store.S with type t = 'a) * 'a -> pack

(* The undo log records inverse operations, newest first. *)
type undo = Undo_add of Triple.t | Undo_remove of Triple.t

type op = Op_add of Triple.t | Op_remove of Triple.t | Op_clear

type t = {
  pack : pack;
  mutable counter : int;
  mutable txn : undo list option;  (* Some log while a transaction runs *)
  mutable observer : (op -> unit) option;
}

let create ?(store = (module Store.Indexed_store : Store.S)) () =
  let (module S) = store in
  {
    pack = Pack ((module S), S.create ());
    counter = 0;
    txn = None;
    observer = None;
  }

let on_mutate t f = t.observer <- Some f
let notify t op = match t.observer with Some f -> f op | None -> ()

let create_lightweight () = create ~store:(module Store.List_store) ()

let store_name t =
  let (Pack ((module S), _)) = t.pack in
  S.name

let record t undo =
  match t.txn with
  | Some log -> t.txn <- Some (undo :: log)
  | None -> ()

let add_plain t triple =
  let (Pack ((module S), s)) = t.pack in
  let added = S.add s triple in
  if added then begin
    record t (Undo_add triple);
    notify t (Op_add triple)
  end;
  added

let add t triple =
  Si_obs.Counter.incr insert_count;
  if Si_obs.Span.on () then
    Si_obs.Span.timed insert_latency ~layer:"triple" ~op:"insert" (fun () ->
        add_plain t triple)
  else add_plain t triple

let remove t triple =
  Si_obs.Counter.incr remove_count;
  let (Pack ((module S), s)) = t.pack in
  let removed = S.remove s triple in
  if removed then begin
    record t (Undo_remove triple);
    notify t (Op_remove triple)
  end;
  removed

let in_transaction t = t.txn <> None

(* Rollback goes through the store directly (the undo ops must not be
   re-recorded), but the observer still has to see the inverse
   mutations, or a journal fed by it would diverge from the store. *)
let rollback t log =
  let (Pack ((module S), s)) = t.pack in
  List.iter
    (function
      | Undo_add triple ->
          if S.remove s triple then notify t (Op_remove triple)
      | Undo_remove triple ->
          if S.add s triple then notify t (Op_add triple))
    log

let transaction_plain t body =
  if in_transaction t then
    invalid_arg "Trim.transaction: transactions do not nest";
  t.txn <- Some [];
  let finish () =
    match t.txn with
    | Some log ->
        t.txn <- None;
        log
    | None -> []
  in
  match body () with
  | Ok _ as result ->
      ignore (finish ());
      Ok result
  | Error _ as result ->
      rollback t (finish ());
      Ok result
  | exception exn ->
      rollback t (finish ());
      Error exn

let transaction t body =
  Si_obs.Counter.incr transaction_count;
  if Si_obs.Span.on () then
    Si_obs.Span.timed transaction_latency ~layer:"triple" ~op:"transaction"
      (fun () -> transaction_plain t body)
  else transaction_plain t body

let mem t triple =
  let (Pack ((module S), s)) = t.pack in
  S.mem s triple

let size t =
  let (Pack ((module S), s)) = t.pack in
  S.size s

let clear t =
  Si_obs.Counter.incr clear_count;
  let (Pack ((module S), s)) = t.pack in
  S.clear s;
  notify t Op_clear

let to_list t =
  let (Pack ((module S), s)) = t.pack in
  S.to_list s

let add_all t triples =
  match t.observer with
  | Some _ ->
      (* The observer must see each effective insertion, so take the
         per-triple path (the bulk store op is List.iter add anyway). *)
      List.iter (fun triple -> ignore (add t triple)) triples
  | None ->
      let (Pack ((module S), s)) = t.pack in
      S.add_all s triples

let select ?subject ?predicate ?object_ t =
  Si_obs.Counter.incr select_count;
  let (Pack ((module S), s)) = t.pack in
  if Si_obs.Span.on () then
    Si_obs.Span.timed select_latency ~layer:"triple" ~op:"select" (fun () ->
        S.select ?subject ?predicate ?object_ s)
  else S.select ?subject ?predicate ?object_ s

let count_select ?subject ?predicate ?object_ t =
  let (Pack ((module S), s)) = t.pack in
  S.count ?subject ?predicate ?object_ s

let exists ?subject ?predicate ?object_ t =
  let (Pack ((module S), s)) = t.pack in
  S.exists ?subject ?predicate ?object_ s

let objects_of t ~subject ~predicate =
  List.map
    (fun (tr : Triple.t) -> tr.object_)
    (select ~subject ~predicate t)

let object_of t ~subject ~predicate =
  match objects_of t ~subject ~predicate with [] -> None | o :: _ -> Some o

let literal_of t ~subject ~predicate =
  match object_of t ~subject ~predicate with
  | Some (Triple.Literal s) -> Some s
  | Some (Triple.Resource _) | None -> None

let resource_of t ~subject ~predicate =
  match object_of t ~subject ~predicate with
  | Some (Triple.Resource r) -> Some r
  | Some (Triple.Literal _) | None -> None

let set t ~subject ~predicate object_ =
  List.iter (fun tr -> ignore (remove t tr)) (select ~subject ~predicate t);
  ignore (add t (Triple.make subject predicate object_))

let remove_subject t subject =
  let doomed = select ~subject t in
  List.iter (fun tr -> ignore (remove t tr)) doomed;
  List.length doomed

let new_id ?(prefix = "r") t =
  let rec fresh () =
    t.counter <- t.counter + 1;
    let id = Printf.sprintf "%s%d" prefix t.counter in
    if not (exists ~subject:id t) then id else fresh ()
  in
  fresh ()

(* Breadth-first closure from a root resource. *)
let traverse t root =
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  let triples = ref [] in
  let queue = Queue.create () in
  Hashtbl.add seen root ();
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let subject = Queue.pop queue in
    order := subject :: !order;
    let outgoing = select ~subject t in
    triples := List.rev_append outgoing !triples;
    List.iter
      (fun (tr : Triple.t) ->
        match tr.object_ with
        | Triple.Resource r ->
            if not (Hashtbl.mem seen r) then begin
              Hashtbl.add seen r ();
              Queue.add r queue
            end
        | Triple.Literal _ -> ())
      outgoing
  done;
  (List.rev !order, List.rev !triples)

let view t root = snd (traverse t root)
let reachable_resources t root = fst (traverse t root)

let subjects t =
  List.sort_uniq String.compare
    (List.map (fun (tr : Triple.t) -> tr.subject) (to_list t))

let predicates t =
  List.sort_uniq String.compare
    (List.map (fun (tr : Triple.t) -> tr.predicate) (to_list t))

(* ------------------------------------------------------------------ XML *)

let triple_to_xml (tr : Triple.t) =
  let obj =
    match tr.object_ with
    | Triple.Resource r -> Xml.Node.element "r" [ Xml.Node.text r ]
    | Triple.Literal l -> Xml.Node.element "l" [ Xml.Node.text l ]
  in
  Xml.Node.element "t"
    ~attrs:[ ("s", tr.subject); ("p", tr.predicate) ]
    [ obj ]

let to_xml t =
  let sorted = List.sort Triple.compare (to_list t) in
  Xml.Node.element "triples"
    ~attrs:[ ("count", string_of_int (size t)) ]
    (List.map triple_to_xml sorted)

let triple_of_xml node =
  match (Xml.Node.attr "s" node, Xml.Node.attr "p" node, Xml.Node.children node)
  with
  | Some s, Some p, children -> (
      let payload = List.filter Xml.Node.is_element children in
      match payload with
      | [ Xml.Node.Element { name = "r"; _ } as r ] ->
          Ok (Triple.make s p (Triple.Resource (Xml.Node.text_content r)))
      | [ Xml.Node.Element { name = "l"; _ } as l ] ->
          Ok (Triple.make s p (Triple.Literal (Xml.Node.text_content l)))
      | _ -> Error "a <t> element needs exactly one <r> or <l> child")
  | _ -> Error "a <t> element needs s and p attributes"

let triples_of_xml root =
  match root with
  | Xml.Node.Element { name = "triples"; _ } ->
      let rec load acc = function
        | [] -> Ok (List.rev acc)
        | node :: rest -> (
            match triple_of_xml node with
            | Ok triple -> load (triple :: acc) rest
            | Error _ as e -> e)
      in
      load [] (Xml.Node.find_children "t" root)
  | _ -> Error "expected a <triples> root element"

let of_xml ?store root =
  match root with
  | Xml.Node.Element { name = "triples"; _ } ->
      let t = create ?store () in
      let rec load = function
        | [] -> Ok t
        | node :: rest -> (
            match triple_of_xml node with
            | Ok triple ->
                ignore (add t triple);
                load rest
            | Error _ as e -> e)
      in
      load (Xml.Node.find_children "t" root)
  | _ -> Error "expected a <triples> root element"

let save t path = Xml.Print.to_file_atomic path (to_xml t)

let load ?store path =
  match Xml.Parse.file path with
  | Error e -> Error (Xml.Parse.error_to_string e)
  | Ok root -> of_xml ?store (Xml.Node.strip_whitespace root)

let equal_contents a b =
  size a = size b
  && List.equal Triple.equal
       (List.sort Triple.compare (to_list a))
       (List.sort Triple.compare (to_list b))
