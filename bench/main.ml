(* Benchmark harness.

   The paper (ICDE 2001) has no quantitative evaluation — its figures are
   architecture diagrams and screenshots — so each group here either
   exercises a figure's machinery (F6, F7) or measures a design trade-off
   the paper states qualitatively (§6): the space and interpretation cost
   of the generic triple representation (E1, E2), the lightweight list
   store vs the indexed "alternative implementation mechanism" (E3), TRIM
   query/view cost (E4), mapping cost (E6), declarative query vs
   navigational access (E7), and the compound-indexed query path with
   concurrent stores (E10). EXPERIMENTS.md maps each group back to the
   paper's claims.

   Run with: dune exec bench/main.exe
   Machine-readable results: dune exec bench/main.exe -- --json out.json
   writes one JSON entry per test: {"group", "name", "ns_per_run"}
   (ns_per_run is the OLS estimate, null when bechamel produced none). *)

open Bechamel
open Toolkit
module Dmi = Si_slim.Dmi
module Desktop = Si_mark.Desktop
module Manager = Si_mark.Manager
module Mark = Si_mark.Mark
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module Store = Si_triple.Store

(* ------------------------------------------------------------- runner *)

(* Per-test OLS estimates, accumulated across groups so --json can dump
   them at the end: (group, test name, ns/run if estimated). *)
let recorded : (string * string * float option) list ref = ref []

(* --smoke: a fast sanity pass (CI runs it on every push) — tiny quota,
   same tests, same JSON shape; the numbers are noise, the exercise is
   the point. *)
let smoke = ref false

let run_group ~name tests =
  Printf.printf "\n== %s ==\n%!" name;
  let cfg =
    if !smoke then
      Benchmark.cfg ~limit:50 ~quota:(Time.millisecond 20.) ~kde:None
        ~stabilize:false ()
    else
      Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None
        ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg
      [ Instance.monotonic_clock ]
      (Test.make_grouped ~name tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let humanize ns =
    if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
    else Printf.sprintf "%8.1f ns" ns
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows
  |> List.iter (fun (test_name, ols_result) ->
         match Analyze.OLS.estimates ols_result with
         | Some (t :: _) ->
             recorded := (name, test_name, Some t) :: !recorded;
             Printf.printf "  %-58s %s/run\n%!" test_name (humanize t)
         | Some [] | None ->
             recorded := (name, test_name, None) :: !recorded;
             Printf.printf "  %-58s (no estimate)\n%!" test_name)

(* Minimal JSON writer (no external dependency): a flat array of
   {"group", "name", "ns_per_run"} objects, one per bench test. The format
   is documented in EXPERIMENTS.md ("Recording results"). *)
let write_json path =
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 32 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  in
  let entry (group, name, ns) =
    let value =
      match ns with
      | Some v when Float.is_finite v -> Printf.sprintf "%.2f" v
      | Some _ | None -> "null"
    in
    Printf.sprintf "  {\"group\": \"%s\", \"name\": \"%s\", \"ns_per_run\": %s}"
      (escape group) (escape name) value
  in
  let oc = open_out path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev_map entry !recorded));
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "\nwrote %d bench results to %s\n" (List.length !recorded) path

let staged = Staged.stage

(* --------------------------------------------------------- fixtures *)

(* A bundle-scrap world of [n] scraps through the DMI: one pad, n/10
   bundles, 10 scraps each. *)
let build_world ?store n =
  let t = Dmi.create ?store () in
  let pad = Dmi.create_slimpad t ~pad_name:"bench" in
  let root = Dmi.root_bundle t pad in
  let bundles =
    List.init (max 1 (n / 10)) (fun i ->
        Dmi.create_bundle t ~name:(Printf.sprintf "bundle-%d" i) ~parent:root ())
  in
  let bundle_array = Array.of_list bundles in
  for i = 0 to n - 1 do
    ignore
      (Dmi.create_scrap t
         ~name:(Printf.sprintf "scrap-%d" i)
         ~mark_id:(Printf.sprintf "mark-%d" i)
         ~parent:bundle_array.(i mod Array.length bundle_array)
         ())
  done;
  (t, pad, root, bundle_array)

let fig4_desktop () =
  let desk = Desktop.create () in
  let wb = Si_spreadsheet.Workbook.create ~sheet_names:[ "Medications" ] () in
  let set a v = Si_spreadsheet.Workbook.set wb ~sheet_name:"Medications" a v in
  set "A1" "Drug";
  set "B1" "Dose";
  set "A2" "Dopamine";
  set "B2" "5";
  set "A3" "Fentanyl";
  set "B3" "0.05";
  Desktop.add_workbook desk "meds.xls" wb;
  Desktop.add_xml desk "labs.xml"
    (Si_xmlk.Parse.node_exn
       "<report><panel name=\"lytes\"><result test=\"Na\">140</result>\
        <result test=\"K\">4.2</result></panel></report>");
  Desktop.add_text desk "note.txt"
    (Si_textdoc.Textdoc.of_lines
       [ "Patient: John Smith"; "Plan: wean pressors"; "Call renal." ]);
  let word = Si_wordproc.Wordproc.create ~title:"Note" () in
  Si_wordproc.Wordproc.append_paragraph word "Admitted with sepsis.";
  Desktop.add_word desk "note.doc" word;
  let deck = Si_slides.Slides.create ~title:"Rounds" () in
  let s1 = Si_slides.Slides.add_slide deck ~title:"Case" in
  ignore
    (Si_slides.Slides.add_shape s1 ~id:"problems"
       (Si_slides.Slides.Bullets [ "Septic shock"; "ARF" ]));
  Desktop.add_slides desk "rounds.ppt" deck;
  let pdf = Si_pdfdoc.Pdfdoc.create ~title:"Guideline" () in
  let p1 = Si_pdfdoc.Pdfdoc.add_page pdf in
  ignore (Si_pdfdoc.Pdfdoc.add_line p1 ~y:100. "MAP >= 65 mmHg");
  Desktop.add_pdf desk "guide.pdf" pdf;
  Desktop.add_html desk "wiki.html"
    "<html><head><title>Sepsis</title></head><body><h1 \
     id=\"tx\">Treatment</h1><p>Start antibiotics early.</p></body></html>";
  desk

let mark_fixture () =
  let desk = fig4_desktop () in
  let mgr = Manager.create () in
  Desktop.install_modules desk mgr;
  let mk mark_type fields =
    match Manager.create_mark mgr ~mark_type ~fields () with
    | Ok m -> (mark_type, m.Mark.mark_id)
    | Error e -> failwith e
  in
  let marks =
    [
      mk "excel"
        [ ("fileName", "meds.xls"); ("sheetName", "Medications");
          ("range", "A2:B2") ];
      mk "xml"
        [ ("fileName", "labs.xml"); ("xmlPath", "/report/panel/result[2]") ];
      mk "text"
        [ ("fileName", "note.txt"); ("offset", "26"); ("length", "13");
          ("selected", "wean pressors") ];
      mk "word"
        [ ("fileName", "note.doc"); ("para", "1"); ("offset", "14");
          ("length", "6") ];
      mk "slides"
        [ ("fileName", "rounds.ppt"); ("slide", "1");
          ("shapeId", "problems"); ("bullet", "2") ];
      mk "pdf"
        [ ("fileName", "guide.pdf"); ("page", "1"); ("x", "0"); ("y", "90");
          ("w", "600"); ("h", "30") ];
      mk "html" [ ("fileName", "wiki.html"); ("anchor", "tx") ];
    ]
  in
  (desk, mgr, marks)

(* A native-record baseline for the DMI comparison (E2): the same
   Bundle-Scrap shapes as plain mutable OCaml structures, without the
   generic triple representation underneath. *)
module Native_baseline = struct
  type scrap = {
    mutable scrap_name : string;
    mutable pos : (int * int) option;
    mutable mark_id : string;
  }

  type bundle = {
    mutable bundle_name : string;
    mutable scraps : scrap list;
    mutable nested : bundle list;
  }

  type pad = { mutable pad_name : string; root : bundle }

  let create_pad name =
    { pad_name = name; root = { bundle_name = name; scraps = []; nested = [] } }

  let create_bundle parent name =
    let b = { bundle_name = name; scraps = []; nested = [] } in
    parent.nested <- b :: parent.nested;
    b

  let create_scrap parent name mark_id =
    let s = { scrap_name = name; pos = None; mark_id } in
    parent.scraps <- s :: parent.scraps;
    s
end

(* ------------------------------------------------ E3: store scaling *)

let synthetic_triples n =
  List.init n (fun i ->
      match i mod 3 with
      | 0 ->
          Triple.make
            (Printf.sprintf "bundle-%d" (i / 3))
            "bundleContent"
            (Triple.resource (Printf.sprintf "scrap-%d" i))
      | 1 ->
          Triple.make
            (Printf.sprintf "scrap-%d" (i - 1))
            "scrapName"
            (Triple.literal (Printf.sprintf "scrap %d" i))
      | _ ->
          Triple.make
            (Printf.sprintf "scrap-%d" (i - 2))
            "scrapMark"
            (Triple.resource (Printf.sprintf "mark-%d" i)))

let store_scaling_tests () =
  let sizes = [ 100; 1_000; 10_000 ] in
  List.concat_map
    (fun (impl_name, (module S : Store.S)) ->
      List.concat_map
        (fun n ->
          let triples = synthetic_triples n in
          let filled = S.create () in
          S.add_all filled triples;
          let probe_subject = Printf.sprintf "scrap-%d" ((n / 2) + 1) in
          [
            Test.make
              ~name:(Printf.sprintf "insert:%s:n=%d" impl_name n)
              (staged (fun () ->
                   let s = S.create () in
                   S.add_all s triples));
            Test.make
              ~name:(Printf.sprintf "select-subject:%s:n=%d" impl_name n)
              (staged (fun () -> S.select ~subject:probe_subject filled));
            Test.make
              ~name:(Printf.sprintf "select-predicate:%s:n=%d" impl_name n)
              (staged (fun () -> S.select ~predicate:"scrapName" filled));
          ])
        sizes)
    Store.implementations

(* ------------------------------------- E4: TRIM query & view scaling *)

let trim_view_tests () =
  List.map
    (fun n ->
      let t, pad, _, _ = build_world n in
      let trim = Dmi.trim t in
      let pad_id = Dmi.pad_id pad in
      Test.make
        ~name:(Printf.sprintf "view:scraps=%d" n)
        (staged (fun () -> Trim.view trim pad_id)))
    [ 10; 100; 1_000 ]
  @ List.map
      (fun depth ->
        let t = Dmi.create () in
        let pad = Dmi.create_slimpad t ~pad_name:"deep" in
        let rec nest parent i =
          if i = 0 then ()
          else
            nest
              (Dmi.create_bundle t ~name:(Printf.sprintf "d%d" i) ~parent ())
              (i - 1)
        in
        nest (Dmi.root_bundle t pad) depth;
        let trim = Dmi.trim t in
        let pad_id = Dmi.pad_id pad in
        Test.make
          ~name:(Printf.sprintf "view:depth=%d" depth)
          (staged (fun () -> Trim.view trim pad_id)))
      [ 8; 64; 256 ]

(* --------------------------------------------- E2: DMI interpretation *)

let dmi_overhead_tests () =
  let t, _, _, bundles = build_world 1_000 in
  let target = bundles.(0) in
  let scrap = List.hd (Dmi.scraps t target) in
  let native_pad = Native_baseline.create_pad "bench" in
  let native_bundle =
    Native_baseline.create_bundle native_pad.Native_baseline.root "b"
  in
  let native_scrap = Native_baseline.create_scrap native_bundle "s" "m" in
  [
    (* Create+delete so the benched bundle does not grow across
       iterations and skew the later read benchmarks. *)
    Test.make ~name:"dmi:create+delete-scrap"
      (staged (fun () ->
           Dmi.delete_scrap t
             (Dmi.create_scrap t ~name:"s" ~mark_id:"m" ~parent:target ())));
    Test.make ~name:"native:create+delete-scrap"
      (staged (fun () ->
           let s = Native_baseline.create_scrap native_bundle "s" "m" in
           native_bundle.Native_baseline.scraps <-
             List.filter
               (fun x -> x != s)
               native_bundle.Native_baseline.scraps));
    Test.make ~name:"dmi:read-scrap-name"
      (staged (fun () -> Dmi.scrap_name t scrap));
    Test.make ~name:"native:read-scrap-name"
      (staged (fun () -> native_scrap.Native_baseline.scrap_name));
    Test.make ~name:"dmi:update-scrap-name"
      (staged (fun () -> Dmi.update_scrap_name t scrap "renamed"));
    Test.make ~name:"native:update-scrap-name"
      (staged (fun () ->
           native_scrap.Native_baseline.scrap_name <- "renamed"));
    Test.make ~name:"dmi:list-bundle-scraps"
      (staged (fun () -> Dmi.scraps t target));
    Test.make ~name:"native:list-bundle-scraps"
      (staged (fun () -> native_bundle.Native_baseline.scraps));
  ]

(* Ablation: the automatically generated (interpreted, run-time-checked)
   DMI vs the hand-written Bundle-Scrap DMI (§6 "automatic generation of
   customized data manipulation interfaces"). *)
let generated_dmi_tests () =
  let t, _, _, bundles = build_world 100 in
  let target = bundles.(0) in
  let scrap = List.hd (Dmi.scraps t target) in
  let scrap_id = Dmi.scrap_id scrap in
  let g =
    Si_slim.Generic_dmi.for_model
      (Dmi.model t).Si_slim.Bundle_model.model
  in
  let must = function Ok v -> v | Error e -> failwith e in
  [
    Test.make ~name:"generated:create+delete-scrap"
      (staged (fun () ->
           let s = must (Si_slim.Generic_dmi.create g "Scrap") in
           ignore (must (Si_slim.Generic_dmi.delete g s))));
    Test.make ~name:"handwritten:create+delete-scrap"
      (staged (fun () ->
           Dmi.delete_scrap t
             (Dmi.create_scrap t ~name:"s" ~mark_id:"m" ~parent:target ())));
    Test.make ~name:"generated:checked-set"
      (staged (fun () ->
           must
             (Si_slim.Generic_dmi.set g scrap_id "scrapName"
                (Triple.literal "renamed"))));
    Test.make ~name:"handwritten:set"
      (staged (fun () -> Dmi.update_scrap_name t scrap "renamed"));
    Test.make ~name:"generated:get"
      (staged (fun () -> Si_slim.Generic_dmi.get_literal g scrap_id "scrapName"));
    Test.make ~name:"handwritten:get"
      (staged (fun () -> Dmi.scrap_name t scrap));
  ]

(* ------------------------------------------------ F7: mark round-trips *)

let mark_tests () =
  let _desk, mgr, marks = mark_fixture () in
  List.map
    (fun (mark_type, mark_id) ->
      Test.make
        ~name:(Printf.sprintf "resolve:%s" mark_type)
        (staged (fun () ->
             match Manager.resolve mgr mark_id with
             | Ok _ -> ()
             | Error e -> failwith (Manager.resolve_error_to_string e))))
    marks
  @ [
      Test.make ~name:"create:excel"
        (staged (fun () ->
             match
               Manager.create_mark mgr ~mark_type:"excel"
                 ~fields:
                   [ ("fileName", "meds.xls"); ("sheetName", "Medications");
                     ("range", "B2") ]
                 ~excerpt:"5" ()
             with
             | Ok _ -> ()
             | Error e -> failwith e));
    ]

(* -------------------------------------------- F6: the three behaviours *)

let behaviour_tests () =
  let _desk, mgr, marks = mark_fixture () in
  let xml_mark = List.assoc "xml" marks in
  List.map
    (fun (label, behaviour) ->
      Test.make
        ~name:(Printf.sprintf "behaviour:%s" label)
        (staged (fun () ->
             match Manager.resolve_with mgr xml_mark behaviour with
             | Ok _ -> ()
             | Error e -> failwith (Manager.resolve_error_to_string e))))
    [
      ("navigate", Mark.Navigate);
      ("extract", Mark.Extract_content);
      ("inplace", Mark.Display_in_place);
    ]

(* -------------------------------------------------- E6: mapping cost *)

let mapping_tests () =
  let module Model = Si_metamodel.Model in
  List.map
    (fun n ->
      let trim = Trim.create () in
      let src = Model.define trim ~name:"src" in
      let bundle = Model.construct src "Bundle" in
      let str = Model.literal_construct src "String" in
      ignore (Model.connect src ~name:"bundleName" ~from_:bundle ~to_:str ());
      for i = 0 to n - 1 do
        let b = Model.new_instance src bundle () in
        Model.set_property src b "bundleName"
          (Triple.literal (Printf.sprintf "b%d" i))
      done;
      Test.make
        ~name:(Printf.sprintf "map-instances:n=%d" n)
        (staged (fun () ->
             let target_trim = Trim.create () in
             let tgt = Model.define target_trim ~name:"tgt" in
             let topic = Model.construct tgt "Topic" in
             let tstr = Model.literal_construct tgt "String" in
             ignore
               (Model.connect tgt ~name:"topicName" ~from_:topic ~to_:tstr ());
             let mapping =
               Si_mapping.Mapping.add_rule_exn
                 (Si_mapping.Mapping.create ~source:src ~target:tgt)
                 {
                   Si_mapping.Mapping.from_construct = "Bundle";
                   to_construct = "Topic";
                   property_map = [ ("bundleName", "topicName") ];
                 }
             in
             Si_mapping.Mapping.apply mapping)))
    [ 10; 100; 1_000 ]

(* --------------------------------------- E7: query vs navigation *)

let query_tests () =
  let t, pad, _, _ = build_world 1_000 in
  let trim = Dmi.trim t in
  let q =
    Si_query.Query.parse_exn
      "select ?n where { ?s <rdf:type> <model:bundle-scrap/Scrap> . ?s \
       scrapName ?n }"
  in
  let needle =
    Si_query.Query.parse_exn "select ?s where { ?s scrapName \"scrap-500\" }"
  in
  let rec nav_all_scrap_names b acc =
    let acc =
      List.fold_left
        (fun acc s -> Dmi.scrap_name t s :: acc)
        acc (Dmi.scraps t b)
    in
    List.fold_left
      (fun acc nested -> nav_all_scrap_names nested acc)
      acc
      (Dmi.nested_bundles t b)
  in
  let root = Dmi.root_bundle t pad in
  (* Optimizer: the same 3-hop join written worst-pattern-first. *)
  let pessimal =
    Si_query.Query.parse_exn
      "select ?n where { ?x ?p ?y . ?s scrapName ?n . ?s scrapName \
       \"scrap-500\" }"
  in
  let optimized = Si_query.Query.optimize trim pessimal in
  [
    Test.make ~name:"query:all-scrap-names"
      (staged (fun () -> Si_query.Query.run trim q));
    Test.make ~name:"nav:all-scrap-names"
      (staged (fun () -> nav_all_scrap_names root []));
    Test.make ~name:"query:point-lookup"
      (staged (fun () -> Si_query.Query.run trim needle));
    Test.make ~name:"query:pessimal-order"
      (staged (fun () -> Si_query.Query.run trim pessimal));
    Test.make ~name:"query:optimized-order"
      (staged (fun () -> Si_query.Query.run trim optimized));
  ]

(* --------------------------- E10: compound-indexed query path (this PR) *)

(* A fixture with wide subjects — 100 subjects x 100 predicates — so the
   bound subject+predicate lookup has something to win: the pair-index
   bucket holds exactly 1 triple where the single-key subject bucket holds
   100 to post-filter. *)
let wide_triples ~subjects ~predicates =
  List.concat_map
    (fun s ->
      List.init predicates (fun p ->
          Triple.make
            (Printf.sprintf "subj-%d" s)
            (Printf.sprintf "pred-%d" p)
            (Triple.literal (Printf.sprintf "v-%d-%d" s p))))
    (List.init subjects Fun.id)

let compound_path_tests () =
  let triples = wide_triples ~subjects:100 ~predicates:100 in
  List.concat_map
    (fun (impl_name, (module S : Store.S)) ->
      let filled = S.create () in
      S.add_all filled triples;
      let s = "subj-50" and p = "pred-50" in
      let o = Triple.literal "v-50-50" in
      [
        Test.make
          ~name:(Printf.sprintf "select-sp:%s" impl_name)
          (staged (fun () -> S.select ~subject:s ~predicate:p filled));
        (* The seed's single-key path: subject bucket, then post-filter on
           the predicate — what select-sp used to cost. *)
        Test.make
          ~name:(Printf.sprintf "select-sp-postfilter:%s" impl_name)
          (staged (fun () ->
               List.filter
                 (fun (tr : Triple.t) -> String.equal tr.predicate p)
                 (S.select ~subject:s filled)));
        Test.make
          ~name:(Printf.sprintf "select-po:%s" impl_name)
          (staged (fun () -> S.select ~predicate:p ~object_:o filled));
        Test.make
          ~name:(Printf.sprintf "count-sp:%s" impl_name)
          (staged (fun () -> S.count ~subject:s ~predicate:p filled));
        Test.make
          ~name:(Printf.sprintf "exists-subject:%s" impl_name)
          (staged (fun () -> S.exists ~subject:s filled));
      ])
    Store.implementations

(* Multi-domain throughput: 4 domains hammer one shared store with a
   mixed add/select workload on disjoint subjects. The sharded store's
   subject-hashed locks let the domains proceed in parallel; the single
   global lock serializes them. *)
let concurrent_throughput_tests () =
  let ops_per_domain = 1_000 in
  let mixed (module S : Store.S) () =
    let s = S.create () in
    let worker d () =
      for i = 0 to ops_per_domain - 1 do
        let subject = Printf.sprintf "d%d-r%d" d (i mod 97) in
        ignore
          (S.add s
             (Triple.make subject "p" (Triple.literal (string_of_int i))));
        if i mod 10 = 0 then ignore (S.select ~subject s);
        if i mod 100 = 0 then ignore (S.exists ~subject s)
      done
    in
    let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
    List.iter Domain.join domains
  in
  List.filter_map
    (fun (impl_name, store) ->
      (* Only thread-safe stores participate. *)
      if impl_name = "locked-indexed" || impl_name = "sharded" then
        Some
          (Test.make
             ~name:(Printf.sprintf "mixed-4-domains:%s" impl_name)
             (staged (mixed store)))
      else None)
    Store.implementations

(* Early-terminating limit: limit 1 must cost a fraction of the full scan
   on the same join. *)
let limit_tests () =
  let t, _, _, _ = build_world 1_000 in
  let trim = Dmi.trim t in
  let full =
    Si_query.Query.parse_exn
      "select ?n where { ?s <rdf:type> <model:bundle-scrap/Scrap> . ?s \
       scrapName ?n }"
  in
  let limited =
    Si_query.Query.parse_exn
      "select ?n where { ?s <rdf:type> <model:bundle-scrap/Scrap> . ?s \
       scrapName ?n } limit 1"
  in
  let topk =
    Si_query.Query.parse_exn
      "select ?n where { ?s <rdf:type> <model:bundle-scrap/Scrap> . ?s \
       scrapName ?n } order by ?n limit 5"
  in
  [
    Test.make ~name:"query:full-scan"
      (staged (fun () -> Si_query.Query.run trim full));
    Test.make ~name:"query:limit-1"
      (staged (fun () -> Si_query.Query.run trim limited));
    Test.make ~name:"query:order-by-top-5"
      (staged (fun () -> Si_query.Query.run trim topk));
  ]

(* ------------------------------------------ application-level benches *)

let application_tests () =
  (* A realistic pad: the ICU worksheet over a generated desktop. *)
  let desk = Desktop.create () in
  let spec = Si_workload.Icu.build_desktop ~patients:6 ~seed:11 desk in
  let app = Si_slimpad.Slimpad.create desk in
  let pad = Si_workload.Icu.build_worksheet app spec in
  let ui = Si_tui.Ui.make app pad in
  [
    Test.make ~name:"render:text"
      (staged (fun () -> Si_slimpad.Slimpad.render_pad app pad));
    Test.make ~name:"render:html"
      (staged (fun () -> Si_slimpad.Slimpad.render_pad_html app pad));
    Test.make ~name:"render:tui-frame"
      (staged (fun () -> Si_tui.Ui.render ui ~width:120 ~height:40));
    Test.make ~name:"drift:whole-pad"
      (staged (fun () -> Si_slimpad.Slimpad.drift_report app pad));
    Test.make ~name:"find-scraps"
      (staged (fun () -> Si_slimpad.Slimpad.find_scraps app pad "TODO"));
  ]

(* ------------------------------------------------- E13 lint benches *)

let lint_tests () =
  (* A realistic ICU pad, padded with filler bundles up to the target
     store size; the lint pass runs the full 16-rule catalog. *)
  let app_of_size n =
    let desk = Desktop.create () in
    let spec = Si_workload.Icu.build_desktop ~patients:6 ~seed:11 desk in
    let app = Si_slimpad.Slimpad.create desk in
    let pad = Si_workload.Icu.build_worksheet app spec in
    let dmi = Si_slimpad.Slimpad.dmi app in
    let root = Dmi.root_bundle dmi pad in
    let i = ref 0 in
    while Dmi.triple_count dmi < n do
      incr i;
      ignore
        (Si_slimpad.Slimpad.add_bundle app ~parent:root
           ~name:(Printf.sprintf "filler-%d" !i)
           ~pos:{ Dmi.x = !i; y = !i }
           ())
    done;
    app
  in
  let bench n =
    let app = app_of_size n in
    let ctx =
      Si_lint.context
        ~dmi:(Si_slimpad.Slimpad.dmi app)
        ~marks:(Si_slimpad.Slimpad.marks app)
        ~resilient:(Si_slimpad.Slimpad.resilient app)
        ()
    in
    Test.make
      ~name:(Printf.sprintf "full catalog @ %d triples" n)
      (staged (fun () -> Si_lint.run ctx))
  in
  List.map bench [ 1_000; 10_000 ]

(* ----------------------------------------- substrate parsing benches *)

let substrate_tests () =
  let xml_doc =
    Si_xmlk.Print.to_string
      (Si_xmlk.Node.element "report"
         (List.init 100 (fun i ->
              Si_xmlk.Node.element "result"
                ~attrs:[ ("test", Printf.sprintf "t%d" i) ]
                [ Si_xmlk.Node.text (string_of_int i) ])))
  in
  let html_doc =
    "<html><body>"
    ^ String.concat ""
        (List.init 100 (fun i -> Printf.sprintf "<tr><td>row %d<td>%d" i i))
    ^ "</body></html>"
  in
  let wb = Si_spreadsheet.Workbook.create () in
  for i = 1 to 50 do
    Si_spreadsheet.Workbook.set wb (Printf.sprintf "A%d" i) (string_of_int i);
    Si_spreadsheet.Workbook.set wb
      (Printf.sprintf "B%d" i)
      (Printf.sprintf "=A%d * 2 + SUM(A1:A%d)" i i)
  done;
  [
    Test.make ~name:"xml:parse-100-elements"
      (staged (fun () -> Si_xmlk.Parse.node_exn xml_doc));
    Test.make ~name:"html:parse-100-rows"
      (staged (fun () -> Si_htmldoc.Htmldoc.parse html_doc));
    Test.make ~name:"formula:parse"
      (staged (fun () ->
           Si_spreadsheet.Formula.parse_exn "SUM(B2:B9) * (1 + C1) / 2"));
    Test.make ~name:"spreadsheet:recalc-chain-50"
      (staged (fun () -> Si_spreadsheet.Workbook.display wb "B50"));
  ]

(* --------------------------------- E9: persistence & RDF serialization *)

let persistence_tests () =
  List.concat_map
    (fun n ->
      let t, _, _, _ = build_world n in
      let trim = Dmi.trim t in
      let internal_xml = Trim.to_xml trim in
      let rdf_xml =
        match Si_triple.Rdf_xml.to_xml trim with
        | Ok node -> node
        | Error e -> failwith e
      in
      [
        Test.make
          ~name:(Printf.sprintf "trim-to-xml:scraps=%d" n)
          (staged (fun () -> Trim.to_xml trim));
        Test.make
          ~name:(Printf.sprintf "trim-of-xml:scraps=%d" n)
          (staged (fun () -> Trim.of_xml internal_xml));
        Test.make
          ~name:(Printf.sprintf "rdf-to-xml:scraps=%d" n)
          (staged (fun () -> Si_triple.Rdf_xml.to_xml trim));
        Test.make
          ~name:(Printf.sprintf "rdf-of-xml:scraps=%d" n)
          (staged (fun () -> Si_triple.Rdf_xml.of_xml rdf_xml));
      ])
    [ 10; 100; 1_000 ]

(* --------------------------------------------- E1: space (direct print) *)

let space_report () =
  Printf.printf "\n== E1: space overhead of the generic representation ==\n";
  Printf.printf "  %-10s %12s %14s %16s %18s\n" "scraps" "triples"
    "triples/scrap" "store XML bytes" "native-ish bytes";
  List.iter
    (fun n ->
      let t, pad, _, _ = build_world n in
      let baseline = Dmi.create () in
      let model_triples = Dmi.triple_count baseline in
      let triples = Dmi.triple_count t - model_triples in
      let xml_bytes = String.length (Si_xmlk.Print.to_string (Dmi.to_xml t)) in
      (* A compact purpose-built serialization as the "native" yardstick:
         roughly what a hand-written format would store per object. *)
      let rec native_size b acc =
        let acc =
          List.fold_left
            (fun acc s ->
              acc
              + String.length (Dmi.scrap_name t s)
              + String.length (Dmi.scrap_mark_id t s)
              + 16)
            acc (Dmi.scraps t b)
        in
        List.fold_left
          (fun acc nested ->
            native_size nested
              (acc + String.length (Dmi.bundle_name t nested) + 16))
          acc
          (Dmi.nested_bundles t b)
      in
      let native_bytes = native_size (Dmi.root_bundle t pad) 64 in
      Printf.printf "  %-10d %12d %14.1f %16d %18d\n" n triples
        (float_of_int triples /. float_of_int (max 1 n))
        xml_bytes native_bytes)
    [ 10; 100; 1_000 ];
  Printf.printf
    "  (triples/scrap counts the whole pad structure: scrap + name + mark\n\
    \   handle + membership; the model definition itself is %d triples,\n\
    \   paid once per store.)\n"
    (Dmi.triple_count (Dmi.create ()))

let registry_report () =
  let _desk, mgr, _marks = mark_fixture () in
  Printf.printf "\n== F7: registered mark modules ==\n  %s\n"
    (String.concat ", " (Manager.module_names mgr))

(* --------------------- E11: resilient resolution under faults ---------- *)

(* One breaker-guarded sweep over a flaky and a healthy mark per run. The
   desktop's note.txt fails at the given rate (deterministic injection,
   seed 7). At 0% this measures the resilient layer's overhead over plain
   Manager.resolve; at 10% / 50% it adds the cost of retries, breaker
   trips, and degraded (cached-excerpt) outcomes. *)
let resilience_tests () =
  let make_case rate =
    let desk = fig4_desktop () in
    let faults =
      Si_workload.Faults.create ~seed:7 ~only:[ "note.txt" ]
        (Si_workload.Faults.Fail_rate rate)
    in
    let mgr = Manager.create () in
    Desktop.install_modules ~wrap:(Si_workload.Faults.wrap faults) desk mgr;
    (* Excerpts supplied up front: creation must not depend on the flaky
       opener, only resolution does. *)
    let mk mark_type fields excerpt =
      match Manager.create_mark mgr ~mark_type ~fields ~excerpt () with
      | Ok m -> m.Mark.mark_id
      | Error e -> failwith e
    in
    let flaky =
      mk "text"
        [ ("fileName", "note.txt"); ("offset", "26"); ("length", "13");
          ("selected", "wean pressors") ]
        "wean pressors"
    in
    let healthy =
      mk "xml"
        [ ("fileName", "labs.xml"); ("xmlPath", "/report/panel/result[2]") ]
        "4.2"
    in
    let resilient = Si_mark.Resilient.create () in
    Test.make
      ~name:
        (Printf.sprintf "resolve sweep @ %2d%% faults"
           (int_of_float (rate *. 100.)))
      (staged (fun () ->
           List.iter
             (fun id ->
               match Si_mark.Resilient.resolve resilient mgr id with
               | Ok _ -> ()
               | Error e -> failwith (Manager.resolve_error_to_string e))
             [ flaky; healthy ]))
  in
  List.map make_case [ 0.0; 0.1; 0.5 ]

(* ------------------------ E12: journaled persistence (WAL) ------------- *)

(* The cost of making ONE mutation durable, as the pad grows. The
   whole-file path re-serializes the entire store per save (O(pad));
   the WAL appends two framed records (O(change)). Each run toggles a
   probe triple — add then remove — and persists after each op, so both
   paths do identical logical work and leave the store unchanged. *)
let wal_mutation_tests () =
  let sizes = [ 100; 1_000; 10_000 ] in
  let fill trim n =
    for i = 1 to n do
      ignore
        (Trim.add trim
           (Triple.make
              (Printf.sprintf "r%d" i)
              "scrapName"
              (Triple.literal (Printf.sprintf "scrap %d" i))))
    done
  in
  let probe = Triple.make "probe" "scrapName" (Triple.literal "probe") in
  let whole_file n =
    let trim = Trim.create () in
    fill trim n;
    let path = Filename.temp_file "bench_whole" ".xml" in
    Test.make
      ~name:(Printf.sprintf "whole-file save per mutation @ %d" n)
      (staged (fun () ->
           ignore (Trim.add trim probe);
           Result.get_ok (Trim.save trim path);
           ignore (Trim.remove trim probe);
           Result.get_ok (Trim.save trim path)))
  in
  let journaled n =
    let path = Filename.temp_file "bench_wal" ".wal" in
    Sys.remove path;
    let { Si_triple.Durable.durable; _ } =
      Result.get_ok
        (Si_triple.Durable.open_ ~policy:Si_wal.Log.Immediate path)
    in
    fill (Si_triple.Durable.trim durable) n;
    let trim = Si_triple.Durable.trim durable in
    Test.make
      ~name:(Printf.sprintf "wal append per mutation @ %d" n)
      (staged (fun () ->
           ignore (Trim.add trim probe);
           ignore (Trim.remove trim probe)))
  in
  List.concat_map (fun n -> [ whole_file n; journaled n ]) sizes

(* Recovery (open: read, verify CRCs, replay) against log length, and
   compaction (snapshot + log truncate) against store size. *)
let wal_recovery_tests () =
  let log_of_length n =
    let path = Filename.temp_file "bench_recover" ".wal" in
    Sys.remove path;
    let { Si_triple.Durable.durable; _ } =
      Result.get_ok (Si_triple.Durable.open_ path)
    in
    let trim = Si_triple.Durable.trim durable in
    for i = 1 to n do
      ignore
        (Trim.add trim
           (Triple.make
              (Printf.sprintf "r%d" i)
              "scrapName"
              (Triple.literal (Printf.sprintf "scrap %d" i))))
    done;
    Result.get_ok (Si_triple.Durable.close durable);
    path
  in
  let recover n =
    let path = log_of_length n in
    Test.make
      ~name:(Printf.sprintf "recovery (open+replay) @ %d records" n)
      (staged (fun () ->
           let { Si_triple.Durable.durable; _ } =
             Result.get_ok (Si_triple.Durable.open_ path)
           in
           Result.get_ok (Si_triple.Durable.close durable)))
  in
  let compact n =
    let path = log_of_length n in
    let { Si_triple.Durable.durable; _ } =
      Result.get_ok (Si_triple.Durable.open_ path)
    in
    Test.make
      ~name:(Printf.sprintf "compaction (checkpoint) @ %d triples" n)
      (staged (fun () ->
           Result.get_ok (Si_triple.Durable.checkpoint durable)))
  in
  List.concat_map (fun n -> [ recover n; compact n ]) [ 100; 1_000; 10_000 ]

(* ------------------------ E14: instrumentation overhead (this PR) *)

(* Each hot operation measured twice: with span tracing off (the
   default — only always-on counters fire) and with it on (spans +
   latency histograms). The off/on delta is the cost of observing;
   EXPERIMENTS.md E14 tracks it against a <5% budget for the traced
   case and ~0 for the untraced one. The closures flip the global
   switch themselves (one atomic store, noise-level) because bechamel
   interleaves runs. *)
let obs_overhead_tests () =
  let t, _, _, _ = build_world 1_000 in
  let trim = Dmi.trim t in
  let subject =
    match Trim.to_list trim with
    | tr :: _ -> tr.Triple.subject
    | [] -> assert false
  in
  let needle =
    Si_query.Query.parse_exn "select ?s where { ?s scrapName \"scrap-500\" }"
  in
  let dir = Filename.temp_file "si_bench_obs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let log, _ = Result.get_ok (Si_wal.Log.open_ (Filename.concat dir "a.wal")) in
  let payload = String.make 64 'x' in
  let off f () =
    Si_obs.Span.disable ();
    f ()
  in
  let on f () =
    Si_obs.Span.enable ();
    f ()
  in
  let select () = ignore (Trim.select ~subject trim) in
  let query () = ignore (Si_query.Query.run trim needle) in
  let append () = ignore (Si_wal.Log.append log payload) in
  [
    Test.make ~name:"trim select:point (tracing off)" (staged (off select));
    Test.make ~name:"trim select:point (tracing on)" (staged (on select));
    Test.make ~name:"query:point-lookup (tracing off)" (staged (off query));
    Test.make ~name:"query:point-lookup (tracing on)" (staged (on query));
    Test.make ~name:"wal append 64B (tracing off)" (staged (off append));
    Test.make ~name:"wal append 64B (tracing on)" (staged (on append));
  ]

(* ------------- E15: columnar store scaling & binary snapshot codec *)

(* The atom-interned columnar store against the string-keyed stores it
   replaces as the default, at sizes where representation dominates.
   The dataset is [synthetic_triples] plus one "captive" bundle holding
   n/100 scraps — the §3 many-scrap bundle — so the probes cover both
   bucket regimes: fat-bucket counts and filtered selects, where the
   seed walks a list per call (O(1) live counters and int-compare scans
   are the columnar wins), and point probes on tiny buckets, where both
   representations sit at the allocation floor. Every probe runs once
   before measurement so lazily built state on either side (bucket
   cleaning, pair indexes) is steady. 1M rows only off-smoke, and only
   for the two stores the acceptance criterion compares. *)
let e15_triples n =
  let fat = max 64 (n / 100) in
  let captive =
    List.init fat (fun i ->
        Triple.make "bundle-captive" "bundleContent"
          (Triple.resource (Printf.sprintf "scrap-%d" (i * 3))))
  in
  synthetic_triples (n - fat) @ captive

let columnar_scaling_tests () =
  let sizes =
    if !smoke then [ 10_000 ] else [ 10_000; 100_000; 1_000_000 ]
  in
  let impls n =
    if n >= 1_000_000 then
      [
        ("indexed", (module Store.Indexed_store : Store.S));
        ("columnar", (module Store.Columnar_store : Store.S));
      ]
    else
      [
        ("indexed", (module Store.Indexed_store : Store.S));
        ("columnar", (module Store.Columnar_store : Store.S));
        ("sharded", (module Store.Sharded_store : Store.S));
        ("sharded-columnar", (module Store.Sharded_columnar : Store.S));
      ]
  in
  List.concat_map
    (fun n ->
      let triples = e15_triples n in
      List.concat_map
        (fun (impl_name, (module S : Store.S)) ->
          let filled = S.create () in
          S.add_all filled triples;
          let point_subj = Printf.sprintf "scrap-%d" ((n / 2 / 3 * 3) + 1) in
          let so_obj = Triple.resource "scrap-300" in
          let probes =
            [
              ( "count-predicate",
                fun () -> ignore (S.count ~predicate:"scrapName" filled) );
              ( "count-subject-fat",
                fun () -> ignore (S.count ~subject:"bundle-captive" filled) );
              ( "count-sp-fat",
                fun () ->
                  ignore
                    (S.count ~subject:"bundle-captive"
                       ~predicate:"bundleContent" filled) );
              ( "select-so-fat",
                fun () ->
                  ignore
                    (S.select ~subject:"bundle-captive" ~object_:so_obj filled)
              );
              ( "select-subject",
                fun () -> ignore (S.select ~subject:point_subj filled) );
              ( "exists-po",
                fun () ->
                  ignore
                    (S.exists ~predicate:"bundleContent" ~object_:so_obj filled)
              );
            ]
          in
          List.map
            (fun (probe_name, probe) ->
              probe ();
              Test.make
                ~name:(Printf.sprintf "%s:%s:n=%d" probe_name impl_name n)
                (staged probe))
            probes)
        (impls n))
    sizes

(* Binary vs XML snapshot codec: encode, decode (= recovery's parse
   path, including the XML parse the binary form skips), and the byte
   sizes as a printed report. *)
let snapshot_codec_tests () =
  let sizes = if !smoke then [ 10_000 ] else [ 10_000; 100_000 ] in
  List.concat_map
    (fun n ->
      let trim = Trim.create () in
      Trim.add_all trim (synthetic_triples n);
      let xml = Si_xmlk.Print.to_string (Trim.to_xml trim) in
      let bin = Trim.to_binary trim in
      [
        Test.make
          ~name:(Printf.sprintf "encode-xml:n=%d" n)
          (staged (fun () ->
               ignore (Si_xmlk.Print.to_string (Trim.to_xml trim))));
        Test.make
          ~name:(Printf.sprintf "encode-binary:n=%d" n)
          (staged (fun () -> ignore (Trim.to_binary trim)));
        Test.make
          ~name:(Printf.sprintf "recover-xml:n=%d" n)
          (staged (fun () ->
               match Si_xmlk.Parse.node xml with
               | Error _ -> assert false
               | Ok root ->
                   Result.get_ok
                     (Trim.of_xml (Si_xmlk.Node.strip_whitespace root))));
        Test.make
          ~name:(Printf.sprintf "recover-binary:n=%d" n)
          (staged (fun () -> Result.get_ok (Trim.of_binary bin)));
      ])
    sizes

let snapshot_size_report () =
  Printf.printf "\n-- E15 snapshot bytes (binary vs XML) --\n";
  List.iter
    (fun n ->
      let trim = Trim.create () in
      Trim.add_all trim (synthetic_triples n);
      let xml = String.length (Si_xmlk.Print.to_string (Trim.to_xml trim)) in
      let bin = String.length (Trim.to_binary trim) in
      Printf.printf "  n=%-8d xml %9d B   binary %9d B   (%.1fx smaller)\n" n
        xml bin
        (float_of_int xml /. float_of_int bin))
    (if !smoke then [ 10_000 ] else [ 10_000; 100_000 ])

(* ------------- E16: WAL shipping, follower lag, and PITR restore *)

(* What replication costs the write path, and what recovery costs the
   read path. Three angles: (a) the per-append overhead of the shipping
   tee and of synchronously draining to in-process followers, against a
   plain journal append; (b) the follower staleness bound under load at
   different ship cadences, as a printed distribution; (c) point-in-time
   restore cost against archive depth, through the real Slimpad path
   (base snapshot + sealed-segment replay). Followers here are raw
   [Si_wal.Replica]s with no-op apply/install so the probes price the
   protocol and framing, not the TRIM mutation underneath (E12 already
   prices that). *)

let e16_dir () =
  let dir = Filename.temp_file "si_bench_repl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let e16_replica () =
  Si_wal.Replica.create
    ~apply:(fun _ -> Ok ())
    ~install:(fun ~term:_ ~seq:_ _ -> Ok ())
    ()

let e16_leader ~followers () =
  let dir = e16_dir () in
  let log, _ =
    Result.get_ok (Si_wal.Log.open_ (Filename.concat dir "leader.wal"))
  in
  let sh =
    Result.get_ok
      (Si_wal.Ship.create ~archive:(Filename.concat dir "archive") log)
  in
  let replicas =
    List.init followers (fun i ->
        let r = e16_replica () in
        Result.get_ok
          (Si_wal.Ship.attach sh
             ~name:(Printf.sprintf "f%d" i)
             (Si_wal.Replica.transport r));
        r)
  in
  (log, sh, replicas)

let ship_overhead_tests () =
  let payload = String.make 64 'x' in
  let plain =
    let dir = e16_dir () in
    let log, _ =
      Result.get_ok (Si_wal.Log.open_ (Filename.concat dir "a.wal"))
    in
    Test.make ~name:"append 64B: plain log"
      (staged (fun () -> ignore (Si_wal.Log.append log payload)))
  in
  let teed =
    let log, _, _ = e16_leader ~followers:0 () in
    Test.make ~name:"append 64B: shipper tee (seal amortized)"
      (staged (fun () -> ignore (Si_wal.Log.append log payload)))
  in
  let shipped n =
    let log, sh, _ = e16_leader ~followers:n () in
    Test.make
      ~name:
        (Printf.sprintf "append+ship 64B: %d in-process follower%s" n
           (if n = 1 then "" else "s"))
      (staged (fun () ->
           ignore (Si_wal.Log.append log payload);
           Result.get_ok (Si_wal.Ship.ship sh)))
  in
  let burst k =
    let log, sh, _ = e16_leader ~followers:1 () in
    Test.make
      ~name:(Printf.sprintf "ship burst: %d x 64B, 1 follower" k)
      (staged (fun () ->
           for _ = 1 to k do
             ignore (Si_wal.Log.append log payload)
           done;
           Result.get_ok (Si_wal.Ship.ship sh)))
  in
  [ plain; teed; shipped 1; shipped 3 ]
  @ List.map burst (if !smoke then [ 16 ] else [ 16; 64 ])

(* The staleness a reader sees at a follower between ship rounds,
   sampled leader-side (records assigned minus records acked) after
   every append. The p50 of a cadence-k stream sits near k/2; the max
   is the bound [fresh_enough] enforces against. *)
let ship_lag_report () =
  Printf.printf "\n-- E16 follower lag under load (records behind leader) --\n";
  let payload = String.make 64 'x' in
  let total = if !smoke then 400 else 4_000 in
  List.iter
    (fun every ->
      let log, sh, _ = e16_leader ~followers:1 () in
      let h = Si_obs.Histogram.create () in
      for i = 1 to total do
        ignore (Si_wal.Log.append log payload);
        if i mod every = 0 then Result.get_ok (Si_wal.Ship.ship sh);
        Si_obs.Histogram.add h (Si_wal.Ship.lag sh)
      done;
      Printf.printf
        "  ship every %-3d  p50 %6.0f  p90 %6.0f  p99 %6.0f  max %6d  (%d \
         appends)\n"
        every
        (Si_obs.Histogram.median h)
        (Si_obs.Histogram.quantile h 0.9)
        (Si_obs.Histogram.quantile h 0.99)
        (Si_obs.Histogram.max_value h)
        total)
    [ 1; 16; 64 ]

(* Point-in-time recovery through the real application path: a leader
   journals bundles behind a shipping tee (8 records per sealed
   segment), then [restore_at] rebuilds the pad at the archive's tip —
   one base snapshot plus every sealed segment. Restore cost should be
   linear in archive depth. *)
let restore_tests () =
  let seg_counts = if !smoke then [ 4 ] else [ 4; 16; 64 ] in
  List.map
    (fun segs ->
      let dir = e16_dir () in
      let app, _ =
        Result.get_ok
          (Si_slimpad.Slimpad.open_wal (Desktop.create ())
             (Filename.concat dir "pad.wal"))
      in
      let pad = Si_slimpad.Slimpad.new_pad app "bench-pad" in
      let archive = Filename.concat dir "pad.archive" in
      Result.get_ok
        (Si_slimpad.Slimpad.start_shipping ~segment_records:8 app ~archive);
      let root = Dmi.root_bundle (Si_slimpad.Slimpad.dmi app) pad in
      (* One add_bundle journals 4 records, so two bundles fill one
         8-record segment; the buffer seals itself on exactly the last
         op and the archive tip equals the shipper's cursor. *)
      for i = 1 to segs * 2 do
        ignore
          (Si_slimpad.Slimpad.add_bundle app ~parent:root
             ~name:(Printf.sprintf "node-%04d" i)
             ())
      done;
      Result.get_ok (Si_slimpad.Slimpad.wal_sync app);
      let at = Si_wal.Ship.seq (Option.get (Si_slimpad.Slimpad.shipper app)) in
      let probe () =
        match
          Si_slimpad.Slimpad.restore_at (Desktop.create ()) ~archive ~at
        with
        | Ok (_, reached) -> assert (reached = at)
        | Error e -> failwith e
      in
      probe ();
      Test.make
        ~name:(Printf.sprintf "restore @ %d segments" segs)
        (staged probe))
    seg_counts

(* ------------------------------------------------ E17: the pad server *)

(* Serving cost end to end: a real server on an ephemeral localhost
   port, real TCP clients. The bechamel group prices single-request
   RTTs (the unit the open-loop sweep below multiplies); the printed
   report drives the arrival-rate sweep with >= 2 concurrent clients
   and locates the overload knee — the rate where typed [Overloaded]
   rejections appear while interactive latency stays bounded. *)

let e17_server () =
  let dir = e16_dir () in
  let app, _ =
    Result.get_ok
      (Si_slimpad.Slimpad.open_wal
         ~store:(module Si_triple.Store.Sharded_columnar)
         (Desktop.create ())
         (Filename.concat dir "pad.wal"))
  in
  ignore (Si_slimpad.Slimpad.new_pad app "bench-pad");
  let config =
    { Si_serve.Server.default_config with workers = 2; job_capacity = 2 }
  in
  Result.get_ok (Si_serve.Server.start ~config app)

(* The measured server outlives its group's Test.make closures; main
   stops it after the group runs. *)
let e17_cleanup = ref (fun () -> ())

let server_tests () =
  let server = e17_server () in
  (e17_cleanup := fun () -> Si_serve.Server.stop server);
  let port = Si_serve.Server.port server in
  (* One shared connection: a worker owns a connection for its whole
     life, so more persistent clients than workers would leave later
     tests waiting in the accept queue. Tests run sequentially and the
     protocol is strict request/response, so sharing is safe. *)
  let c = Result.get_ok (Si_serve.Client.connect ~port ()) in
  let rtt name req =
    Test.make ~name
      (staged (fun () ->
           match Si_serve.Client.request c req with
           | Ok _ -> ()
           | Error e -> failwith e))
  in
  let module P = Si_serve.Proto in
  [
    rtt "rtt: ping" P.Ping;
    rtt "rtt: count (indexed read)" (P.Count P.any);
    rtt "rtt: select limit 16"
      (P.Select { pattern = P.any; limit = 16 });
    rtt "rtt: add (durable write)"
      (P.Add (Si_triple.Triple.make "bench" "rtt" (Si_triple.Triple.Literal "v")));
  ]

let server_load_report () =
  Printf.printf "\n-- E17 open-loop serving sweep (2 clients, RTT in us) --\n";
  let server = e17_server () in
  let port = Si_serve.Server.port server in
  let requests = if !smoke then 150 else 600 in
  let us ns = ns /. 1_000. in
  let sweep rate =
    let r = Si_workload.Loadgen.run ~port ~rate ~requests () in
    Printf.printf
      "  rate %5.0f/s  p50 %7.0f  p99 %8.0f  ok %4d  overloaded %3d  \
       errors %d\n"
      rate
      (us (Si_workload.Loadgen.quantile_ns r 0.5))
      (us (Si_workload.Loadgen.quantile_ns r 0.99))
      r.Si_workload.Loadgen.ok r.Si_workload.Loadgen.overloaded
      r.Si_workload.Loadgen.errors;
    r
  in
  let uncontended = sweep 50. in
  ignore (sweep 400.);
  ignore (sweep 2_000.);
  (* The knee: saturate the bounded bulk-job queue while interactive
     traffic keeps flowing. Bulk submits must be rejected with typed
     [Overloaded]; the interactive p99 under that flood should stay
     within a small factor of the uncontended run. *)
  let flooded =
    Si_workload.Loadgen.run ~port ~rate:2_000. ~requests
      ~mix:{ Si_workload.Loadgen.default_mix with bulk = 5 }
      ()
  in
  let p99 r = us (Si_workload.Loadgen.quantile_ns r 0.99) in
  Printf.printf
    "  bulk flood    p50 %7.0f  p99 %8.0f  ok %4d  bulk rejected %3d\n"
    (us (Si_workload.Loadgen.quantile_ns flooded 0.5))
    (p99 flooded) flooded.Si_workload.Loadgen.ok
    flooded.Si_workload.Loadgen.rejected_bulk;
  Printf.printf
    "  knee: bulk rejections %s, interactive p99 %.1fx uncontended\n"
    (if flooded.Si_workload.Loadgen.rejected_bulk > 0 then "engaged"
     else "NOT ENGAGED")
    (p99 flooded /. Float.max 1. (p99 uncontended));
  Si_serve.Server.stop server

(* ------------------ E18: instrumented locking overhead (this PR) *)

(* [Si_check.Lock] against the raw [Mutex] it wraps, in both checker
   states. Disabled is the shipping configuration — every mutex in the
   tree now routes through the wrapper, so the E10/E17 groups above
   already price it end to end and the pr8->pr9 JSON compare enforces
   the <5% budget. Enabled prices the sanitizer itself: the DLS
   held-stack upkeep, graph edges, and hold timing. The closures flip
   the global switch per run (bechamel interleaves runs, same pattern
   as E14); main disables and resets the checker after the group so the
   edges recorded here never leak into a later report. *)
let check_overhead_tests () =
  Si_check.Hierarchy.declare ~rank:9100 ~doc:"bench scratch lock"
    "bench.lock";
  Si_check.Hierarchy.declare ~rank:9110 ~doc:"bench scratch inner lock"
    "bench.lock.inner";
  let raw = Mutex.create () in
  let lk = Si_check.Lock.create ~class_:"bench.lock" in
  let inner = Si_check.Lock.create ~class_:"bench.lock.inner" in
  let disabled f () =
    Si_check.set_enabled false;
    f ()
  and enabled f () =
    Si_check.set_enabled true;
    f ()
  in
  let raw_pair () =
    Mutex.lock raw;
    Mutex.unlock raw
  in
  let pair () =
    Si_check.Lock.lock lk;
    Si_check.Lock.unlock lk
  in
  let nested () =
    Si_check.Lock.with_lock lk (fun () ->
        Si_check.Lock.with_lock inner (fun () -> ()))
  in
  (* The E10 hot op under instrumentation: a sharded-store add (shard
     lock + atom-table lock per call) with a select every 10th run. *)
  let module S = Store.Sharded_columnar in
  let s = S.create () in
  let i = ref 0 in
  let store_op () =
    incr i;
    let subject = Printf.sprintf "s-%d" (!i mod 97) in
    ignore (S.add s (Triple.make subject "p" (Triple.literal "v")));
    if !i mod 10 = 0 then ignore (S.select ~subject s)
  in
  [
    Test.make ~name:"raw mutex lock/unlock" (staged raw_pair);
    Test.make ~name:"Si_check.Lock pair (disabled)" (staged (disabled pair));
    Test.make ~name:"Si_check.Lock pair (enabled)" (staged (enabled pair));
    Test.make ~name:"nested with_lock x2 (enabled)" (staged (enabled nested));
    Test.make ~name:"sharded add+select (disabled)"
      (staged (disabled store_op));
    Test.make ~name:"sharded add+select (enabled)"
      (staged (enabled store_op));
  ]

(* ------------------- E19: capture bundle throughput vs pad size *)

(* Capture and apply over synthetic pads of 1k/10k/100k triples, with
   and without base documents. Bases go through an in-memory reader (50
   four-KB documents) so the group prices the bundle machinery — section
   framing, CRCs, the compact triple codec — not the filesystem. Apply
   targets a fresh pad per run; that pad's construction is part of the
   restore path a migrating user actually pays. *)
let bundle_tests () =
  let module Slimpad = Si_slimpad.Slimpad in
  let sizes = if !smoke then [ 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  let base_doc = String.make 4_096 'x' in
  let bases ~kind:_ ~name = Ok (name, base_doc) in
  List.concat_map
    (fun n ->
      let app = Slimpad.create (Desktop.create ()) in
      Trim.add_all (Dmi.trim (Slimpad.dmi app)) (synthetic_triples n);
      for i = 0 to 49 do
        Manager.put_mark (Slimpad.marks app)
          (Mark.make
             ~id:(Printf.sprintf "m-%d" i)
             ~mark_type:"text"
             ~fields:[ ("fileName", Printf.sprintf "doc-%02d.txt" i) ]
             ~excerpt:"cached excerpt" ())
      done;
      let plain, _ = Si_bundle.capture app in
      let with_bases, _ = Si_bundle.capture ~bases app in
      [
        Test.make
          ~name:(Printf.sprintf "capture:n=%d" n)
          (staged (fun () -> ignore (Si_bundle.capture app)));
        Test.make
          ~name:(Printf.sprintf "capture+bases:n=%d" n)
          (staged (fun () -> ignore (Si_bundle.capture ~bases app)));
        Test.make
          ~name:(Printf.sprintf "verify:n=%d" n)
          (staged (fun () -> assert (Si_bundle.verify with_bases = [])));
        Test.make
          ~name:(Printf.sprintf "apply:n=%d" n)
          (staged (fun () ->
               let target = Slimpad.create (Desktop.create ()) in
               ignore
                 (Result.get_ok
                    (Si_bundle.apply ~excerpts:true target plain))));
      ])
    sizes

let bundle_size_report () =
  let module Slimpad = Si_slimpad.Slimpad in
  Printf.printf "\n-- E19 bundle bytes vs pad size --\n";
  let base_doc = String.make 4_096 'x' in
  let bases ~kind:_ ~name = Ok (name, base_doc) in
  List.iter
    (fun n ->
      let app = Slimpad.create (Desktop.create ()) in
      Trim.add_all (Dmi.trim (Slimpad.dmi app)) (synthetic_triples n);
      for i = 0 to 49 do
        Manager.put_mark (Slimpad.marks app)
          (Mark.make
             ~id:(Printf.sprintf "m-%d" i)
             ~mark_type:"text"
             ~fields:[ ("fileName", Printf.sprintf "doc-%02d.txt" i) ]
             ~excerpt:"cached excerpt" ())
      done;
      let plain, _ = Si_bundle.capture app in
      let full, _ = Si_bundle.capture ~bases app in
      Printf.printf
        "  n=%-8d bundle %9d B   +bases %9d B   (50 marks, 4 KiB docs)\n" n
        (String.length plain) (String.length full))
    (if !smoke then [ 1_000 ] else [ 1_000; 10_000; 100_000 ])

(* ------------------------------------- --compare: regression gating *)

(* Rebuild per-group latency distributions from two --json files using
   the mergeable Si_obs histograms, then compare group medians. The
   per-test OLS estimates are treated as samples of their group's
   latency profile; a group whose new median exceeds threshold x the
   old median fails the gate. Groups present on only one side are
   reported but never fail (the bench suite grows PR over PR). *)
let compare_runs ~threshold ~report_path old_path new_path =
  let load path =
    let contents = In_channel.with_open_bin path In_channel.input_all in
    match Si_obs.Json.of_string contents with
    | Error e -> failwith (Printf.sprintf "%s: %s" path e)
    | Ok json ->
        let entries = Option.value (Si_obs.Json.list json) ~default:[] in
        let groups = Hashtbl.create 32 in
        List.iter
          (fun entry ->
            match
              ( Option.bind (Si_obs.Json.mem "group" entry) Si_obs.Json.str,
                Option.bind (Si_obs.Json.mem "ns_per_run" entry)
                  Si_obs.Json.number )
            with
            | Some group, Some ns when Float.is_finite ns && ns >= 0. ->
                let h =
                  match Hashtbl.find_opt groups group with
                  | Some h -> h
                  | None ->
                      let h = Si_obs.Histogram.create () in
                      Hashtbl.add groups group h;
                      h
                in
                Si_obs.Histogram.add h (int_of_float ns)
            | _ -> ())
          entries;
        groups
  in
  let old_groups = load old_path and new_groups = load new_path in
  let names tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  let all = List.sort_uniq compare (names old_groups @ names new_groups) in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "bench comparison: %s -> %s (gate: median > %.1fx)" old_path new_path
    threshold;
  let failures = ref 0 in
  List.iter
    (fun group ->
      match
        (Hashtbl.find_opt old_groups group, Hashtbl.find_opt new_groups group)
      with
      | Some o, Some n ->
          let om = Si_obs.Histogram.median o
          and nm = Si_obs.Histogram.median n in
          if om > 0. then begin
            let ratio = nm /. om in
            let verdict =
              if ratio > threshold then begin
                incr failures;
                "FAIL"
              end
              else "ok"
            in
            line "  %-4s %-55s median %10.0fns -> %10.0fns (%.2fx)" verdict
              group om nm ratio
          end
          else line "  ok   %-55s old median 0ns; skipped" group
      | None, Some n ->
          line "  new  %-55s median %10.0fns (no baseline)" group
            (Si_obs.Histogram.median n)
      | Some o, None ->
          line "  gone %-55s median was %10.0fns" group
            (Si_obs.Histogram.median o)
      | None, None -> ())
    all;
  line "%s"
    (if !failures = 0 then "comparison passed"
     else Printf.sprintf "comparison FAILED: %d group(s) regressed" !failures);
  let text = Buffer.contents buf in
  print_string text;
  (match report_path with
  | Some path -> Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)
  | None -> ());
  if !failures = 0 then 0 else 1

let () =
  let argv = Array.to_list Sys.argv in
  let flag_value name =
    let rec find = function
      | x :: value :: _ when x = name -> Some value
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let json_path = flag_value "--json" in
  (match
     let rec find = function
       | "--compare" :: old_path :: new_path :: _ -> Some (old_path, new_path)
       | _ :: rest -> find rest
       | [] -> None
     in
     find argv
   with
  | Some (old_path, new_path) ->
      let threshold =
        match flag_value "--threshold" with
        | Some t -> float_of_string t
        | None -> 3.0
      in
      exit
        (compare_runs ~threshold ~report_path:(flag_value "--report") old_path
           new_path)
  | None -> ());
  (* Spans and histograms time through this clock; give them the same
     monotonic source bechamel measures with (Toolkit.Monotonic_clock
     wraps the clock_gettime(CLOCK_MONOTONIC) stubs, in ns). *)
  let clock_witness = Toolkit.Monotonic_clock.make () in
  Si_obs.Clock.set (fun () ->
      int_of_float (Toolkit.Monotonic_clock.get clock_witness));
  smoke := List.mem "--smoke" argv;
  Printf.printf "superimposed-information benchmarks (paper: ICDE 2001)%s\n"
    (if !smoke then " [smoke mode]" else "");
  space_report ();
  registry_report ();
  run_group ~name:"E3 store scaling (list vs indexed)" (store_scaling_tests ());
  run_group ~name:"E4 TRIM reachability views" (trim_view_tests ());
  run_group ~name:"E2 DMI vs native records" (dmi_overhead_tests ());
  run_group ~name:"ablation: generated vs hand-written DMI"
    (generated_dmi_tests ());
  run_group ~name:"F7 mark create/resolve per base type" (mark_tests ());
  run_group ~name:"F6 viewing behaviours" (behaviour_tests ());
  run_group ~name:"E6 model-to-model mapping" (mapping_tests ());
  run_group ~name:"E7 query vs navigation" (query_tests ());
  run_group ~name:"E10 compound-indexed query path" (compound_path_tests ());
  run_group ~name:"E10 concurrent store throughput"
    (concurrent_throughput_tests ());
  run_group ~name:"E10 early-terminating limit" (limit_tests ());
  run_group ~name:"E9 persistence & RDF serialization" (persistence_tests ());
  run_group ~name:"E11 resilient resolution under faults"
    (resilience_tests ());
  run_group ~name:"E12 journaled persistence: mutate+persist"
    (wal_mutation_tests ());
  run_group ~name:"E12 journaled persistence: recovery & compaction"
    (wal_recovery_tests ());
  run_group ~name:"application-level (ICU worksheet, 6 patients)"
    (application_tests ());
  run_group ~name:"E13 static analysis (full rule catalog)" (lint_tests ());
  run_group ~name:"substrate parsers" (substrate_tests ());
  run_group ~name:"E14 instrumentation overhead" (obs_overhead_tests ());
  snapshot_size_report ();
  run_group ~name:"E15 columnar store scaling" (columnar_scaling_tests ());
  run_group ~name:"E15 snapshot codec (binary vs XML)"
    (snapshot_codec_tests ());
  ship_lag_report ();
  run_group ~name:"E16 WAL shipping (append overhead, ship throughput)"
    (ship_overhead_tests ());
  run_group ~name:"E16 PITR restore vs archive depth" (restore_tests ());
  run_group ~name:"E17 pad server request RTT" (server_tests ());
  !e17_cleanup ();
  server_load_report ();
  run_group ~name:"E18 instrumented locking overhead"
    (check_overhead_tests ());
  Si_check.set_enabled false;
  Si_check.reset ();
  run_group ~name:"E19 capture bundle (capture/verify/apply)"
    (bundle_tests ());
  bundle_size_report ();
  Si_obs.Span.disable ();
  ignore (Si_obs.Span.drain ());
  (match json_path with Some path -> write_json path | None -> ());
  Printf.printf "\nbench: done\n"
